//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`Value`] tree as JSON text and
//! parses JSON text back into a [`Value`] tree. Only the API surface the
//! `sixg` workspace uses is provided: [`Value`], [`to_value`],
//! [`to_string`], [`to_string_pretty`], [`from_str`], and a [`json!`]
//! macro restricted to object/array literals with expression values.

pub use serde::Value;

/// Serialisation/parse error. Serialising into a value tree cannot fail, so
/// in practice this only carries parse diagnostics (with line/column).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar (objects, arrays, strings with escapes
/// incl. `\uXXXX`, numbers, booleans, null). Numbers without a fraction or
/// exponent parse as `I64`/`U64`; everything else as `F64` via Rust's
/// correctly rounded `str::parse::<f64>`, so text produced by
/// [`to_string`]/[`to_string_pretty`] round-trips bit-exactly.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Maximum container nesting `from_str` accepts (matches real serde_json's
/// default); a bound turns hostile deeply-nested input into a parse error
/// instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|b| **b == b'\n').count();
        let col = 1 + consumed.iter().rev().take_while(|b| **b != b'\n').count();
        Error::new(format!("{message} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn nested(&mut self, inner: fn(&mut Self) -> Result<Value, Error>) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        self.depth += 1;
        let v = inner(self);
        self.depth -= 1;
        v
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: JSON encodes astral chars as
                            // \uD8xx\uDCxx.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.error("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.error("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream: back up one and
                    // take the whole char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.error("invalid number"))
    }
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Integral float: render with one decimal so it stays a JSON
            // number distinguishable from integers, like serde_json's "1.0".
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, x, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, x, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Builds a [`Value`] from an object/array literal. Supports the subset the
/// workspace uses: string-literal keys with expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_objects() {
        let v = json!({ "a": 1u32, "b": [1u8, 2u8], "c": "x" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": \"x\""));
        assert!(s.starts_with("{\n"));
    }

    #[test]
    fn compact_round_trip_shape() {
        let v = json!({ "k": 1.5f64, "flag": true });
        assert_eq!(to_string(&v).unwrap(), "{\"k\":1.5,\"flag\":true}");
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-3").unwrap(), Value::I64(-3));
        assert_eq!(from_str("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(from_str("1e2").unwrap(), Value::F64(100.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny", "d": {}}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1], Value::F64(2.5));
        assert!(a[2].get("b").unwrap().is_null());
        assert_eq!(v.get("d").and_then(Value::as_object).map(<[(String, Value)]>::len), Some(0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            from_str(r#""a\"\\\/\b\f\n\r\t""#).unwrap().as_str().unwrap(),
            "a\"\\/\u{8}\u{c}\n\r\t"
        );
        assert_eq!(from_str(r#""é""#).unwrap().as_str().unwrap(), "é");
        assert_eq!(from_str(r#""😀""#).unwrap().as_str().unwrap(), "😀");
        assert_eq!(from_str("\"héllo\"").unwrap().as_str().unwrap(), "héllo");
    }

    #[test]
    fn float_text_round_trips_bit_exactly() {
        for x in [74.1307371613617_f64, 0.1, 1e11, -46.639, f64::MIN_POSITIVE, 270.6536858068085] {
            let text = to_string(&x).unwrap();
            let back = from_str(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = json!({ "a": 1u32, "b": [1.5f64, 2.0f64], "c": "x", "d": true });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let parsed_compact = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed_compact, v);
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the bound: fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&ok).is_ok());
        // Hostile depth: a parse error, not a stack overflow.
        let deep = format!("{}1{}", "[".repeat(50_000), "]".repeat(50_000));
        let err = from_str(&deep).unwrap_err().to_string();
        assert!(err.contains("recursion limit"), "{err}");
        let deep_obj = "{\"a\":".repeat(50_000);
        assert!(from_str(&deep_obj).unwrap_err().to_string().contains("recursion limit"));
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str("{\"a\": 1,\n  oops}").unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(from_str("").unwrap_err().to_string().contains("end of input"));
        assert!(from_str("[1, 2,]").is_err());
        assert!(from_str("{\"a\" 1}").unwrap_err().to_string().contains("expected ':'"));
        assert!(from_str("1 2").unwrap_err().to_string().contains("trailing"));
        assert!(from_str("\"unterminated").is_err());
    }
}
