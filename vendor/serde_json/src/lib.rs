//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`Value`] tree as JSON text. Only the
//! API surface the `sixg` workspace uses is provided: [`Value`],
//! [`to_value`], [`to_string`], [`to_string_pretty`], and a [`json!`] macro
//! restricted to object/array literals with expression values.

pub use serde::Value;

/// Error type kept for signature compatibility; serialisation into a value
/// tree cannot actually fail.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Integral float: render with one decimal so it stays a JSON
            // number distinguishable from integers, like serde_json's "1.0".
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, x, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, x, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Builds a [`Value`] from an object/array literal. Supports the subset the
/// workspace uses: string-literal keys with expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_objects() {
        let v = json!({ "a": 1u32, "b": [1u8, 2u8], "c": "x" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": \"x\""));
        assert!(s.starts_with("{\n"));
    }

    #[test]
    fn compact_round_trip_shape() {
        let v = json!({ "k": 1.5f64, "flag": true });
        assert_eq!(to_string(&v).unwrap(), "{\"k\":1.5,\"flag\":true}");
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }
}
