//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so this proc-macro crate
//! re-implements the tiny slice of `serde_derive` the workspace needs,
//! parsing the item by hand instead of pulling in `syn`/`quote`:
//!
//! * `#[derive(Serialize)]` on a named-field struct emits a real impl that
//!   serialises every field into a `serde::Value::Object`;
//! * on a tuple struct it serialises the single field (newtype) or an array;
//! * on an enum it serialises the variant name as a string;
//! * `#[derive(Deserialize)]` emits a marker impl (nothing in the workspace
//!   deserialises, but the trait bound must exist).
//!
//! No `#[serde(...)]` attributes are supported — the workspace uses none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item the derive is attached to.
enum Item {
    /// Named-field struct with its field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with its arity.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum with its variant names.
    Enum { name: String, variants: Vec<String> },
}

/// Walks the token stream of a `struct`/`enum` item and extracts the parts
/// the generated impl needs. Panics (compile error) on shapes the stub does
/// not support, e.g. generic types.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including rustdoc) and visibility.
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

/// Splits a brace-group stream at top-level commas. Commas nested inside
/// `<...>` generics are not separators (parens/brackets/braces are already
/// nested groups in the token tree, so only angle brackets need tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// From each `(#[attr])* (pub)? name : Type` chunk, extracts `name`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut j = 0;
            loop {
                match &chunk[j] {
                    TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                    TokenTree::Ident(id) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = chunk.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    TokenTree::Ident(id) => return id.to_string(),
                    other => panic!("serde_derive stub: unexpected field token {other}"),
                }
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// From each `(#[attr])* Name (payload)? (= disc)?` chunk, extracts `Name`.
fn parse_variants(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut j = 0;
            loop {
                match &chunk[j] {
                    TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                    TokenTree::Ident(id) => return id.to_string(),
                    other => panic!("serde_derive stub: unexpected variant token {other}"),
                }
            }
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> =
                (0..arity).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} {{ .. }} => \
                         ::serde::Value::String(\"{v}\".to_string())"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     #[allow(unreachable_patterns)]\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse().expect("serde_derive stub: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl parses")
}
