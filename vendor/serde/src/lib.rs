//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! minimal serialisation model the `sixg` workspace actually uses: a JSON
//! value tree ([`Value`]), a [`Serialize`] trait producing it, and the
//! derive macros re-exported from the vendored `serde_derive`.
//!
//! Deliberately *not* implemented: serialisers other than the value tree,
//! `#[serde(...)]` attributes, zero-copy deserialisation. Nothing in the
//! workspace needs them, and the stub should stay small enough to audit.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree, the single serialisation target of the stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer number.
    I64(i64),
    /// Unsigned integer number.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first match), or `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `I64`/`U64`/`F64` all surface as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact: `F64` only when integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            Value::F64(x) if *x >= 0.0 && x.trunc() == *x && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Object view as the underlying insertion-ordered pair list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short lowercase name of the JSON type, for error messages
    /// (`"number"`, `"string"`, …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-shaped [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for `serde::Deserialize`. The workspace derives
/// it but never deserialises, so it carries no methods.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($variant:ident : $($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        })*
    };
}

impl_serialize_int!(I64: i8, i16, i32, i64, isize);
impl_serialize_int!(U64: u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        })*
    };
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-4i64).to_value(), Value::I64(-4));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("n".into(), Value::F64(2.5)),
            ("i".into(), Value::I64(3)),
            ("u".into(), Value::U64(7)),
            ("s".into(), Value::String("x".into())),
            ("a".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("i").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("i").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("u").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::F64(2.5).as_u64(), None);
        assert_eq!(Value::F64(4.0).as_u64(), Some(4));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(v.type_name(), "object");
        assert_eq!(Value::Null.type_name(), "null");
        assert!(Value::Null.is_null());
    }

    #[test]
    fn collections_nest() {
        let v = vec![(1u8, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::U64(1), Value::F64(2.0)])])
        );
    }
}
