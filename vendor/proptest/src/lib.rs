//! Offline stand-in for `proptest`.
//!
//! Supports the subset `tests/properties.rs` uses: the [`proptest!`] macro
//! over `arg in strategy` parameters, range strategies over numeric
//! primitives, `any::<T>()`, tuple strategies, `prop::collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design: a fixed number of cases per
//! property (no adaptive sizing), no shrinking on failure (the failing
//! values are printed by the assertion instead), and determinism derived
//! from the property's name rather than a persisted failure seed.

/// Number of cases each property runs.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    /// Deterministic SplitMix64 generator seeded from the property name, so
    /// every run of the suite exercises identical cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the property function's name).
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, n).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            // Multiply-shift; bias is irrelevant for test-case generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Strategy behind [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        /// Creates the full-domain strategy for `T`.
        pub fn new() -> Self {
            Self { _marker: std::marker::PhantomData }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn sample(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
}

/// Full-domain strategy for a primitive type, mirroring proptest's `any`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Re-export so generated code can reference the range type.
pub use std::ops::Range as SizeRange;

#[allow(unused_imports)]
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assertion in the stub (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain equality assertion in the stub.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain inequality assertion in the stub.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(xs in prop::collection::vec(0u32..5, 2..8)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn tuples_compose(p in (0u8..4, 0.0f64..1.0)) {
            prop_assert!(p.0 < 4);
            prop_assert!((0.0..1.0).contains(&p.1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
