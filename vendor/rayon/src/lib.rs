//! Offline stand-in for `rayon`.
//!
//! Maps the `par_iter` family onto ordinary sequential `std` iterators, so
//! every adapter (`map`, `flat_map`, `collect`, …) is available unchanged.
//! Sequential execution is semantically equivalent here: the workspace only
//! parallelises embarrassingly parallel loops whose results are asserted to
//! be bitwise identical to sequential runs anyway. When real `rayon` is
//! restored the call sites need no edits.

pub mod prelude {
    /// `.par_iter()` — sequential stand-in returning the `&T` iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Returns a (sequential) iterator over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` — sequential stand-in returning the `&mut T`
    /// iterator.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Returns a (sequential) iterator over mutable references.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.into_par_iter()` — sequential stand-in for consuming iteration.
    pub trait IntoParallelIterator {
        /// Item yielded by the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Returns a (sequential) consuming iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Item = C::Item;
        type Iter = C::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }
}
