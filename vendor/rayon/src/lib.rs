//! Offline stand-in for `rayon` with a **real multi-threaded backend**.
//!
//! Unlike the earlier sequential shim, `par_iter` work now executes on a
//! lazily initialised global pool of `std::thread` workers:
//!
//! * **Pool size** follows `RAYON_NUM_THREADS` (read-only; set it before
//!   launch, as the CI thread matrix does), falling back to
//!   [`std::thread::available_parallelism`]; in-process pinning — e.g. the
//!   tests' thread-count matrices — goes through [`with_thread_count`],
//!   which shadows the variable without the `setenv`-vs-`getenv` race. The
//!   pool grows lazily to the largest size requested and never shrinks;
//!   idle workers block on a condition variable.
//! * **Work distribution** is chunked self-scheduling: participants claim
//!   contiguous index ranges from a shared atomic cursor, so fast workers
//!   steal the remaining ranges from slow ones without any per-item
//!   coordination.
//! * **Index-ordered collection**: every produced value is written to the
//!   output slot of its *input* index, and `collect`/`sum` read the slots in
//!   input order. Results are therefore identical — bitwise, for floats —
//!   to sequential execution for every pool size, which is what lets the
//!   workspace assert parallel == sequential in tests.
//! * **Panic propagation**: a panicking closure poisons the batch (remaining
//!   items are drained without running the closure), the first payload is
//!   re-thrown on the calling thread via [`std::panic::resume_unwind`], and
//!   the workers survive to serve later calls — a poisoned batch never
//!   deadlocks or kills the pool.
//!
//! The call surface (`prelude` traits, adapters, `join`) matches the subset
//! of real `rayon` the workspace uses; swapping in the real crate remains a
//! one-line `Cargo.toml` change.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Global worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    spawned: usize,
}

/// The global pool: a job queue plus detached worker threads that block on
/// `work_ready` while the queue is empty.
struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), spawned: 0 }),
        work_ready: Condvar::new(),
    })
}

impl Pool {
    /// Grows the pool to at least `n` workers (never shrinks).
    fn ensure_workers(&'static self, n: usize) {
        let mut state = self.state.lock().expect("pool lock");
        while state.spawned < n {
            let id = state.spawned;
            state.spawned += 1;
            std::thread::Builder::new()
                .name(format!("sixg-rayon-{id}"))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    state = self.work_ready.wait(state).expect("pool lock");
                }
            };
            // Jobs catch their own panics (see `run_on_pool`); a stray unwind
            // here would abort the process rather than poison the pool.
            job();
        }
    }

    fn submit(&self, job: Job) {
        self.state.lock().expect("pool lock").queue.push_back(job);
        self.work_ready.notify_one();
    }
}

/// Counts outstanding helper jobs so a caller can block until every job that
/// borrows its stack frame has finished.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self { remaining: Mutex::new(count), all_done: Condvar::new() }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining).expect("latch lock");
        }
    }
}

thread_local! {
    /// Pool-size overrides installed by [`with_thread_count`], innermost
    /// last. Thread-local on purpose: the pool size is consulted exactly
    /// once per batch, on the calling thread, so a per-thread stack gives
    /// exact nesting semantics and concurrent tests cannot observe each
    /// other's overrides.
    static OVERRIDES: std::cell::RefCell<Vec<usize>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The pool size the next parallel operation on this thread will use: the
/// innermost [`with_thread_count`] override if one is active, else
/// `RAYON_NUM_THREADS` when set to a positive integer, else the machine's
/// available parallelism.
///
/// The environment variable is **only ever read** (at process scope it is
/// set before launch, e.g. by the CI thread matrix); in-process pinning goes
/// through `with_thread_count`, so there is no `setenv` while other threads
/// call `getenv` — that pairing is undefined behaviour on glibc.
pub fn current_num_threads() -> usize {
    if let Some(&n) = OVERRIDES.with(|o| o.borrow().last().copied()).as_ref() {
        return n;
    }
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Runs `f` with this thread's pool size pinned to `threads` (minimum 1),
/// restoring the previous state afterwards — including on panic, via a drop
/// guard. Overrides nest, innermost wins.
///
/// This is the supported way to drive a thread-count matrix inside one
/// process; it shadows `RAYON_NUM_THREADS` without touching the (shared,
/// race-prone) process environment. The override applies to parallel calls
/// made *on the calling thread*; threads spawned inside `f` fall back to
/// the environment.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDES.with(|o| o.borrow_mut().pop());
        }
    }
    OVERRIDES.with(|o| o.borrow_mut().push(threads.max(1)));
    let _guard = Guard;
    f()
}

/// Runs `work` on the calling thread *and* `helpers` pool workers, returning
/// once every participant is done. `work` must be panic-free (the map layer
/// catches closure panics itself); a stray panic is still caught so the
/// latch always counts down and the pool worker survives.
fn run_on_pool(helpers: usize, work: &(dyn Fn() + Sync)) {
    if helpers == 0 {
        work();
        return;
    }
    let p = pool();
    p.ensure_workers(helpers);
    let latch = Latch::new(helpers);
    {
        let latch_ref: &Latch = &latch;
        for _ in 0..helpers {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let _ = catch_unwind(AssertUnwindSafe(work));
                latch_ref.count_down();
            });
            // SAFETY: the job borrows `work` and `latch` from this stack
            // frame. `latch.wait()` below blocks until every submitted job
            // has run its closing `count_down`, so the borrows cannot
            // outlive the frame. This lifetime erasure is the classic
            // scoped-pool trick; the persistent queue itself only holds
            // 'static jobs.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            p.submit(job);
        }
        // The caller participates instead of idling; even with zero awake
        // workers the batch completes (no deadlock).
        let caller = catch_unwind(AssertUnwindSafe(work));
        latch.wait();
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
    }
}

// Nested-parallelism guard: true while this thread is executing batch work.
// An inner `par_iter` from inside a batch runs inline instead of going to
// the pool — handing it to the pool could deadlock, because every
// participant (including pool workers) blocks in `latch.wait()` for inner
// jobs that sit queued behind those very blocked workers. Real rayon
// work-steals while waiting; this shim degrades nested calls to sequential,
// which preserves both progress and (index-ordered) results.
thread_local! {
    static IN_BATCH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Parallel map over an owned work list, preserving input order exactly.
///
/// Participants claim chunks of indices from an atomic cursor; each result
/// lands in the slot of its input index, and the output `Vec` is read out in
/// index order. A panicking `f` poisons the batch: remaining inputs are
/// drained (dropped) without invoking `f`, and the first payload is
/// re-thrown on the caller once all participants have finished. Nested
/// calls on a batch thread run inline (see [`IN_BATCH`][self]).
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 || IN_BATCH.with(|b| b.get()) {
        return items.into_iter().map(f).collect();
    }

    // ~4 chunks per participant: coarse enough to amortise claim overhead,
    // fine enough that an unlucky worker cannot strand a big tail.
    let chunk = (n / (threads * 4)).max(1);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let work = || {
        struct BatchFlag;
        impl Drop for BatchFlag {
            fn drop(&mut self) {
                IN_BATCH.with(|b| b.set(false));
            }
        }
        IN_BATCH.with(|b| b.set(true));
        let _flag = BatchFlag;
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                let item =
                    inputs[i].lock().expect("input slot").take().expect("index claimed once");
                if poisoned.load(Ordering::Relaxed) {
                    continue; // drain: drop the input without running `f`
                }
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => *outputs[i].lock().expect("output slot") = Some(r),
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock().expect("panic slot");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            }
        }
    };
    run_on_pool(threads - 1, &work);

    if let Some(payload) = first_panic.into_inner().expect("panic slot") {
        resume_unwind(payload);
    }
    outputs
        .into_iter()
        .map(|slot| slot.into_inner().expect("output slot").expect("every index produced a value"))
        .collect()
}

// ---------------------------------------------------------------------------
// Parallel iterator adapters
// ---------------------------------------------------------------------------

/// Index-ordered parallel iterators over materialised work lists.
pub mod iter {
    use super::par_map_vec;

    /// A parallel iterator: the work list, materialised and index-ordered.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        pub(crate) fn new(items: Vec<T>) -> Self {
            Self { items }
        }

        /// Number of work items.
        #[allow(clippy::len_without_is_empty)]
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Maps each item on the pool; results keep input order.
        pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync + Send,
        {
            ParMap { items: self.items, f, _out: std::marker::PhantomData }
        }

        /// Runs `f` for every item on the pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync + Send,
        {
            par_map_vec(self.items, f);
        }

        /// Collects the (unmapped) items in input order.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            self.items.into_iter().collect()
        }

        /// Sums the items in input order.
        pub fn sum<S: std::iter::Sum<T>>(self) -> S {
            self.items.into_iter().sum()
        }
    }

    /// A mapped parallel iterator (`par_iter().map(f)`).
    pub struct ParMap<T, R, F> {
        items: Vec<T>,
        f: F,
        _out: std::marker::PhantomData<fn() -> R>,
    }

    impl<T, R, F> ParMap<T, R, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the map on the pool and collects results in input order
        /// — bitwise identical to the sequential `iter().map().collect()`.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            par_map_vec(self.items, self.f).into_iter().collect()
        }

        /// Executes the map on the pool, then sums sequentially in input
        /// order (so float sums stay deterministic).
        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            par_map_vec(self.items, self.f).into_iter().sum()
        }

        /// Runs the mapped closure for every item on the pool.
        pub fn for_each(self) {
            par_map_vec(self.items, self.f);
        }
    }
}

pub mod prelude {
    //! The `par_iter` entry-point traits, as in real rayon's prelude.
    pub use crate::iter::{ParIter, ParMap};

    /// `.par_iter()` — parallel iteration over shared references.
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by the iterator.
        type Item: Send;
        /// Returns a pool-backed, index-ordered parallel iterator.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send,
    {
        type Item = <&'data C as IntoIterator>::Item;

        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter::new(self.into_iter().collect())
        }
    }

    /// `.par_iter_mut()` — parallel iteration over mutable references.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the iterator.
        type Item: Send;
        /// Returns a pool-backed, index-ordered parallel iterator.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
        <&'data mut C as IntoIterator>::Item: Send,
    {
        type Item = <&'data mut C as IntoIterator>::Item;

        fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
            ParIter::new(self.into_iter().collect())
        }
    }

    /// `.into_par_iter()` — consuming parallel iteration.
    pub trait IntoParallelIterator {
        /// Item yielded by the iterator.
        type Item: Send;
        /// Returns a pool-backed, index-ordered parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<C: IntoIterator> IntoParallelIterator for C
    where
        C::Item: Send,
    {
        type Item = C::Item;

        fn into_par_iter(self) -> ParIter<Self::Item> {
            ParIter::new(self.into_iter().collect())
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
/// A panic in either closure is propagated after both have completed.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_thread_count;
    use std::collections::HashSet;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn collection_keeps_input_order_for_every_pool_size() {
        let xs: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = xs.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got: Vec<u64> =
                with_thread_count(threads, || xs.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn work_is_distributed_across_threads() {
        // Sleepy items: eight 100 ms tasks (800 ms sequential) on a 4-thread
        // pool overlap even on one hardware core, because sleeps release the
        // CPU. The 500 ms bound leaves ample scheduler slack for loaded CI
        // runners while still being impossible for a sequential run.
        let start = std::time::Instant::now();
        let ids: Vec<std::thread::ThreadId> = with_thread_count(4, || {
            (0..8u32)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    std::thread::current().id()
                })
                .collect()
        });
        let elapsed = start.elapsed();
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() >= 2, "expected helper participation, got {distinct:?}");
        assert!(elapsed.as_millis() < 500, "batch not overlapped: {elapsed:?}");
    }

    #[test]
    fn nested_par_iter_runs_inline_without_deadlock() {
        // A par_iter inside a par_iter closure must not be handed to the
        // pool (that can deadlock when every participant is blocked waiting
        // on the inner batch); it runs inline and still yields ordered,
        // correct results.
        let sums: Vec<u64> = with_thread_count(2, || {
            (0..16u64)
                .into_par_iter()
                .map(|i| (0..100u64).into_par_iter().map(|j| i * 100 + j).sum::<u64>())
                .collect()
        });
        let expected: Vec<u64> =
            (0..16u64).map(|i| (0..100u64).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        with_thread_count(4, || {
            let result = std::panic::catch_unwind(|| {
                (0..64u32)
                    .into_par_iter()
                    .map(|i| if i == 13 { panic!("boom at {i}") } else { i })
                    .collect::<Vec<u32>>()
            });
            assert!(result.is_err(), "panic must cross the pool boundary");
            // The pool must keep serving after a poisoned batch.
            for _ in 0..3 {
                let xs: Vec<u32> = (0..256u32).into_par_iter().map(|x| x + 1).collect();
                assert_eq!(xs.len(), 256);
                assert_eq!(xs[255], 256);
            }
        });
    }

    #[test]
    fn num_threads_tracks_override() {
        assert_eq!(with_thread_count(3, super::current_num_threads), 3);
        assert_eq!(with_thread_count(7, super::current_num_threads), 7);
        // Overrides nest innermost-wins and unwind cleanly.
        with_thread_count(2, || {
            assert_eq!(with_thread_count(5, super::current_num_threads), 5);
            assert_eq!(super::current_num_threads(), 2);
        });
        // A panicking closure still removes its override (drop guard).
        let baseline = super::current_num_threads();
        let _ = std::panic::catch_unwind(|| with_thread_count(6, || panic!("unwind")));
        assert_eq!(super::current_num_threads(), baseline);
        assert!(baseline >= 1);
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let caught = std::panic::catch_unwind(|| super::join(|| 1, || panic!("right side")));
        assert!(caught.is_err());
    }
}
