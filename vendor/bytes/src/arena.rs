//! Bump-style typed arena for hot-loop allocation reuse.
//!
//! The measurement campaigns allocate short-lived, variable-length runs of
//! small values in their innermost loops — the legs of an in-flight probe,
//! the uniform/sample columns of a batched draw. Allocating a fresh `Vec`
//! per probe or per cell dominates the profile at continental scale, so
//! this arena hands out *handles* (`Slice`: a `(start, len)` pair into one
//! backing `Vec`) instead of owned buffers. A `reset` between shards
//! truncates the backing store without releasing its capacity, so steady
//! state performs zero allocator calls.
//!
//! Handles are plain `Copy` data and deliberately carry no lifetime: the
//! borrow checker enforces safety at the access site (`get`/`get_mut`
//! borrow the arena), while `reset` simply invalidates old handles by
//! shrinking the live region — accessing a stale handle panics on the
//! bounds check rather than reading freed memory.

/// A `(start, len)` handle into an [`Arena`]'s backing store.
///
/// `u32` indices keep the handle at 8 bytes; a single arena therefore
/// holds at most 2³² items between resets, far above any shard's needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slice {
    start: u32,
    len: u32,
}

impl Slice {
    /// The empty slice (valid for any arena).
    pub const EMPTY: Slice = Slice { start: 0, len: 0 };

    /// Number of items addressed by this handle.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the handle addresses no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A growable typed arena; see the module docs for the allocation model.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    items: Vec<T>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Creates an arena with room for `n` items before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Self { items: Vec::with_capacity(n) }
    }

    /// Items currently live in the arena.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena holds no live items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all live items but keeps the backing capacity. Outstanding
    /// handles become invalid (accesses panic on the bounds check).
    pub fn reset(&mut self) {
        self.items.clear();
    }

    /// Marks the current end of the arena; pair with [`Arena::since`] to
    /// turn a run of [`Arena::push`] calls into one handle.
    pub fn mark(&self) -> u32 {
        u32::try_from(self.items.len()).expect("arena exceeds u32 index space")
    }

    /// Appends one item.
    pub fn push(&mut self, value: T) {
        self.items.push(value);
    }

    /// The handle covering everything pushed since `mark`.
    pub fn since(&self, mark: u32) -> Slice {
        let end = self.mark();
        debug_assert!(mark <= end, "mark from a later state or another arena");
        Slice { start: mark, len: end - mark }
    }

    /// Allocates `n` copies of `value` and returns the handle.
    pub fn alloc_fill(&mut self, n: usize, value: T) -> Slice
    where
        T: Clone,
    {
        let start = self.mark();
        self.items.resize(self.items.len() + n, value);
        self.since(start)
    }

    /// Read access through a handle.
    pub fn get(&self, s: Slice) -> &[T] {
        &self.items[s.range()]
    }

    /// Write access through a handle.
    pub fn get_mut(&mut self, s: Slice) -> &mut [T] {
        &mut self.items[s.range()]
    }

    /// Write access to two disjoint handles at once (columnar kernels read
    /// one column while writing another). Panics when the handles overlap.
    pub fn get_mut_pair(&mut self, a: Slice, b: Slice) -> (&mut [T], &mut [T]) {
        let (ra, rb) = (a.range(), b.range());
        assert!(ra.end <= rb.start || rb.end <= ra.start, "get_mut_pair: overlapping handles");
        if ra.end <= rb.start {
            let (lo, hi) = self.items.split_at_mut(rb.start);
            (&mut lo[ra], &mut hi[..b.len()])
        } else {
            let (lo, hi) = self.items.split_at_mut(ra.start);
            let slice_b = &mut lo[rb];
            (&mut hi[..a.len()], slice_b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_mark_since_round_trip() {
        let mut a = Arena::new();
        let m0 = a.mark();
        a.push(1);
        a.push(2);
        let s0 = a.since(m0);
        let m1 = a.mark();
        a.push(7);
        let s1 = a.since(m1);
        assert_eq!(a.get(s0), &[1, 2]);
        assert_eq!(a.get(s1), &[7]);
        assert_eq!(s0.len(), 2);
        assert!(!s0.is_empty());
    }

    #[test]
    fn alloc_fill_and_mutate() {
        let mut a = Arena::with_capacity(8);
        let s = a.alloc_fill(4, 0.0f64);
        for (i, v) in a.get_mut(s).iter_mut().enumerate() {
            *v = i as f64;
        }
        assert_eq!(a.get(s), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reset_keeps_capacity_invalidates_handles() {
        let mut a = Arena::new();
        let s = a.alloc_fill(100, 0u8);
        a.reset();
        assert!(a.is_empty());
        let s2 = a.alloc_fill(2, 1u8);
        assert_eq!(a.get(s2), &[1, 1]);
        // The old, longer handle now points past the live region.
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.get(s))).is_err());
    }

    #[test]
    fn get_mut_pair_disjoint_both_orders() {
        let mut a = Arena::new();
        let s0 = a.alloc_fill(3, 1u32);
        let s1 = a.alloc_fill(2, 2u32);
        {
            let (x, y) = a.get_mut_pair(s0, s1);
            assert_eq!(x, &[1, 1, 1]);
            assert_eq!(y, &[2, 2]);
            x[0] = 9;
            y[1] = 8;
        }
        let (y, x) = a.get_mut_pair(s1, s0);
        assert_eq!(x, &[9, 1, 1]);
        assert_eq!(y, &[2, 8]);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn get_mut_pair_rejects_overlap() {
        let mut a = Arena::new();
        let s = a.alloc_fill(4, 0u8);
        let _ = a.get_mut_pair(s, s);
    }

    #[test]
    fn empty_slice_is_valid_anywhere() {
        let a: Arena<u64> = Arena::new();
        assert_eq!(a.get(Slice::EMPTY), &[] as &[u64]);
    }
}
