//! Offline stand-in for `bytes`.
//!
//! Provides [`Bytes`], an immutable, cheaply clonable (reference-counted)
//! byte buffer with the constructor/accessor surface the workspace uses,
//! and [`arena::Arena`], a bump-style typed arena the campaign hot loops
//! use to reuse packet/event allocations across shards.

pub mod arena;

pub use arena::Arena;

use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer; `clone` is O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Default for Bytes {
    fn default() -> Self {
        Self { data: Vec::new().into() }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer by copying a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::from(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_from_vec() {
        assert_eq!(Bytes::new().len(), 0);
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1024);
    }
}
