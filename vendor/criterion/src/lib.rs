//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's seven `[[bench]]` targets compiling and runnable
//! without crates.io access. Benchmarks run a warm-up, then time
//! `sample_size` batches and report the median ns/iteration to stdout —
//! no statistics engine, plots, or baselines, just honest wall-clock
//! numbers with the `criterion` call surface (`criterion_group!`,
//! `criterion_main!`, groups, throughput, `bench_with_input`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Throughput annotation; recorded to scale the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times one closure; created by the harness and handed to bench bodies.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    median_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly: warm-up, then `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters.max(1) as f64;

        // Pick a batch size so all samples fit in `measurement`.
        let total_budget_ns = self.measurement.as_nanos() as f64;
        let batch = ((total_budget_ns / self.sample_size as f64 / per_iter.max(1.0)).ceil() as u64)
            .clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib_s = b as f64 / median_ns * 1e9 / (1u64 << 30) as f64;
            format!("  ({gib_s:.2} GiB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let melem_s = n as f64 / median_ns * 1e9 / 1e6;
            format!("  ({melem_s:.2} Melem/s)")
        }
        None => String::new(),
    };
    println!("{name:<48} {:>12}/iter{rate}", human_time(median_ns));
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            median_ns: 0.0,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        report(name, b.median_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = self.criterion.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.median_ns, self.throughput);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.median_ns, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
