//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface `sixg-netsim`'s [`SimRng`] wrapper uses:
//! [`rngs::SmallRng`] (xoshiro256++, the algorithm real `rand` 0.8 uses for
//! `SmallRng` on 64-bit targets), [`SeedableRng::seed_from_u64`] (SplitMix64
//! state expansion, as in `rand_core`), and [`Rng::gen`] / [`Rng::gen_range`]
//! for `u64` and `f64`.
//!
//! [`SimRng`]: https://docs.rs/rand/0.8

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed via SplitMix64 state expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sample {
    use super::RngCore;

    /// Types drawable uniformly from an RNG via [`super::Rng::gen`].
    pub trait Standard: Sized {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Standard for bool {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 mantissa bits, uniform in [0, 1) — the conversion rand's
            // Standard distribution uses.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Ranges samplable by [`super::Rng::gen_range`].
    pub trait SampleRange {
        type Output;
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u64;
                    // Unbiased rejection sampling over the top `span`-aligned
                    // portion of the u64 space.
                    let zone = u64::MAX - (u64::MAX % span + 1) % span;
                    loop {
                        let x = rng.next_u64();
                        if x <= zone {
                            return self.start + (x % span) as $t;
                        }
                    }
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    impl SampleRange for core::ops::Range<f64> {
        type Output = f64;
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            self.start + (self.end - self.start) * f64::draw(rng)
        }
    }
}

pub use sample::{SampleRange, Standard};

/// Convenience draws on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<Rge: SampleRange>(&mut self, range: Rge) -> Rge::Output {
        range.sample(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_residues_unbiased() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0u64..5) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "count {c}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
