//! Federated learning at the edge (the paper's future-work direction).
//!
//! Section VI: "we plan to explore emerging technologies, such as …
//! federated learning at the edge". This module models synchronous
//! FedAvg over the radio access network: each round, participating
//! clients download the global model, train locally, and upload their
//! update; the round completes when the slowest participant finishes
//! (the straggler effect that makes round time latency- *and*
//! bandwidth-sensitive).

use crate::services::Service;
use serde::{Deserialize, Serialize};
use sixg_netsim::dist::{LogNormal, Sample};
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::stats::Welford;

/// One FL client's link and compute characteristics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlClient {
    /// Uplink throughput, bits per second.
    pub uplink_bps: f64,
    /// Downlink throughput, bits per second.
    pub downlink_bps: f64,
    /// Mean local training time per round, seconds.
    pub compute_s: f64,
}

/// Federated training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlConfig {
    /// Model size, bytes.
    pub model_bytes: u64,
    /// Clients available.
    pub clients: Vec<FlClient>,
    /// Clients sampled per round.
    pub participants_per_round: usize,
    /// Aggregation service (runs FedAvg at the edge or cloud).
    pub aggregator: Service,
    /// Rounds to simulate.
    pub rounds: u32,
}

impl FlConfig {
    /// A keyword-spotting-scale workload: 5 MB model, 20 heterogeneous
    /// phone clients, 10 sampled per round.
    pub fn reference(aggregator: Service, uplink_bps: f64, downlink_bps: f64) -> Self {
        let clients = (0..20)
            .map(|i| FlClient {
                uplink_bps,
                downlink_bps,
                // Device heterogeneity: 2-8 s local epochs.
                compute_s: 2.0 + 6.0 * (i as f64 / 19.0),
            })
            .collect();
        Self { model_bytes: 5_000_000, clients, participants_per_round: 10, aggregator, rounds: 50 }
    }
}

/// Result of a federated training simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlStats {
    /// Rounds completed.
    pub rounds: u32,
    /// Mean synchronous round time, seconds.
    pub mean_round_s: f64,
    /// Mean communication share of the round, seconds.
    pub mean_comm_s: f64,
    /// Fraction of round time spent waiting for the straggler beyond the
    /// median participant.
    pub straggler_overhead: f64,
    /// Total wall-clock, seconds.
    pub total_s: f64,
}

/// Simulates synchronous FedAvg. `access_rtt_ms` samples the per-message
/// radio RTT contribution (handshakes per transfer leg).
pub fn run_federated(config: &FlConfig, access: &dyn AccessModel, rng: &mut SimRng) -> FlStats {
    assert!(config.participants_per_round >= 1);
    assert!(config.participants_per_round <= config.clients.len());
    let bits = config.model_bytes as f64 * 8.0;

    let mut round_w = Welford::new();
    let mut comm_w = Welford::new();
    let mut straggler_w = Welford::new();

    for _ in 0..config.rounds {
        // Sample participants without replacement.
        let mut idx: Vec<usize> = (0..config.clients.len()).collect();
        rng.shuffle(&mut idx);
        idx.truncate(config.participants_per_round);

        let mut completion: Vec<f64> = idx
            .iter()
            .map(|&i| {
                let c = config.clients[i];
                // Download + upload, each paying connection setup + TLS +
                // request (three access round trips) plus serialisation at
                // the link rate.
                let handshakes = |rng: &mut SimRng| -> f64 {
                    (0..3).map(|_| access.sample_rtt_ms(rng)).sum::<f64>() / 1e3
                };
                let down = bits / c.downlink_bps + handshakes(rng);
                let up = bits / c.uplink_bps + handshakes(rng);
                let compute = LogNormal::from_mean_cv(c.compute_s, 0.25).sample(rng);
                down + compute + up
            })
            .collect();
        completion.sort_by(f64::total_cmp);
        let slowest = *completion.last().expect("participants");
        let median = completion[completion.len() / 2];
        let agg = LogNormal::from_mean_cv(config.aggregator.proc_ms / 1e3 + 0.05, 0.2).sample(rng);

        let round = slowest + agg;
        round_w.push(round);
        comm_w.push(2.0 * bits / config.clients[idx[0]].uplink_bps);
        straggler_w.push((slowest - median) / slowest);
    }

    FlStats {
        rounds: config.rounds,
        mean_round_s: round_w.mean(),
        mean_comm_s: comm_w.mean(),
        straggler_overhead: straggler_w.mean(),
        total_s: round_w.mean() * config.rounds as f64,
    }
}

/// Simple convergence model: rounds needed so the loss-decay term drops
/// below `epsilon` with `k` participants per round (1/√(k·r) decay, the
/// standard FedAvg bound shape).
pub fn rounds_to_converge(epsilon: f64, k: usize) -> u32 {
    assert!(epsilon > 0.0 && k > 0);
    (1.0 / (epsilon * epsilon * k as f64)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess};
    use sixg_netsim::topology::NodeId;

    fn aggregator() -> Service {
        Service::new("fedavg", NodeId(0), 50.0)
    }

    fn config(up: f64, down: f64) -> FlConfig {
        FlConfig::reference(aggregator(), up, down)
    }

    #[test]
    fn round_time_dominated_by_straggler_compute() {
        let mut rng = SimRng::from_seed(1);
        let stats = run_federated(&config(50e6, 200e6), &SixGAccess::default(), &mut rng);
        // Slowest client computes ~8 s; transfers are sub-second.
        assert!(stats.mean_round_s > 6.0, "round {}", stats.mean_round_s);
        assert!(stats.mean_round_s < 12.0, "round {}", stats.mean_round_s);
        assert!(stats.straggler_overhead > 0.05);
    }

    #[test]
    fn slow_uplink_inflates_rounds() {
        let mut rng = SimRng::from_seed(2);
        let fast = run_federated(&config(50e6, 200e6), &SixGAccess::default(), &mut rng);
        let slow = run_federated(&config(2e6, 20e6), &SixGAccess::default(), &mut rng);
        // 5 MB over 2 Mbit/s = 20 s upload alone.
        assert!(slow.mean_round_s > fast.mean_round_s + 15.0);
    }

    #[test]
    fn loaded_5g_access_adds_handshake_latency() {
        // Same random stream for both runs: the only difference is the
        // access model, so the comparison is exact, not statistical.
        let sixg =
            run_federated(&config(50e6, 200e6), &SixGAccess::default(), &mut SimRng::from_seed(3));
        let fiveg = run_federated(
            &config(50e6, 200e6),
            &FiveGAccess::new(CellEnv::new(0.9, 0.8)),
            &mut SimRng::from_seed(3),
        );
        // Two RTT handshakes per participant per round; loaded 5G adds
        // ~100+ ms vs sub-ms on 6G — visible but not dominant.
        assert!(fiveg.mean_round_s > sixg.mean_round_s);
    }

    #[test]
    fn convergence_rounds_shrink_with_participation() {
        assert!(rounds_to_converge(0.05, 10) < rounds_to_converge(0.05, 5));
        assert_eq!(rounds_to_converge(0.1, 1), 100);
    }

    #[test]
    fn deterministic() {
        let mut a = SimRng::from_seed(4);
        let mut b = SimRng::from_seed(4);
        let cfg = config(50e6, 200e6);
        let ra = run_federated(&cfg, &SixGAccess::default(), &mut a);
        let rb = run_federated(&cfg, &SixGAccess::default(), &mut b);
        assert_eq!(ra.mean_round_s, rb.mean_round_s);
    }

    #[test]
    #[should_panic]
    fn too_many_participants_rejected() {
        let mut cfg = config(50e6, 200e6);
        cfg.participants_per_round = 100;
        let mut rng = SimRng::from_seed(5);
        let _ = run_federated(&cfg, &SixGAccess::default(), &mut rng);
    }
}
