//! Service graphs and request-chain latency.
//!
//! The paper's AR application "comprises three core interacting services";
//! more generally every edge-AI workload here is a chain of services
//! hosted on topology nodes. A [`ServiceChain`] evaluates end-to-end
//! request latency: network delay between consecutive hosts plus each
//! service's processing time.

use serde::{Deserialize, Serialize};
use sixg_netsim::dist::{LogNormal, Sample};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::PathComputer;
use sixg_netsim::topology::NodeId;

/// A deployed service instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Service {
    /// Human-readable name (`"trajectory"`).
    pub name: String,
    /// Node hosting the service.
    pub host: NodeId,
    /// Mean processing time per request, ms.
    pub proc_ms: f64,
    /// Processing-time coefficient of variation.
    pub proc_cv: f64,
}

impl Service {
    /// Creates a service.
    pub fn new(name: impl Into<String>, host: NodeId, proc_ms: f64) -> Self {
        Self { name: name.into(), host, proc_ms, proc_cv: 0.3 }
    }

    /// One processing-time sample, ms.
    pub fn sample_proc_ms(&self, rng: &mut SimRng) -> f64 {
        if self.proc_ms <= 0.0 {
            return 0.0;
        }
        LogNormal::from_mean_cv(self.proc_ms, self.proc_cv).sample(rng)
    }
}

/// An ordered request chain: client → service₁ → service₂ → … .
#[derive(Debug, Clone)]
pub struct ServiceChain {
    /// The client's node (origin of the request).
    pub client: NodeId,
    /// Services in invocation order.
    pub stages: Vec<Service>,
}

/// Outcome of a chain evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainLatency {
    /// Total one-way latency through the chain, ms.
    pub total_ms: f64,
    /// Network share, ms.
    pub network_ms: f64,
    /// Processing share, ms.
    pub processing_ms: f64,
}

impl ServiceChain {
    /// Creates a chain.
    pub fn new(client: NodeId, stages: Vec<Service>) -> Self {
        assert!(!stages.is_empty(), "chain needs at least one service");
        Self { client, stages }
    }

    /// Samples one request's end-to-end latency, ms. `request_bytes` is
    /// the message size on every leg. Returns `None` if any leg is
    /// unroutable.
    pub fn sample_ms(
        &self,
        pc: &PathComputer<'_>,
        request_bytes: u32,
        rng: &mut SimRng,
    ) -> Option<ChainLatency> {
        let sampler = DelaySampler::new(pc.topology());
        let mut network = 0.0;
        let mut processing = 0.0;
        let mut at = self.client;
        for stage in &self.stages {
            if at != stage.host {
                let path = pc.route(at, stage.host)?;
                network += sampler.one_way_ms(&path.hops, request_bytes, rng);
            }
            processing += stage.sample_proc_ms(rng);
            at = stage.host;
        }
        Some(ChainLatency {
            total_ms: network + processing,
            network_ms: network,
            processing_ms: processing,
        })
    }

    /// Expected (mean) chain latency, ms; `None` when unroutable.
    pub fn expected_ms(&self, pc: &PathComputer<'_>) -> Option<f64> {
        let mut total = 0.0;
        let mut at = self.client;
        for stage in &self.stages {
            if at != stage.host {
                total += pc.expected_one_way_ms(at, stage.host)?;
            }
            total += stage.proc_ms;
            at = stage.host;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::routing::AsGraph;
    use sixg_netsim::stats::Welford;
    use sixg_netsim::topology::{Asn, LinkParams, NodeKind, Topology};

    fn world() -> (Topology, AsGraph, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node(NodeKind::UserEquipment, "c", GeoPoint::new(46.6, 14.3), Asn(1));
        let edge = t.add_node(NodeKind::EdgeServer, "edge", GeoPoint::new(46.61, 14.31), Asn(1));
        let cloud = t.add_node(NodeKind::CloudDc, "cloud", GeoPoint::new(48.2, 16.4), Asn(1));
        t.add_link(client, edge, LinkParams::access_wired());
        t.add_link(edge, cloud, LinkParams::backbone());
        (t, AsGraph::new(), client, edge, cloud)
    }

    #[test]
    fn chain_accumulates_network_and_processing() {
        let (t, g, client, edge, cloud) = world();
        let pc = PathComputer::new(&t, &g);
        let chain = ServiceChain::new(
            client,
            vec![Service::new("ingest", edge, 2.0), Service::new("infer", cloud, 5.0)],
        );
        let mut rng = SimRng::from_seed(1);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            let l = chain.sample_ms(&pc, 500, &mut rng).unwrap();
            assert!(l.total_ms > 0.0);
            assert!((l.total_ms - l.network_ms - l.processing_ms).abs() < 1e-9);
            w.push(l.total_ms);
        }
        let expect = chain.expected_ms(&pc).unwrap();
        assert!((w.mean() - expect).abs() / expect < 0.03, "{} vs {expect}", w.mean());
    }

    #[test]
    fn colocated_stage_skips_network() {
        let (t, g, client, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let chain = ServiceChain::new(
            client,
            vec![Service::new("a", edge, 1.0), Service::new("b", edge, 1.0)],
        );
        let mut rng = SimRng::from_seed(2);
        let one_leg = pc.expected_one_way_ms(client, edge).unwrap();
        let l = chain.sample_ms(&pc, 100, &mut rng).unwrap();
        // Only one network leg despite two stages.
        assert!(l.network_ms < 3.0 * one_leg);
        assert!((chain.expected_ms(&pc).unwrap() - (one_leg + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn edge_chain_faster_than_cloud_chain() {
        let (t, g, client, edge, cloud) = world();
        let pc = PathComputer::new(&t, &g);
        let edge_chain = ServiceChain::new(client, vec![Service::new("s", edge, 2.0)]);
        let cloud_chain = ServiceChain::new(client, vec![Service::new("s", cloud, 2.0)]);
        assert!(edge_chain.expected_ms(&pc).unwrap() < cloud_chain.expected_ms(&pc).unwrap());
    }

    #[test]
    fn unroutable_chain_is_none() {
        let (mut t, g, client, _, _) = world();
        let island = t.add_node(NodeKind::Server, "island", GeoPoint::new(0.0, 0.0), Asn(1));
        let pc = PathComputer::new(&t, &g);
        let chain = ServiceChain::new(client, vec![Service::new("s", island, 1.0)]);
        let mut rng = SimRng::from_seed(3);
        assert!(chain.sample_ms(&pc, 100, &mut rng).is_none());
        assert!(chain.expected_ms(&pc).is_none());
    }

    #[test]
    fn zero_processing_service() {
        let (t, g, client, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let chain = ServiceChain::new(client, vec![Service::new("relay", edge, 0.0)]);
        let mut rng = SimRng::from_seed(4);
        let l = chain.sample_ms(&pc, 100, &mut rng).unwrap();
        assert_eq!(l.processing_ms, 0.0);
    }
}
