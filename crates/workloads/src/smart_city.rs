//! Smart-city workloads (Section III-C).
//!
//! The paper's scalability requirement: "adaptive traffic management
//! systems in large cities like Tokyo could simultaneously analyze data
//! from up to 50,000 intersections", on networks supporting "hundreds of
//! thousands of devices per square kilometer". This module models an
//! intersection fleet pushing periodic telemetry into an analytics
//! service and answers: how many intersections can a deployment class
//! sustain within its control-loop deadline and capacity?

use serde::{Deserialize, Serialize};

/// One intersection's telemetry profile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IntersectionProfile {
    /// Update rate, Hz.
    pub update_hz: f64,
    /// Bytes per update (multi-camera aggregate features, not raw video).
    pub bytes_per_update: u32,
    /// Control-loop deadline: sensor → decision → actuation, ms.
    pub loop_deadline_ms: f64,
    /// Sensors (devices) per intersection.
    pub devices: u32,
}

impl Default for IntersectionProfile {
    fn default() -> Self {
        Self { update_hz: 10.0, bytes_per_update: 2_000, loop_deadline_ms: 100.0, devices: 24 }
    }
}

/// A deployment class against which the fleet is checked.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkClass {
    /// Human-readable name.
    pub name: &'static str,
    /// Aggregate uplink capacity available to the service, bits/s.
    pub capacity_bps: f64,
    /// Typical network RTT to the analytics service, ms.
    pub rtt_ms: f64,
    /// Device-density ceiling, devices per km².
    pub device_density_per_km2: f64,
}

impl NetworkClass {
    /// 5G as measured by the paper's campaign (urban mean ≈74 ms RTL).
    pub fn measured_5g() -> Self {
        Self {
            name: "5G (measured)",
            capacity_bps: 1e9,
            rtt_ms: 74.0,
            device_density_per_km2: 100_000.0,
        }
    }

    /// 5G at its specification targets.
    pub fn spec_5g() -> Self {
        Self { name: "5G (spec)", capacity_bps: 10e9, rtt_ms: 5.0, device_density_per_km2: 1e6 }
    }

    /// 6G targets (Section II: Tbit/s, sub-ms, 10⁷ devices/km²).
    pub fn target_6g() -> Self {
        Self { name: "6G (target)", capacity_bps: 1e12, rtt_ms: 0.4, device_density_per_km2: 1e7 }
    }
}

/// Result of a fleet feasibility analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetAnalysis {
    /// Network class analysed.
    pub class_name: String,
    /// Intersections requested.
    pub requested: u64,
    /// Intersections sustainable by uplink capacity.
    pub capacity_limit: u64,
    /// Whether the control-loop deadline holds (RTT + processing fits).
    pub deadline_met: bool,
    /// Whether the device density fits the class ceiling over `area_km2`.
    pub density_ok: bool,
    /// Aggregate offered load, bits/s.
    pub offered_bps: f64,
    /// Sustainable intersections considering all constraints.
    pub sustainable: u64,
}

/// Analyses a fleet of `n` intersections spread over `area_km2` against a
/// network class, with `processing_ms` of analytics per loop.
pub fn analyse_fleet(
    profile: IntersectionProfile,
    n: u64,
    area_km2: f64,
    class: NetworkClass,
    processing_ms: f64,
) -> FleetAnalysis {
    assert!(area_km2 > 0.0, "area must be positive");
    let per_intersection_bps = profile.update_hz * profile.bytes_per_update as f64 * 8.0;
    let offered = per_intersection_bps * n as f64;
    let capacity_limit = (class.capacity_bps / per_intersection_bps) as u64;
    let deadline_met = class.rtt_ms + processing_ms <= profile.loop_deadline_ms;
    let density = profile.devices as f64 * n as f64 / area_km2;
    let density_ok = density <= class.device_density_per_km2;
    let sustainable = if !deadline_met {
        0
    } else {
        let density_limit =
            (class.device_density_per_km2 * area_km2 / profile.devices as f64) as u64;
        n.min(capacity_limit).min(density_limit)
    };
    FleetAnalysis {
        class_name: class.name.to_string(),
        requested: n,
        capacity_limit,
        deadline_met,
        density_ok,
        offered_bps: offered,
        sustainable,
    }
}

/// The paper's Tokyo scenario: 50 000 intersections over ~2 200 km².
pub fn tokyo_scenario(class: NetworkClass) -> FleetAnalysis {
    analyse_fleet(IntersectionProfile::default(), 50_000, 2_200.0, class, 15.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokyo_feasible_on_6g() {
        let a = tokyo_scenario(NetworkClass::target_6g());
        assert!(a.deadline_met);
        assert!(a.density_ok);
        assert_eq!(a.sustainable, 50_000);
    }

    #[test]
    fn tokyo_capacity_limited_on_measured_5g() {
        let a = tokyo_scenario(NetworkClass::measured_5g());
        // 50k × 160 kbit/s = 8 Gbit/s offered against 1 Gbit/s.
        assert!(a.offered_bps > a.capacity_limit as f64 * 160_000.0 * 0.99);
        assert!(a.sustainable < 50_000, "sustainable {}", a.sustainable);
        assert!(a.sustainable > 1_000);
    }

    #[test]
    fn deadline_violation_zeroes_fleet() {
        let profile = IntersectionProfile { loop_deadline_ms: 50.0, ..Default::default() };
        let a = analyse_fleet(profile, 1000, 100.0, NetworkClass::measured_5g(), 15.0);
        // 74 ms RTT + 15 ms processing > 50 ms.
        assert!(!a.deadline_met);
        assert_eq!(a.sustainable, 0);
    }

    #[test]
    fn density_ceiling_binds_on_small_areas() {
        // 50k intersections crammed into 10 km².
        let a = analyse_fleet(
            IntersectionProfile::default(),
            50_000,
            10.0,
            NetworkClass::measured_5g(),
            15.0,
        );
        assert!(!a.density_ok);
        assert!(a.sustainable < 50_000);
    }

    #[test]
    fn spec_5g_meets_deadline_but_not_density_at_extremes() {
        // 50k dense intersections over 25 km² ⇒ 2M devices/km², above the
        // 5G spec ceiling of 1M/km² — only 6G's 10M/km² absorbs it.
        let profile = IntersectionProfile { devices: 1000, ..Default::default() };
        let a = analyse_fleet(profile, 50_000, 25.0, NetworkClass::spec_5g(), 15.0);
        assert!(a.deadline_met);
        assert!(!a.density_ok);
        let b = analyse_fleet(profile, 50_000, 25.0, NetworkClass::target_6g(), 15.0);
        assert!(b.density_ok);
    }

    #[test]
    fn offered_load_linear_in_fleet() {
        let p = IntersectionProfile::default();
        let a = analyse_fleet(p, 100, 10.0, NetworkClass::spec_5g(), 1.0);
        let b = analyse_fleet(p, 200, 10.0, NetworkClass::spec_5g(), 1.0);
        assert!((b.offered_bps / a.offered_bps - 2.0).abs() < 1e-9);
    }
}
