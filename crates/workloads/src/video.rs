//! Bidirectional video streaming (the ffmpeg emulation of Section IV-A).
//!
//! The paper's testbed "use\[s\] the ffmpeg codec suite to create a
//! bidirectional video stream between multiple locations". We model the
//! stream at frame granularity: a GOP structure of large I-frames and
//! smaller P-frames paced at the configured frame rate, each frame
//! traversing the network path and charged encode/decode time. The paper's
//! timing requirement — 60 FPS ⇒ 16.6 ms frame interval, motion-to-photon
//! below 20 ms — becomes a per-frame deadline-miss statistic.

use serde::{Deserialize, Serialize};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::rng::SimRng;
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{LinkId, NodeId, Topology};

/// Frame interval at 60 FPS, the paper's video requirement (ms).
pub const FRAME_INTERVAL_60FPS_MS: f64 = 1000.0 / 60.0;

/// Stream configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frames per second.
    pub fps: f64,
    /// Target bitrate, bits per second.
    pub bitrate_bps: f64,
    /// Group-of-pictures length (1 I-frame per GOP).
    pub gop: usize,
    /// I-frame size relative to the GOP-average frame size.
    pub i_frame_scale: f64,
    /// Mean encoder latency, ms.
    pub encode_ms: f64,
    /// Mean decoder latency, ms.
    pub decode_ms: f64,
    /// Per-frame delivery deadline, ms (motion-to-photon budget).
    pub deadline_ms: f64,
}

impl VideoConfig {
    /// The AR-headset stream of the paper's use case: 60 FPS, 20 ms
    /// motion-to-photon budget, lightweight hardware codec.
    pub fn ar_headset() -> Self {
        Self {
            fps: 60.0,
            bitrate_bps: 25e6,
            gop: 30,
            i_frame_scale: 4.0,
            encode_ms: 3.0,
            decode_ms: 2.0,
            deadline_ms: 20.0,
        }
    }

    /// A 4K telemedicine stream (Section III-B).
    pub fn telemedicine_4k() -> Self {
        Self {
            fps: 30.0,
            bitrate_bps: 45e6,
            gop: 60,
            i_frame_scale: 5.0,
            encode_ms: 8.0,
            decode_ms: 5.0,
            deadline_ms: 150.0,
        }
    }

    /// Average frame size, bytes.
    pub fn mean_frame_bytes(&self) -> f64 {
        self.bitrate_bps / self.fps / 8.0
    }

    /// I- and P-frame sizes in bytes, preserving the average.
    ///
    /// With one I-frame of scale `s` per GOP of `g` frames:
    /// `i + (g−1)·p = g·avg` and `i = s·p`.
    pub fn frame_sizes(&self) -> (u32, u32) {
        let avg = self.mean_frame_bytes();
        let g = self.gop as f64;
        let p = g * avg / (self.i_frame_scale + g - 1.0);
        ((self.i_frame_scale * p) as u32, p as u32)
    }
}

/// One generated frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index since stream start.
    pub index: u64,
    /// True for I-frames.
    pub is_iframe: bool,
    /// Encoded size in bytes.
    pub bytes: u32,
    /// Capture timestamp, ms since stream start.
    pub capture_ms: f64,
}

/// Frame-sequence generator.
#[derive(Debug, Clone)]
pub struct VideoStream {
    config: VideoConfig,
}

/// Delivery statistics of a streamed session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamStats {
    /// Frames delivered.
    pub frames: u64,
    /// Mean end-to-end frame latency (encode + network + decode), ms.
    pub mean_latency_ms: f64,
    /// 99th-ish percentile via max over the run (conservative).
    pub max_latency_ms: f64,
    /// Fraction of frames missing the deadline.
    pub late_ratio: f64,
    /// Mean frame size on the wire, bytes.
    pub mean_frame_bytes: f64,
}

impl VideoStream {
    /// Creates a stream for a configuration.
    pub fn new(config: VideoConfig) -> Self {
        assert!(config.fps > 0.0 && config.gop > 0, "invalid stream config");
        Self { config }
    }

    /// The stream configuration.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Generates the first `n` frames.
    pub fn frames(&self, n: u64) -> Vec<Frame> {
        let (i_bytes, p_bytes) = self.config.frame_sizes();
        let interval = 1000.0 / self.config.fps;
        (0..n)
            .map(|index| {
                let is_iframe = index % self.config.gop as u64 == 0;
                Frame {
                    index,
                    is_iframe,
                    bytes: if is_iframe { i_bytes } else { p_bytes },
                    capture_ms: index as f64 * interval,
                }
            })
            .collect()
    }

    /// Streams `n` frames over `hops`, adding an `extra_rtt_ms` round-trip
    /// contribution (e.g. a radio access model's sample) to each frame,
    /// and reports delivery statistics.
    pub fn deliver(
        &self,
        topo: &Topology,
        hops: &[(NodeId, LinkId)],
        n: u64,
        mut extra_ms: impl FnMut(&mut SimRng) -> f64,
        rng: &mut SimRng,
    ) -> StreamStats {
        let sampler = DelaySampler::new(topo);
        let mut lat = Welford::new();
        let mut size = Welford::new();
        let mut late = 0u64;
        for frame in self.frames(n) {
            let codec = sixg_netsim::dist::LogNormal::from_mean_cv(
                self.config.encode_ms + self.config.decode_ms,
                0.2,
            );
            let network = sampler.one_way_ms(hops, frame.bytes, rng) + extra_ms(rng);
            let total = network + sixg_netsim::dist::Sample::sample(&codec, rng);
            if total > self.config.deadline_ms {
                late += 1;
            }
            lat.push(total);
            size.push(frame.bytes as f64);
        }
        StreamStats {
            frames: n,
            mean_latency_ms: lat.mean(),
            max_latency_ms: lat.max(),
            late_ratio: late as f64 / n.max(1) as f64,
            mean_frame_bytes: size.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::routing::{AsGraph, PathComputer};
    use sixg_netsim::topology::{Asn, LinkParams, NodeKind};

    fn short_path() -> (Topology, Vec<(NodeId, LinkId)>) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::UserEquipment, "a", GeoPoint::new(46.6, 14.3), Asn(1));
        let b = t.add_node(NodeKind::EdgeServer, "b", GeoPoint::new(46.62, 14.32), Asn(1));
        t.add_link(a, b, LinkParams::access_wired());
        let g = AsGraph::new();
        let hops = PathComputer::new(&t, &g).route(a, b).unwrap().hops;
        (t, hops)
    }

    #[test]
    fn frame_sizes_preserve_bitrate() {
        let c = VideoConfig::ar_headset();
        let (i, p) = c.frame_sizes();
        assert!(i > p);
        let gop_bytes = i as f64 + (c.gop as f64 - 1.0) * p as f64;
        let expect = c.gop as f64 * c.mean_frame_bytes();
        assert!((gop_bytes - expect).abs() / expect < 0.01, "{gop_bytes} vs {expect}");
    }

    #[test]
    fn gop_structure() {
        let s = VideoStream::new(VideoConfig::ar_headset());
        let frames = s.frames(61);
        assert!(frames[0].is_iframe);
        assert!(frames[30].is_iframe);
        assert!(frames[60].is_iframe);
        assert!(!frames[1].is_iframe);
        assert_eq!(frames.iter().filter(|f| f.is_iframe).count(), 3);
        // 60 FPS pacing.
        assert!((frames[1].capture_ms - FRAME_INTERVAL_60FPS_MS).abs() < 1e-9);
    }

    #[test]
    fn local_delivery_meets_ar_deadline() {
        let (t, hops) = short_path();
        let s = VideoStream::new(VideoConfig::ar_headset());
        let mut rng = SimRng::from_seed(1);
        let stats = s.deliver(&t, &hops, 600, |_| 0.0, &mut rng);
        assert!(stats.late_ratio < 0.01, "late {}", stats.late_ratio);
        assert!(stats.mean_latency_ms < 10.0, "mean {}", stats.mean_latency_ms);
    }

    #[test]
    fn high_extra_latency_blows_deadline() {
        let (t, hops) = short_path();
        let s = VideoStream::new(VideoConfig::ar_headset());
        let mut rng = SimRng::from_seed(2);
        // A 5G cell with ~60 ms access RTT: every frame is late.
        let stats = s.deliver(&t, &hops, 300, |_| 60.0, &mut rng);
        assert!(stats.late_ratio > 0.99, "late {}", stats.late_ratio);
    }

    #[test]
    fn stats_deterministic() {
        let (t, hops) = short_path();
        let s = VideoStream::new(VideoConfig::ar_headset());
        let a = s.deliver(&t, &hops, 100, |_| 1.0, &mut SimRng::from_seed(3));
        let b = s.deliver(&t, &hops, 100, |_| 1.0, &mut SimRng::from_seed(3));
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
    }

    #[test]
    fn telemedicine_profile_is_heavier() {
        let ar = VideoConfig::ar_headset();
        let tele = VideoConfig::telemedicine_4k();
        assert!(tele.mean_frame_bytes() > ar.mean_frame_bytes());
        assert!(tele.deadline_ms > ar.deadline_ms);
    }
}
