//! Remote-surgery workload (Sections II-A, III-B).
//!
//! Telesurgery couples a kHz-rate haptic control loop with high-definition
//! video feedback. The haptic loop is the latency-critical part: force
//! feedback arriving late makes the master console unstable. We measure
//! the fraction of haptic cycles meeting their deadline and the stream's
//! frame-deadline behaviour under different access technologies.

use crate::video::{VideoConfig, VideoStream};
use serde::{Deserialize, Serialize};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{LinkId, NodeId, Topology};

/// Telesurgery session configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SurgeryConfig {
    /// Haptic loop rate, Hz (typically 1000).
    pub haptic_hz: f64,
    /// Haptic sample size, bytes.
    pub haptic_bytes: u32,
    /// Haptic round-trip deadline, ms (stability bound).
    pub haptic_deadline_ms: f64,
    /// Haptic cycles to simulate.
    pub cycles: u32,
    /// Video feed configuration.
    pub video: VideoConfig,
    /// Video frames to simulate.
    pub video_frames: u64,
}

impl Default for SurgeryConfig {
    fn default() -> Self {
        Self {
            haptic_hz: 1000.0,
            haptic_bytes: 128,
            haptic_deadline_ms: 10.0,
            cycles: 5000,
            video: VideoConfig::telemedicine_4k(),
            video_frames: 600,
        }
    }
}

/// Session outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurgeryStats {
    /// Fraction of haptic round trips within the deadline.
    pub haptic_on_time: f64,
    /// Mean haptic RTT, ms.
    pub haptic_mean_ms: f64,
    /// 95th-percentile proxy: mean + 2σ, ms.
    pub haptic_mean_plus_2sigma_ms: f64,
    /// Video frame deadline-miss ratio.
    pub video_late_ratio: f64,
    /// Whether the session is clinically viable (haptics ≥ 99.9 % on time
    /// and video ≥ 99 % on time).
    pub viable: bool,
}

/// Runs a telesurgery session: surgeon console ↔ robot over `hops`, with
/// `access` contributing the (single) wireless leg's RTT.
pub fn run_surgery(
    topo: &Topology,
    hops: &[(NodeId, LinkId)],
    access: &dyn AccessModel,
    config: SurgeryConfig,
    rng: &mut SimRng,
) -> SurgeryStats {
    let sampler = DelaySampler::new(topo);
    let mut w = Welford::new();
    let mut on_time = 0u32;
    for _ in 0..config.cycles {
        let rtt = access.sample_rtt_ms(rng)
            + sampler.one_way_ms(hops, config.haptic_bytes, rng)
            + sampler.one_way_ms(hops, config.haptic_bytes, rng);
        if rtt <= config.haptic_deadline_ms {
            on_time += 1;
        }
        w.push(rtt);
    }
    let stream = VideoStream::new(config.video);
    let video =
        stream.deliver(topo, hops, config.video_frames, |r| access.sample_rtt_ms(r) / 2.0, rng);

    let haptic_on_time = on_time as f64 / config.cycles.max(1) as f64;
    SurgeryStats {
        haptic_on_time,
        haptic_mean_ms: w.mean(),
        haptic_mean_plus_2sigma_ms: w.mean() + 2.0 * w.sample_std_dev(),
        video_late_ratio: video.late_ratio,
        viable: haptic_on_time >= 0.999 && video.late_ratio <= 0.01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess, WiredAccess};
    use sixg_netsim::routing::{AsGraph, PathComputer};
    use sixg_netsim::topology::{Asn, LinkParams, NodeKind};

    fn hospital_path() -> (Topology, Vec<(NodeId, LinkId)>) {
        let mut t = Topology::new();
        let console =
            t.add_node(NodeKind::UserEquipment, "console", GeoPoint::new(46.6, 14.3), Asn(1));
        let edge = t.add_node(NodeKind::EdgeServer, "or-edge", GeoPoint::new(46.61, 14.31), Asn(1));
        t.add_link(console, edge, LinkParams::access_wired());
        let g = AsGraph::new();
        let hops = PathComputer::new(&t, &g).route(console, edge).unwrap().hops;
        (t, hops)
    }

    #[test]
    fn wired_local_surgery_is_viable() {
        let (t, hops) = hospital_path();
        let mut rng = SimRng::from_seed(1);
        let s = run_surgery(&t, &hops, &WiredAccess::default(), SurgeryConfig::default(), &mut rng);
        assert!(s.viable, "on-time {} late {}", s.haptic_on_time, s.video_late_ratio);
    }

    #[test]
    fn sixg_local_surgery_is_viable() {
        let (t, hops) = hospital_path();
        let mut rng = SimRng::from_seed(2);
        let s = run_surgery(&t, &hops, &SixGAccess::default(), SurgeryConfig::default(), &mut rng);
        assert!(s.viable);
        assert!(s.haptic_mean_ms < 3.0);
    }

    #[test]
    fn measured_5g_surgery_not_viable() {
        let (t, hops) = hospital_path();
        let mut rng = SimRng::from_seed(3);
        let access = FiveGAccess::new(CellEnv::new(0.6, 0.4));
        let s = run_surgery(&t, &hops, &access, SurgeryConfig::default(), &mut rng);
        assert!(!s.viable);
        assert!(s.haptic_on_time < 0.1, "on-time {}", s.haptic_on_time);
    }

    #[test]
    fn ideal_5g_borderline_for_10ms_haptics() {
        let (t, hops) = hospital_path();
        let mut rng = SimRng::from_seed(4);
        let s = run_surgery(&t, &hops, &FiveGAccess::ideal(), SurgeryConfig::default(), &mut rng);
        // Most cycles make it, but not the 99.9% a surgeon needs.
        assert!(s.haptic_on_time > 0.5);
        assert!(!s.viable);
    }

    #[test]
    fn deterministic() {
        let (t, hops) = hospital_path();
        let a = run_surgery(
            &t,
            &hops,
            &SixGAccess::default(),
            SurgeryConfig::default(),
            &mut SimRng::from_seed(5),
        );
        let b = run_surgery(
            &t,
            &hops,
            &SixGAccess::default(),
            SurgeryConfig::default(),
            &mut SimRng::from_seed(5),
        );
        assert_eq!(a.haptic_mean_ms, b.haptic_mean_ms);
    }
}
