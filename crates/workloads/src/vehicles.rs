//! Autonomous-vehicle workloads (Sections II-A, III-B).
//!
//! Two facets the paper quantifies:
//!
//! * **Bandwidth**: "autonomous vehicles are expected to generate up to
//!   4 terabytes of data daily" — modelled by a per-sensor inventory whose
//!   daily volume lands in that band;
//! * **Latency**: V2X safety beacons (10 Hz CAM-style messages) must make
//!   their deadline for coordinated manoeuvres; we measure the on-time
//!   fraction under different access technologies.

use serde::{Deserialize, Serialize};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::topology::{LinkId, NodeId, Topology};

/// One onboard sensor class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensor {
    /// Sensor name.
    pub name: String,
    /// Raw output rate, megabytes per second.
    pub mb_per_s: f64,
    /// Duty cycle (fraction of drive time active).
    pub duty: f64,
}

/// A vehicle's sensor suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorSuite {
    /// Sensors onboard.
    pub sensors: Vec<Sensor>,
    /// Driving hours per day.
    pub hours_per_day: f64,
}

impl SensorSuite {
    /// A representative L4 autonomy suite (camera ring, lidar, radar,
    /// ultrasonics, GNSS/IMU, CAN telemetry).
    pub fn l4_reference() -> Self {
        Self {
            sensors: vec![
                Sensor { name: "camera-ring".into(), mb_per_s: 96.0, duty: 1.0 },
                Sensor { name: "lidar".into(), mb_per_s: 35.0, duty: 1.0 },
                Sensor { name: "radar".into(), mb_per_s: 2.0, duty: 1.0 },
                Sensor { name: "ultrasonic".into(), mb_per_s: 0.1, duty: 1.0 },
                Sensor { name: "gnss-imu".into(), mb_per_s: 0.2, duty: 1.0 },
                Sensor { name: "can-telemetry".into(), mb_per_s: 0.5, duty: 1.0 },
            ],
            hours_per_day: 8.0,
        }
    }

    /// Total data generated per day, terabytes.
    pub fn tb_per_day(&self) -> f64 {
        let mb_s: f64 = self.sensors.iter().map(|s| s.mb_per_s * s.duty).sum();
        mb_s * 3600.0 * self.hours_per_day / 1e6
    }

    /// Mean uplink bandwidth needed to offload a `fraction` of the raw
    /// data in real time, bits per second.
    pub fn offload_bps(&self, fraction: f64) -> f64 {
        let mb_s: f64 = self.sensors.iter().map(|s| s.mb_per_s * s.duty).sum();
        mb_s * 1e6 * 8.0 * fraction.clamp(0.0, 1.0)
    }
}

/// V2X safety-beacon configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct V2xConfig {
    /// Beacon rate, Hz (ETSI CAM: 1–10 Hz).
    pub beacon_hz: f64,
    /// Message size, bytes.
    pub bytes: u32,
    /// One-way delivery deadline, ms (coordinated manoeuvres).
    pub deadline_ms: f64,
    /// Beacons to simulate.
    pub count: u32,
}

impl Default for V2xConfig {
    fn default() -> Self {
        Self { beacon_hz: 10.0, bytes: 300, deadline_ms: 20.0, count: 5000 }
    }
}

/// Result of a V2X beacon run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct V2xStats {
    /// Beacons sent.
    pub sent: u32,
    /// Fraction delivered within the deadline.
    pub on_time_ratio: f64,
    /// Mean one-way delivery latency, ms.
    pub mean_ms: f64,
}

/// Runs a beacon stream from a vehicle over `hops` (vehicle → RSU/edge),
/// with `access` contributing the air interface.
pub fn run_v2x(
    topo: &Topology,
    hops: &[(NodeId, LinkId)],
    access: &dyn AccessModel,
    config: V2xConfig,
    rng: &mut SimRng,
) -> V2xStats {
    let sampler = DelaySampler::new(topo);
    let mut on_time = 0u32;
    let mut total = 0.0;
    for _ in 0..config.count {
        // One-way: half the sampled access RTT plus the wire path.
        let lat = access.sample_rtt_ms(rng) / 2.0 + sampler.one_way_ms(hops, config.bytes, rng);
        if lat <= config.deadline_ms {
            on_time += 1;
        }
        total += lat;
    }
    V2xStats {
        sent: config.count,
        on_time_ratio: on_time as f64 / config.count.max(1) as f64,
        mean_ms: total / config.count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess};
    use sixg_netsim::routing::{AsGraph, PathComputer};
    use sixg_netsim::topology::{Asn, LinkParams, NodeKind};

    #[test]
    fn l4_suite_generates_about_4tb_per_day() {
        let suite = SensorSuite::l4_reference();
        let tb = suite.tb_per_day();
        assert!((3.5..=4.5).contains(&tb), "got {tb} TB/day");
    }

    #[test]
    fn offload_bandwidth_scales() {
        let suite = SensorSuite::l4_reference();
        let full = suite.offload_bps(1.0);
        let tenth = suite.offload_bps(0.1);
        assert!((full / tenth - 10.0).abs() < 1e-9);
        // Full raw offload needs ~1 Gbit/s.
        assert!(full > 0.9e9 && full < 1.3e9, "full {full}");
    }

    fn rsu_path() -> (Topology, Vec<(NodeId, LinkId)>) {
        let mut t = Topology::new();
        let v = t.add_node(NodeKind::UserEquipment, "obu", GeoPoint::new(46.6, 14.3), Asn(1));
        let rsu = t.add_node(NodeKind::EdgeServer, "rsu", GeoPoint::new(46.605, 14.305), Asn(1));
        t.add_link(v, rsu, LinkParams::access_wired());
        let g = AsGraph::new();
        let hops = PathComputer::new(&t, &g).route(v, rsu).unwrap().hops;
        (t, hops)
    }

    #[test]
    fn sixg_beacons_make_deadline() {
        let (t, hops) = rsu_path();
        let mut rng = SimRng::from_seed(1);
        let stats = run_v2x(&t, &hops, &SixGAccess::default(), V2xConfig::default(), &mut rng);
        assert!(stats.on_time_ratio > 0.99, "on-time {}", stats.on_time_ratio);
    }

    #[test]
    fn loaded_5g_beacons_miss_deadline() {
        let (t, hops) = rsu_path();
        let mut rng = SimRng::from_seed(2);
        let access = FiveGAccess::new(CellEnv::new(0.9, 0.4));
        let stats = run_v2x(&t, &hops, &access, V2xConfig::default(), &mut rng);
        assert!(stats.on_time_ratio < 0.5, "on-time {}", stats.on_time_ratio);
        assert!(stats.mean_ms > 20.0);
    }

    #[test]
    fn ideal_5g_is_borderline() {
        let (t, hops) = rsu_path();
        let mut rng = SimRng::from_seed(3);
        let stats = run_v2x(&t, &hops, &FiveGAccess::ideal(), V2xConfig::default(), &mut rng);
        // Best-case 5G mostly makes a 20 ms one-way deadline.
        assert!(stats.on_time_ratio > 0.9, "on-time {}", stats.on_time_ratio);
    }

    #[test]
    fn v2x_deterministic() {
        let (t, hops) = rsu_path();
        let a = run_v2x(
            &t,
            &hops,
            &SixGAccess::default(),
            V2xConfig::default(),
            &mut SimRng::from_seed(4),
        );
        let b = run_v2x(
            &t,
            &hops,
            &SixGAccess::default(),
            V2xConfig::default(),
            &mut SimRng::from_seed(4),
        );
        assert_eq!(a, b);
    }
}
