//! Industrial-automation workloads (Section III-C).
//!
//! "A fully automated manufacturing line can generate over 5 terabytes of
//! data per day, requiring 6G networks to allocate resources to ensure
//! real-time adjustments dynamically." We model a line as a device
//! inventory with per-class rates and control loops, and check both the
//! data-volume claim and the closed-loop deadline feasibility.

use serde::{Deserialize, Serialize};
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;

/// A class of devices on the line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Class name.
    pub name: String,
    /// Number of devices.
    pub count: u32,
    /// Message rate per device, Hz.
    pub rate_hz: f64,
    /// Bytes per message.
    pub bytes: u32,
    /// Closed-loop deadline for this class, ms (None = telemetry only).
    pub loop_deadline_ms: Option<f64>,
}

/// A manufacturing line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactoryLine {
    /// Device classes.
    pub classes: Vec<DeviceClass>,
    /// Operating hours per day.
    pub hours_per_day: f64,
}

impl FactoryLine {
    /// A reference fully-automated line: vision QA, motion controllers,
    /// PLC cells, vibration/condition monitoring, AGVs.
    pub fn reference() -> Self {
        Self {
            classes: vec![
                DeviceClass {
                    name: "vision-qa".into(),
                    count: 40,
                    rate_hz: 30.0,
                    bytes: 50_000,
                    loop_deadline_ms: Some(50.0),
                },
                DeviceClass {
                    name: "motion-control".into(),
                    count: 400,
                    rate_hz: 500.0,
                    bytes: 64,
                    loop_deadline_ms: Some(2.0),
                },
                DeviceClass {
                    name: "plc-cells".into(),
                    count: 200,
                    rate_hz: 100.0,
                    bytes: 256,
                    loop_deadline_ms: Some(10.0),
                },
                DeviceClass {
                    name: "condition-monitoring".into(),
                    count: 10_000,
                    rate_hz: 1.0,
                    bytes: 1_000,
                    loop_deadline_ms: None,
                },
                DeviceClass {
                    name: "agv".into(),
                    count: 60,
                    rate_hz: 20.0,
                    bytes: 2_000,
                    loop_deadline_ms: Some(20.0),
                },
            ],
            hours_per_day: 24.0,
        }
    }

    /// Total devices.
    pub fn device_count(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Aggregate offered load, bits per second.
    pub fn offered_bps(&self) -> f64 {
        self.classes.iter().map(|c| c.count as f64 * c.rate_hz * c.bytes as f64 * 8.0).sum()
    }

    /// Data generated per day, terabytes.
    pub fn tb_per_day(&self) -> f64 {
        self.offered_bps() / 8.0 * 3600.0 * self.hours_per_day / 1e12
    }

    /// Checks every control-loop class against an access model: fraction
    /// of `samples` loop iterations (one access RTT each, the controller
    /// being at the local edge) meeting the class deadline.
    pub fn loop_feasibility(
        &self,
        access: &dyn AccessModel,
        samples: u32,
        rng: &mut SimRng,
    ) -> Vec<(String, f64)> {
        self.classes
            .iter()
            .filter_map(|c| {
                let deadline = c.loop_deadline_ms?;
                let ok = (0..samples).filter(|_| access.sample_rtt_ms(rng) <= deadline).count();
                Some((c.name.clone(), ok as f64 / samples.max(1) as f64))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess};

    #[test]
    fn reference_line_exceeds_5tb_per_day() {
        let line = FactoryLine::reference();
        let tb = line.tb_per_day();
        assert!(tb > 5.0, "got {tb} TB/day");
        assert!(tb < 10.0, "implausibly high: {tb} TB/day");
    }

    #[test]
    fn device_count_in_tens_of_thousands() {
        let line = FactoryLine::reference();
        assert!(line.device_count() >= 10_000);
    }

    #[test]
    fn offered_load_needs_hundreds_of_mbps() {
        let line = FactoryLine::reference();
        let bps = line.offered_bps();
        assert!(bps > 400e6 && bps < 2e9, "got {bps}");
    }

    #[test]
    fn motion_control_infeasible_even_on_ideal_5g() {
        // 2 ms loops cannot ride a ~5.5 ms access RTT — the classic case
        // for wired fieldbus or 6G.
        let line = FactoryLine::reference();
        let mut rng = SimRng::from_seed(1);
        let res = line.loop_feasibility(&FiveGAccess::ideal(), 2000, &mut rng);
        let motion = res.iter().find(|(n, _)| n == "motion-control").unwrap();
        assert!(motion.1 < 0.05, "motion on-time {}", motion.1);
    }

    #[test]
    fn sixg_makes_all_loops() {
        let line = FactoryLine::reference();
        let mut rng = SimRng::from_seed(2);
        let res = line.loop_feasibility(&SixGAccess::default(), 2000, &mut rng);
        for (name, ratio) in res {
            assert!(ratio > 0.99, "{name}: {ratio}");
        }
    }

    #[test]
    fn loaded_5g_degrades_plc_loops() {
        let line = FactoryLine::reference();
        let mut rng = SimRng::from_seed(3);
        let loaded = FiveGAccess::new(CellEnv::new(0.8, 0.5));
        let res = line.loop_feasibility(&loaded, 2000, &mut rng);
        let plc = res.iter().find(|(n, _)| n == "plc-cells").unwrap();
        assert!(plc.1 < 0.2, "plc on-time {}", plc.1);
    }

    #[test]
    fn telemetry_classes_excluded_from_loop_check() {
        let line = FactoryLine::reference();
        let mut rng = SimRng::from_seed(4);
        let res = line.loop_feasibility(&SixGAccess::default(), 100, &mut rng);
        assert!(res.iter().all(|(n, _)| n != "condition-monitoring"));
        assert_eq!(res.len(), 4);
    }
}
