//! The AR dodgeball use case (Section IV-A).
//!
//! Two players wearing AR headsets throw *virtual* balls at each other.
//! Three services interact:
//!
//! 1. **Video Streaming** connects the players' views;
//! 2. **Remote Controller** lets a player aim and trigger a throw;
//! 3. **Trajectory** applies the event to the stream and renders the
//!    ball's flight.
//!
//! The paper's QoE criterion: with a round-trip budget of 20 ms \[15\], a
//! player must never be "struck by a ball even though their physical
//! location no longer aligns with the virtual ball's position". We model
//! exactly that failure: if the victim's pose, as known to the Trajectory
//! service at impact time, is older than the budget, the hit decision uses
//! stale data and may be *unfair*.

use crate::services::{Service, ServiceChain};
use serde::{Deserialize, Serialize};
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::PathComputer;
use sixg_netsim::topology::NodeId;

/// The paper's maximum acceptable round-trip latency for the game, ms.
pub const RTL_BUDGET_MS: f64 = 20.0;

/// Game configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArGameConfig {
    /// Number of throws simulated.
    pub throws: u32,
    /// Ball flight-time range, ms (distance / throw speed).
    pub flight_ms: (f64, f64),
    /// Probability the victim physically evades within the flight time
    /// when their displayed world is current.
    pub evade_skill: f64,
    /// Round-trip pose budget, ms.
    pub rtl_budget_ms: f64,
}

impl Default for ArGameConfig {
    fn default() -> Self {
        Self {
            throws: 1000,
            flight_ms: (400.0, 800.0),
            evade_skill: 0.6,
            rtl_budget_ms: RTL_BUDGET_MS,
        }
    }
}

/// A deployed game session.
pub struct ArGame {
    /// Thrower's headset node.
    pub thrower: NodeId,
    /// Victim's headset node.
    pub victim: NodeId,
    /// Video Streaming service.
    pub video: Service,
    /// Remote Controller service.
    pub controller: Service,
    /// Trajectory service.
    pub trajectory: Service,
    /// Configuration.
    pub config: ArGameConfig,
}

/// Session outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArGameResult {
    /// Throws simulated.
    pub throws: u32,
    /// Hits that were fair (victim's world was current).
    pub fair_hits: u32,
    /// Hits registered on stale pose data — the paper's failure mode.
    pub unfair_hits: u32,
    /// Successful evasions.
    pub dodges: u32,
    /// Mean pose age at impact, ms.
    pub mean_pose_age_ms: f64,
    /// Mean end-to-end event latency (controller → trajectory → victim
    /// display), ms.
    pub mean_event_latency_ms: f64,
}

impl ArGameResult {
    /// Fraction of throws resolved on stale data.
    pub fn unfair_ratio(&self) -> f64 {
        self.unfair_hits as f64 / self.throws.max(1) as f64
    }
}

impl ArGame {
    /// Plays a session. `thrower_access` / `victim_access` contribute the
    /// radio RTT of each headset (None ⇒ wired/ideal).
    pub fn play(
        &self,
        pc: &PathComputer<'_>,
        thrower_access: Option<&dyn AccessModel>,
        victim_access: Option<&dyn AccessModel>,
        rng: &mut SimRng,
    ) -> Option<ArGameResult> {
        // Event chain: thrower → controller → trajectory.
        let event_chain =
            ServiceChain::new(self.thrower, vec![self.controller.clone(), self.trajectory.clone()]);
        // Display chain: trajectory → video → victim (modelled as a chain
        // from the trajectory host).
        let display_chain = ServiceChain::new(
            self.trajectory.host,
            vec![self.video.clone(), Service::new("victim-display", self.victim, 1.0)],
        );

        let mut fair_hits = 0u32;
        let mut unfair_hits = 0u32;
        let mut dodges = 0u32;
        let mut pose_age = 0.0f64;
        let mut event_lat = 0.0f64;

        for _ in 0..self.config.throws {
            let up = event_chain.sample_ms(pc, 200, rng)?;
            let down = display_chain.sample_ms(pc, 1200, rng)?;
            let thrower_air = thrower_access.map(|a| a.sample_rtt_ms(rng) / 2.0).unwrap_or(0.0);
            let victim_air = victim_access.map(|a| a.sample_rtt_ms(rng) / 2.0).unwrap_or(0.0);
            let event_latency = up.total_ms + thrower_air + down.total_ms + victim_air;

            // The victim's pose known at the Trajectory service is one
            // upstream trip old: victim → video → trajectory (sampled via
            // the symmetric display chain) plus the victim's air leg.
            let pose_up = display_chain.sample_ms(pc, 200, rng)?;
            let age = pose_up.total_ms + victim_air;

            let flight = rng.uniform(self.config.flight_ms.0, self.config.flight_ms.1);
            // Victim sees the throw `event_latency` after it happened and
            // has the remaining flight time to react.
            let reaction_window = flight - event_latency;
            let evades = reaction_window > 0.0 && rng.chance(self.config.evade_skill);

            if evades {
                if age > self.config.rtl_budget_ms {
                    // Stale pose at impact: the trajectory service still
                    // believes the victim is at the old position — the hit
                    // lands although the player moved.
                    unfair_hits += 1;
                } else {
                    dodges += 1;
                }
            } else {
                fair_hits += 1;
            }
            pose_age += age;
            event_lat += event_latency;
        }

        Some(ArGameResult {
            throws: self.config.throws,
            fair_hits,
            unfair_hits,
            dodges,
            mean_pose_age_ms: pose_age / self.config.throws.max(1) as f64,
            mean_event_latency_ms: event_lat / self.config.throws.max(1) as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess};
    use sixg_netsim::routing::AsGraph;
    use sixg_netsim::topology::{Asn, LinkParams, NodeKind, Topology};

    /// Two headsets in Klagenfurt, services either on a local edge node or
    /// in a Vienna cloud.
    fn world() -> (Topology, AsGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::UserEquipment, "hmd-a", GeoPoint::new(46.61, 14.28), Asn(1));
        let b = t.add_node(NodeKind::UserEquipment, "hmd-b", GeoPoint::new(46.63, 14.31), Asn(1));
        let edge = t.add_node(NodeKind::EdgeServer, "edge", GeoPoint::new(46.62, 14.30), Asn(1));
        let cloud = t.add_node(NodeKind::CloudDc, "cloud", GeoPoint::new(48.21, 16.37), Asn(1));
        t.add_link(a, edge, LinkParams::access_wired());
        t.add_link(b, edge, LinkParams::access_wired());
        t.add_link(
            edge,
            cloud,
            LinkParams { bandwidth_bps: 10e9, utilisation: 0.5, extra_ms: 1.0 },
        );
        (t, AsGraph::new(), a, b, edge, cloud)
    }

    fn game_on(host: NodeId, a: NodeId, b: NodeId) -> ArGame {
        ArGame {
            thrower: a,
            victim: b,
            video: Service::new("video", host, 2.0),
            controller: Service::new("controller", host, 0.5),
            trajectory: Service::new("trajectory", host, 1.5),
            config: ArGameConfig::default(),
        }
    }

    #[test]
    fn edge_hosting_with_6g_is_fair() {
        let (t, g, a, b, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let game = game_on(edge, a, b);
        let access = SixGAccess::default();
        let mut rng = SimRng::from_seed(1);
        let r = game.play(&pc, Some(&access), Some(&access), &mut rng).unwrap();
        assert!(r.unfair_ratio() < 0.02, "unfair {}", r.unfair_ratio());
        assert!(r.dodges > 0);
        assert!(r.mean_pose_age_ms < RTL_BUDGET_MS);
    }

    #[test]
    fn loaded_5g_produces_unfair_hits() {
        let (t, g, a, b, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let game = game_on(edge, a, b);
        // A cell like the campaign's loaded ones: ~60 ms access RTT.
        let access = FiveGAccess::new(CellEnv::new(0.9, 0.5));
        let mut rng = SimRng::from_seed(2);
        let r = game.play(&pc, Some(&access), Some(&access), &mut rng).unwrap();
        assert!(r.unfair_ratio() > 0.3, "unfair {}", r.unfair_ratio());
        assert!(r.mean_pose_age_ms > RTL_BUDGET_MS);
    }

    #[test]
    fn cloud_hosting_worse_than_edge() {
        let (t, g, a, b, edge, cloud) = world();
        let pc = PathComputer::new(&t, &g);
        let access = SixGAccess::default();
        let mut rng = SimRng::from_seed(3);
        let edge_r = game_on(edge, a, b).play(&pc, Some(&access), Some(&access), &mut rng).unwrap();
        let cloud_r =
            game_on(cloud, a, b).play(&pc, Some(&access), Some(&access), &mut rng).unwrap();
        assert!(cloud_r.mean_event_latency_ms > edge_r.mean_event_latency_ms);
        assert!(cloud_r.mean_pose_age_ms > edge_r.mean_pose_age_ms);
    }

    #[test]
    fn accounting_adds_up() {
        let (t, g, a, b, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let game = game_on(edge, a, b);
        let mut rng = SimRng::from_seed(4);
        let r = game.play(&pc, None, None, &mut rng).unwrap();
        assert_eq!(r.fair_hits + r.unfair_hits + r.dodges, r.throws);
    }

    #[test]
    fn deterministic_sessions() {
        let (t, g, a, b, edge, _) = world();
        let pc = PathComputer::new(&t, &g);
        let game = game_on(edge, a, b);
        let r1 = game.play(&pc, None, None, &mut SimRng::from_seed(5)).unwrap();
        let r2 = game.play(&pc, None, None, &mut SimRng::from_seed(5)).unwrap();
        assert_eq!(r1, r2);
    }
}
