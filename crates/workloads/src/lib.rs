//! # sixg-workloads — edge-AI application models
//!
//! The paper motivates its analysis with a family of latency- and
//! bandwidth-critical applications (Sections I–III) and evaluates against
//! an AR gaming use case (Section IV-A). This crate turns each of them
//! into an executable workload over the `sixg-netsim` substrate:
//!
//! * [`services`] — service graphs and request-chain latency;
//! * [`video`] — the ffmpeg-style bidirectional video stream (GOP frame
//!   generation, frame deadlines at 60 FPS / 16.6 ms);
//! * [`ar_game`] — the AR dodgeball application with its three services
//!   (Video Streaming, Remote Controller, Trajectory) and the 20 ms
//!   round-trip budget of \[15\];
//! * [`vehicles`] — autonomous-vehicle workloads (4 TB/day sensor load,
//!   10 Hz V2X safety beacons);
//! * [`smart_city`] — the adaptive traffic-management scenario (up to
//!   50 000 intersections, Section III-C);
//! * [`industrial`] — smart-factory lines (5 TB/day, tens of thousands of
//!   sensors);
//! * [`healthcare`] — remote surgery (kHz haptic loop + HD video).

//!
//! The paper's future work (Section VI) names federated learning at the
//! edge; [`federated`] implements it as a synchronous FedAvg workload.

pub mod ar_game;
pub mod federated;
pub mod healthcare;
pub mod industrial;
pub mod services;
pub mod smart_city;
pub mod vehicles;
pub mod video;

pub use ar_game::{ArGame, ArGameConfig, ArGameResult};
pub use services::{Service, ServiceChain};
pub use video::{VideoConfig, VideoStream};
