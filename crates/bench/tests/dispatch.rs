//! Torture tests for `measure::dispatch` — the fault-tolerant coordinator.
//!
//! Every test runs an in-process `sixg-serve` fleet (real listeners on
//! ephemeral ports, real wire frames) and holds the distribution contract
//! to the same standard as the checkpoint kill/resume suite: whatever the
//! fleet goes through — clean runs at every pool size, a worker killed at
//! fuzzed points mid-shard, the whole fleet dying — the merged report is
//! either byte-identical to the offline in-process execution or the
//! dispatch fails loudly. Worker deaths are deterministic: the armed
//! [`FaultPlan`] cuts every connection right after the worker writes its
//! K-th `STORE` frame, so each K drills a different resume point with no
//! process-kill timing race.
//!
//! [`FaultPlan`]: sixg_bench::serve::FaultPlan

use sixg_bench::serve::Server;
use sixg_measure::dispatch::{dispatch_sweep, DispatchConfig, DispatchError};
use sixg_measure::exec::{execute, ExecReport, ExecRequest};
use sixg_measure::spec::ScenarioSpec;
use sixg_measure::sweep::{Sweep, SweepSpec};
use std::time::Duration;

/// One-pass Klagenfurt: the fast fixture every sweep below builds on.
fn flat_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::klagenfurt();
    spec.campaign.passes = 1;
    spec
}

/// A three-run cadence sweep (base + 2 variants) over the flat spec.
fn tiny_sweep() -> Sweep {
    let spec = SweepSpec::from_json(
        r#"{"name": "dispatch-tiny", "base": "base.json",
            "axes": [{"kind": "override", "path": "$.campaign.sample_interval_s",
                       "values": [2.0, 4.0]}]}"#,
    )
    .expect("sweep spec parses");
    Sweep::new(spec, &flat_spec().to_json()).expect("sweep compiles")
}

/// The offline anchor: the exact bytes a single-machine sweep serialises.
fn offline_bytes(sweep: &Sweep) -> String {
    let request = ExecRequest::sweep(sweep.spec.clone(), sweep.base_value().clone());
    match execute(&request).expect("offline execution") {
        ExecReport::Sweep(run) => run.report.to_json(),
        _ => unreachable!("a sweep request yields a sweep report"),
    }
}

/// Spawns `n` in-process workers, arming `kill.0`'s fault plan to cut all
/// connections after that worker's `kill.1`-th STORE frame. Returns the
/// fleet addresses.
fn spawn_fleet(n: usize, threads: Option<usize>, kill: Option<(usize, u64)>) -> Vec<String> {
    (0..n)
        .map(|w| {
            let server = Server::bind("127.0.0.1:0", 4, threads).expect("bind worker");
            let addr = server.local_addr().expect("bound").to_string();
            if let Some((victim, after)) = kill {
                if victim == w {
                    server.set_fault_plan(after);
                }
            }
            std::thread::spawn(move || server.run());
            addr
        })
        .collect()
}

/// A config with a short interval (many STORE frames per shard, so every
/// kill point lands mid-shard) and fast failure detection.
fn config(workers: Vec<String>) -> DispatchConfig {
    let mut cfg = DispatchConfig::new(workers);
    cfg.interval = 4;
    cfg.backoff_initial = Duration::from_millis(5);
    cfg.backoff_max = Duration::from_millis(50);
    cfg.timeout = Duration::from_secs(60);
    cfg
}

/// Clean fleet: the merged report matches the offline bytes at every
/// worker pool size, and the stats record a fault-free run.
#[test]
fn clean_fleet_matches_offline_at_pool_sizes_1_2_4() {
    let sweep = tiny_sweep();
    let offline = offline_bytes(&sweep);
    for threads in [1usize, 2, 4] {
        let cfg = config(spawn_fleet(2, Some(threads), None));
        let dispatched = dispatch_sweep(&sweep, &cfg).expect("clean dispatch");
        assert_eq!(
            dispatched.run.report.to_json(),
            offline,
            "fleet report diverged at pool size {threads}"
        );
        assert_eq!(dispatched.stats.reassignments, 0, "clean fleet reassigned at {threads}");
        assert!(dispatched.stats.dead_workers.is_empty(), "clean fleet lost a worker");
    }
}

/// The torture matrix: one worker of three dies after its K-th STORE
/// frame, for fuzzed kill points across the shard lifecycle — right after
/// the first manifest, mid-cursor-stream, deep into a shard. Every drill
/// must reassign the dead worker's shards and still reproduce the offline
/// bytes; later kill points (a cursor already streamed) must resume
/// mid-shard rather than restart.
#[test]
fn killed_worker_is_reassigned_and_the_report_stays_bitwise_identical() {
    let sweep = tiny_sweep();
    let offline = offline_bytes(&sweep);
    for kill_after in [1u64, 2, 3, 5, 8] {
        let workers = spawn_fleet(3, Some(2), Some((0, kill_after)));
        let victim = workers[0].clone();
        let cfg = config(workers);
        let dispatched = dispatch_sweep(&sweep, &cfg)
            .unwrap_or_else(|e| panic!("dispatch with kill point {kill_after} failed: {e}"));
        let stats = &dispatched.stats;
        assert_eq!(
            dispatched.run.report.to_json(),
            offline,
            "fleet report diverged at kill point {kill_after}"
        );
        // Whether the victim is formally *declared* dead is timing-bound:
        // on a tiny workload the live workers can steal its requeued
        // shards before its slot burns through max_attempts. Only the
        // victim may ever be declared, and the shards must move either way.
        assert!(
            stats.dead_workers.iter().all(|d| *d == victim),
            "kill point {kill_after}: a healthy worker was declared dead ({stats:?})"
        );
        assert!(
            stats.reassignments >= 1,
            "kill point {kill_after}: the dead worker's shard was never reassigned"
        );
        if kill_after >= 3 {
            // By the third STORE frame the shard has streamed its manifest
            // and at least one committed cursor (interval 4 is far below
            // the per-run item count), so the reassignment must resume
            // from that cursor instead of restarting the shard.
            assert!(
                stats.resumed_shards >= 1,
                "kill point {kill_after}: reassignment restarted instead of resuming \
                 (stats: {stats:?})"
            );
        }
    }
}

/// Pool-size sweep under fault: the same mid-shard kill drill holds at
/// worker pool sizes 1, 2 and 4 — determinism survives the combination of
/// reassignment and parallel fold.
#[test]
fn kill_drill_is_bitwise_identical_at_pool_sizes_1_2_4() {
    let sweep = tiny_sweep();
    let offline = offline_bytes(&sweep);
    for threads in [1usize, 2, 4] {
        let workers = spawn_fleet(3, Some(threads), Some((1, 4)));
        let victim = workers[1].clone();
        let cfg = config(workers);
        let dispatched = dispatch_sweep(&sweep, &cfg)
            .unwrap_or_else(|e| panic!("kill drill at pool size {threads} failed: {e}"));
        assert_eq!(
            dispatched.run.report.to_json(),
            offline,
            "fleet report diverged at pool size {threads} under fault"
        );
        assert!(
            dispatched.stats.dead_workers.iter().all(|d| *d == victim),
            "pool size {threads}: a healthy worker was declared dead ({:?})",
            dispatched.stats
        );
        assert!(dispatched.stats.reassignments >= 1, "pool size {threads}: no reassignment");
    }
}

/// When every worker dies with shards outstanding the dispatch must fail
/// with `AllWorkersDead` — not hang, not return a partial report.
#[test]
fn a_fully_dead_fleet_fails_loudly() {
    let sweep = tiny_sweep();
    let mut cfg = config(spawn_fleet(1, Some(1), Some((0, 1))));
    cfg.max_attempts = 2;
    match dispatch_sweep(&sweep, &cfg) {
        Err(DispatchError::AllWorkersDead(_)) => {}
        Err(other) => panic!("expected AllWorkersDead, got: {other}"),
        Ok(run) => panic!("a dead fleet produced a report: {:?}", run.stats),
    }
}

/// An unreachable fleet (nothing ever listened) is also a loud failure.
#[test]
fn an_unreachable_fleet_fails_loudly() {
    let sweep = tiny_sweep();
    // Bind-then-drop: the port was ours a moment ago, so nothing else is
    // listening there now.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("bound").to_string()
    };
    let mut cfg = config(vec![addr]);
    cfg.max_attempts = 2;
    cfg.connect_timeout = Duration::from_millis(200);
    match dispatch_sweep(&sweep, &cfg) {
        Err(DispatchError::AllWorkersDead(_)) => {}
        Err(other) => panic!("expected AllWorkersDead, got: {other}"),
        Ok(run) => panic!("an unreachable fleet produced a report: {:?}", run.stats),
    }
}
