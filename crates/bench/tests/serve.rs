//! Spawn-the-binary integration tests for the `sixg-serve` daemon.
//!
//! Every test starts the real compiled binary on an ephemeral port
//! (discovered from the banner line), drives it through the blocking
//! [`ServeClient`], and holds the wire to the facade contract: the bytes a
//! `REPORT` frame carries are exactly the bytes the in-process
//! [`execute`] serialises for the same request — across concurrent
//! clients, repeated (cache-hit) requests, and every action kind.

use sixg_bench::serve_client::ServeClient;
use sixg_measure::exec::{execute, ExecRequest};
use sixg_measure::spec::ScenarioSpec;
use sixg_measure::sweep::SweepSpec;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// The daemon under test; killed on drop so no test leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sixg-serve"))
            .args(["--addr", "127.0.0.1:0", "--cache", "4"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn sixg-serve");
        // The discovery contract: the first stdout line names the bound
        // address — "sixg-serve: listening on HOST:PORT (cache capacity N)".
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut banner = String::new();
        BufReader::new(stdout).read_line(&mut banner).expect("read the banner line");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
            .to_string();
        Self { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(&self.addr).expect("connect to the daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One-pass Klagenfurt: the fast fixture every request below builds on.
fn flat_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::klagenfurt();
    spec.campaign.passes = 1;
    spec
}

/// A two-variant cadence sweep over the flat spec (base + 2 campaigns).
fn tiny_sweep_request() -> ExecRequest {
    let sweep = SweepSpec::from_json(
        r#"{"name": "serve-tiny", "base": "base.json",
            "axes": [{"kind": "override", "path": "$.campaign.sample_interval_s",
                       "values": [2.0, 4.0]}]}"#,
    )
    .expect("sweep spec parses");
    let base = serde_json::from_str(&flat_spec().to_json()).expect("base parses");
    ExecRequest::sweep(sweep, base)
}

/// The acceptance gate: the same sweep from four concurrent clients, each
/// payload byte-identical to the offline in-process execution.
#[test]
fn four_concurrent_clients_match_the_offline_bytes() {
    let request = tiny_sweep_request();
    let offline = execute(&request).expect("offline execution").to_json();
    let daemon = Daemon::spawn();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = daemon.addr.clone();
            let json = request.to_json();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                let response = client.request(&json).expect("exchange completes");
                // Base + both variants stream before the terminal report.
                assert_eq!(response.variants.len(), 3);
                response.report_text().to_string()
            })
        })
        .collect();
    for worker in workers {
        let payload = worker.join().expect("client thread");
        assert_eq!(payload, offline, "wire payload diverged from the offline bytes");
    }
}

/// Cache-hit identity: the second request on the same connection is served
/// from the warm compiled-scenario cache and must not change a byte.
#[test]
fn repeated_requests_reuse_the_cache_without_changing_bytes() {
    let request = ExecRequest::run(flat_spec());
    let offline = execute(&request).expect("offline execution").to_json();
    let daemon = Daemon::spawn();
    let mut client = daemon.client();

    let cold = client.request(&request.to_json()).expect("cold request");
    let warm = client.request(&request.to_json()).expect("warm request");
    assert!(cold.variants.is_empty(), "run requests stream no variants");
    assert_eq!(cold.report_text(), offline);
    assert_eq!(warm.report_text(), offline);
}

/// The validate action answers over the wire with the facade's bytes.
#[test]
fn validate_action_answers_over_the_wire() {
    let request = ExecRequest::validate_spec(flat_spec());
    let offline = execute(&request).expect("offline validation").to_json();
    let daemon = Daemon::spawn();
    let mut client = daemon.client();

    let response = client.request(&request.to_json()).expect("exchange completes");
    let text = response.report_text();
    assert_eq!(text, offline);
    assert!(text.contains("\"valid\": true"), "unexpected validate payload: {text}");
    assert!(text.contains("\"name\": \"klagenfurt\""), "unexpected validate payload: {text}");
}

/// Error frames carry the machine-readable `{code, path, message}` triple,
/// and a failed request leaves the connection usable for the next one.
#[test]
fn error_frames_carry_codes_and_keep_the_connection_alive() {
    let daemon = Daemon::spawn();
    let mut client = daemon.client();

    // Unparseable payload: an invalid_json error anchored at the root.
    let garbage = client.request("this is not json").expect("exchange completes");
    let err = garbage.outcome.expect_err("garbage must be rejected");
    assert_eq!(err.code, "invalid_json");
    assert_eq!(err.path, "$");

    // A field combination no runner honors: conflict at the field.
    let mut conflicted = ExecRequest::run(flat_spec());
    conflicted.checkpoint = Some("nowhere".into());
    let rejected = client.request(&conflicted.to_json()).expect("exchange completes");
    let err = rejected.outcome.expect_err("the conflict must be rejected");
    assert_eq!(err.code, "conflict");
    assert_eq!(err.path, "$.checkpoint");

    // The same connection still serves a well-formed request.
    let request = ExecRequest::validate_spec(flat_spec());
    let offline = execute(&request).expect("offline validation").to_json();
    let response = client.request(&request.to_json()).expect("exchange completes");
    assert_eq!(response.report_text(), offline);
}
