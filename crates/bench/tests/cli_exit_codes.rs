//! The `sixg-cli` exit-code contract, tested against the real binary.
//!
//! `0` success; `1` reachable-but-invalid input (spec/sweep validation
//! failures); `2` usage errors (unknown subcommand, missing operand,
//! unreadable file, bad flag value) with the usage text on stderr. The
//! distinction lets CI and scripts tell a broken invocation from a broken
//! spec.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CLI: &str = env!("CARGO_BIN_EXE_sixg-cli");

fn run(args: &[&str]) -> Output {
    Command::new(CLI).args(args).output().expect("sixg-cli spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("sixg-cli must exit, not be signalled")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn with_content(name: &str, content: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("sixg-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, content).expect("write temp spec");
        Self(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_subcommand_is_a_usage_error() {
    let out = run(&[]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("missing subcommand"), "{err}");
    assert!(err.contains("USAGE"), "usage text must reach stderr: {err}");
}

#[test]
fn unknown_subcommand_exits_two_with_usage_on_stderr() {
    let out = run(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_operand_exits_two() {
    for sub in ["run", "sweep", "validate"] {
        let out = run(&[sub]);
        assert_eq!(code(&out), 2, "{sub} without operand");
        assert!(stderr(&out).contains("USAGE"), "{sub}: usage text expected");
    }
}

#[test]
fn missing_file_exits_two_with_usage() {
    for sub in ["run", "sweep"] {
        let out = run(&[sub, "/nonexistent/never-there.json"]);
        assert_eq!(code(&out), 2, "{sub} on a missing file");
        let err = stderr(&out);
        assert!(err.contains("cannot read"), "{sub}: {err}");
        assert!(err.contains("USAGE"), "{sub}: {err}");
    }
}

#[test]
fn bad_flag_value_exits_two() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["run", spec.to_str().unwrap(), "--passes", "many"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("invalid value"), "{}", stderr(&out));
    // A typo'd --backend is the same class of mistake: a bad flag, not an
    // invalid spec.
    let out = run(&["run", spec.to_str().unwrap(), "--backend", "evnt"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("evnt"), "{}", stderr(&out));
}

/// An unreadable entry in a validate batch must not mask the files after
/// it: the rest of the batch is still validated, and the final exit code
/// is 2 (usage) because of the unreadable path.
#[test]
fn validate_batch_continues_past_unreadable_files() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["validate", "/nonexistent/never-there.json", spec.to_str().unwrap()]);
    assert_eq!(code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("ok"),
        "the readable spec after the missing one must still be validated: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("unreadable"), "{}", stderr(&out));
}

#[test]
fn invalid_spec_exits_one_not_two() {
    // Parseable JSON, but fails validation (no hops / grid 0×0).
    let bad = TempFile::with_content(
        "invalid.json",
        r#"{"name": "bad", "seed": 1,
            "grid": {"origin_lat": 0.0, "origin_lon": 0.0, "cols": 0, "rows": 0, "cell_km": 1.0},
            "density": {"core_col": 0.0, "core_row": 0.0, "peak": 100.0, "decay_cells": 1.0},
            "targets": {"kind": "projected", "floor_ms": 50.0, "gradient_ms": 1.0,
                        "hotspot_ms": 1.0, "hotspot": "A1"},
            "hops": [], "links": [], "as_relations": [],
            "ue": {"gateway": "gw"},
            "measurement": {"anchor": "gw", "reference_cell": "A1"}}"#,
    );
    for sub in ["run", "validate"] {
        let out = run(&[sub, bad.path()]);
        assert_eq!(code(&out), 1, "{sub} on an invalid spec");
        assert!(!stderr(&out).contains("USAGE"), "{sub}: validation failure is not a usage error");
    }
}

#[test]
fn unparseable_json_exits_one() {
    let bad = TempFile::with_content("unparseable.json", "{\"name\": ");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("invalid JSON"), "{}", stderr(&out));
}

#[test]
fn invalid_sweep_exits_one() {
    // Resolvable base, but the override path does not resolve in it.
    let sweep = TempFile::with_content(
        "sweep-bad-path.json",
        &format!(
            r#"{{"name": "bad-sweep", "base": "{}",
                "axes": [{{"kind": "override", "path": "$.campaign.cadence_s",
                           "values": [1.0]}}]}}"#,
            specs_dir().join("klagenfurt.json").display()
        ),
    );
    let out = run(&["sweep", sweep.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.axes[0].path"), "{err}");
    assert!(err.contains("cadence_s"), "{err}");
}

#[test]
fn valid_spec_validates_with_exit_zero() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["validate", spec.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));
}

/// The committed transit-flap spec text, with one substring swapped — the
/// doctoring surface of the malformed-faults tests below.
fn doctored_flap(name: &str, from: &str, to: &str) -> TempFile {
    let text = std::fs::read_to_string(specs_dir().join("klagenfurt_flap.json"))
        .expect("committed flap spec");
    assert!(text.contains(from), "flap spec no longer contains {from:?}");
    TempFile::with_content(name, &text.replace(from, to))
}

#[test]
fn fault_on_unknown_link_exits_one_with_path() {
    // Anchored on the fault's own `link` array — a bare hop-name swap
    // would rename the hop declaration too and stay valid.
    let bad = doctored_flap(
        "fault-unknown-link.json",
        "\"link\": [\n        \"cdn77-core-vie\"",
        "\"link\": [\n        \"no-such-hop\"",
    );
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults[0].link"), "{err}");
    assert!(err.contains("no-such-hop"), "{err}");
}

#[test]
fn fault_with_negative_failure_time_exits_one_with_path() {
    let bad = doctored_flap("fault-negative-at.json", "\"at_s\": 900.0", "\"at_s\": -1.0");
    for sub in ["run", "validate"] {
        let out = run(&[sub, bad.path()]);
        assert_eq!(code(&out), 1, "{sub} on a negative failure time");
        let err = stderr(&out);
        assert!(err.contains("$.faults[0].at_s"), "{sub}: {err}");
        assert!(err.contains("finite and non-negative"), "{sub}: {err}");
    }
}

#[test]
fn fault_with_nan_failure_time_exits_one_with_path() {
    // `nan` is not valid JSON, so a NaN-bearing spec dies in the parser
    // with exit 1 — same code, different message — while a spec-borne
    // `null` at_s is a decode error pointing at the faults array.
    let bad = doctored_flap("fault-nan-at.json", "\"at_s\": 900.0", "\"at_s\": nan");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("invalid JSON"), "{}", stderr(&out));

    let bad = doctored_flap("fault-null-at.json", "\"at_s\": 900.0", "\"at_s\": null");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(!stderr(&out).contains("USAGE"), "{}", stderr(&out));
}

#[test]
fn fault_recovering_before_failure_exits_one_with_path() {
    let bad = doctored_flap(
        "fault-early-recovery.json",
        "\"recover_at_s\": 2500.0",
        "\"recover_at_s\": 200.0",
    );
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults[0].recover_at_s"), "{err}");
    assert!(err.contains("after the failure"), "{err}");
}

#[test]
fn faults_on_the_analytic_backend_exit_one_with_path() {
    let bad =
        doctored_flap("fault-analytic.json", "\"backend\": \"event\"", "\"backend\": \"analytic\"");
    let out = run(&["run", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults"), "{err}");
    assert!(err.contains("event"), "{err}");
}

const REPRO_FAULTS: &str = env!("CARGO_BIN_EXE_repro_faults");

#[test]
fn repro_faults_gate_failure_exits_one() {
    // An eternal outage from t = 0 leaves no untouched cell to certify
    // recovery against — the recovery gate must fail, not pass vacuously.
    let eternal = doctored_flap(
        "fault-eternal.json",
        "\"at_s\": 900.0,\n      \"recover_at_s\": 2500.0",
        "\"at_s\": 0.0,\n      \"recover_at_s\": null",
    );
    let out = Command::new(REPRO_FAULTS)
        .args(["--flap-spec", eternal.path(), "--passes", "1"])
        .output()
        .expect("repro_faults spawns");
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("no untouched cell"), "{err}");
    assert!(err.contains("convergence gate violation"), "{err}");
}

#[test]
fn repro_faults_rejects_invalid_flap_spec_as_usage_error() {
    let bad = doctored_flap("fault-bad-for-repro.json", "\"at_s\": 900.0", "\"at_s\": -1.0");
    let out = Command::new(REPRO_FAULTS)
        .args(["--flap-spec", bad.path()])
        .output()
        .expect("repro_faults spawns");
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("$.faults[0].at_s"), "{}", stderr(&out));
}
