//! The `sixg-cli` exit-code contract, tested against the real binary.
//!
//! `0` success; `1` reachable-but-invalid input (spec/sweep validation
//! failures); `2` usage errors (unknown subcommand, missing operand,
//! unreadable file, bad flag value) with the usage text on stderr. The
//! distinction lets CI and scripts tell a broken invocation from a broken
//! spec.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CLI: &str = env!("CARGO_BIN_EXE_sixg-cli");

fn run(args: &[&str]) -> Output {
    Command::new(CLI).args(args).output().expect("sixg-cli spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("sixg-cli must exit, not be signalled")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// A scratch file that cleans up after itself.
struct TempFile(PathBuf);

impl TempFile {
    fn with_content(name: &str, content: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("sixg-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, content).expect("write temp spec");
        Self(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_subcommand_is_a_usage_error() {
    let out = run(&[]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("missing subcommand"), "{err}");
    assert!(err.contains("USAGE"), "usage text must reach stderr: {err}");
}

#[test]
fn unknown_subcommand_exits_two_with_usage_on_stderr() {
    let out = run(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_operand_exits_two() {
    for sub in ["run", "sweep", "validate"] {
        let out = run(&[sub]);
        assert_eq!(code(&out), 2, "{sub} without operand");
        assert!(stderr(&out).contains("USAGE"), "{sub}: usage text expected");
    }
}

#[test]
fn missing_file_exits_two_with_usage() {
    for sub in ["run", "sweep"] {
        let out = run(&[sub, "/nonexistent/never-there.json"]);
        assert_eq!(code(&out), 2, "{sub} on a missing file");
        let err = stderr(&out);
        assert!(err.contains("cannot read"), "{sub}: {err}");
        assert!(err.contains("USAGE"), "{sub}: {err}");
    }
}

#[test]
fn bad_flag_value_exits_two() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["run", spec.to_str().unwrap(), "--passes", "many"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("invalid value"), "{}", stderr(&out));
    // A typo'd --backend is the same class of mistake: a bad flag, not an
    // invalid spec.
    let out = run(&["run", spec.to_str().unwrap(), "--backend", "evnt"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("evnt"), "{}", stderr(&out));
}

/// An unreadable entry in a validate batch must not mask the files after
/// it: the rest of the batch is still validated, and the final exit code
/// is 2 (usage) because of the unreadable path.
#[test]
fn validate_batch_continues_past_unreadable_files() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["validate", "/nonexistent/never-there.json", spec.to_str().unwrap()]);
    assert_eq!(code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("ok"),
        "the readable spec after the missing one must still be validated: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("unreadable"), "{}", stderr(&out));
}

#[test]
fn invalid_spec_exits_one_not_two() {
    // Parseable JSON, but fails validation (no hops / grid 0×0).
    let bad = TempFile::with_content(
        "invalid.json",
        r#"{"name": "bad", "seed": 1,
            "grid": {"origin_lat": 0.0, "origin_lon": 0.0, "cols": 0, "rows": 0, "cell_km": 1.0},
            "density": {"core_col": 0.0, "core_row": 0.0, "peak": 100.0, "decay_cells": 1.0},
            "targets": {"kind": "projected", "floor_ms": 50.0, "gradient_ms": 1.0,
                        "hotspot_ms": 1.0, "hotspot": "A1"},
            "hops": [], "links": [], "as_relations": [],
            "ue": {"gateway": "gw"},
            "measurement": {"anchor": "gw", "reference_cell": "A1"}}"#,
    );
    for sub in ["run", "validate"] {
        let out = run(&[sub, bad.path()]);
        assert_eq!(code(&out), 1, "{sub} on an invalid spec");
        assert!(!stderr(&out).contains("USAGE"), "{sub}: validation failure is not a usage error");
    }
}

#[test]
fn unparseable_json_exits_one() {
    let bad = TempFile::with_content("unparseable.json", "{\"name\": ");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("invalid JSON"), "{}", stderr(&out));
}

#[test]
fn invalid_sweep_exits_one() {
    // Resolvable base, but the override path does not resolve in it.
    let sweep = TempFile::with_content(
        "sweep-bad-path.json",
        &format!(
            r#"{{"name": "bad-sweep", "base": "{}",
                "axes": [{{"kind": "override", "path": "$.campaign.cadence_s",
                           "values": [1.0]}}]}}"#,
            specs_dir().join("klagenfurt.json").display()
        ),
    );
    let out = run(&["sweep", sweep.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.axes[0].path"), "{err}");
    assert!(err.contains("cadence_s"), "{err}");
}

#[test]
fn valid_spec_validates_with_exit_zero() {
    let spec = specs_dir().join("klagenfurt.json");
    let out = run(&["validate", spec.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));
}

/// The committed transit-flap spec text, with one substring swapped — the
/// doctoring surface of the malformed-faults tests below.
fn doctored_flap(name: &str, from: &str, to: &str) -> TempFile {
    let text = std::fs::read_to_string(specs_dir().join("klagenfurt_flap.json"))
        .expect("committed flap spec");
    assert!(text.contains(from), "flap spec no longer contains {from:?}");
    TempFile::with_content(name, &text.replace(from, to))
}

#[test]
fn fault_on_unknown_link_exits_one_with_path() {
    // Anchored on the fault's own `link` array — a bare hop-name swap
    // would rename the hop declaration too and stay valid.
    let bad = doctored_flap(
        "fault-unknown-link.json",
        "\"link\": [\n        \"cdn77-core-vie\"",
        "\"link\": [\n        \"no-such-hop\"",
    );
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults[0].link"), "{err}");
    assert!(err.contains("no-such-hop"), "{err}");
}

#[test]
fn fault_with_negative_failure_time_exits_one_with_path() {
    let bad = doctored_flap("fault-negative-at.json", "\"at_s\": 900.0", "\"at_s\": -1.0");
    for sub in ["run", "validate"] {
        let out = run(&[sub, bad.path()]);
        assert_eq!(code(&out), 1, "{sub} on a negative failure time");
        let err = stderr(&out);
        assert!(err.contains("$.faults[0].at_s"), "{sub}: {err}");
        assert!(err.contains("finite and non-negative"), "{sub}: {err}");
    }
}

#[test]
fn fault_with_nan_failure_time_exits_one_with_path() {
    // `nan` is not valid JSON, so a NaN-bearing spec dies in the parser
    // with exit 1 — same code, different message — while a spec-borne
    // `null` at_s is a decode error pointing at the faults array.
    let bad = doctored_flap("fault-nan-at.json", "\"at_s\": 900.0", "\"at_s\": nan");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("invalid JSON"), "{}", stderr(&out));

    let bad = doctored_flap("fault-null-at.json", "\"at_s\": 900.0", "\"at_s\": null");
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    assert!(!stderr(&out).contains("USAGE"), "{}", stderr(&out));
}

#[test]
fn fault_recovering_before_failure_exits_one_with_path() {
    let bad = doctored_flap(
        "fault-early-recovery.json",
        "\"recover_at_s\": 2500.0",
        "\"recover_at_s\": 200.0",
    );
    let out = run(&["validate", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults[0].recover_at_s"), "{err}");
    assert!(err.contains("after the failure"), "{err}");
}

#[test]
fn faults_on_the_analytic_backend_exit_one_with_path() {
    let bad =
        doctored_flap("fault-analytic.json", "\"backend\": \"event\"", "\"backend\": \"analytic\"");
    let out = run(&["run", bad.path()]);
    assert_eq!(code(&out), 1);
    let err = stderr(&out);
    assert!(err.contains("$.faults"), "{err}");
    assert!(err.contains("event"), "{err}");
}

const REPRO_FAULTS: &str = env!("CARGO_BIN_EXE_repro_faults");

#[test]
fn repro_faults_gate_failure_exits_one() {
    // An eternal outage from t = 0 leaves no untouched cell to certify
    // recovery against — the recovery gate must fail, not pass vacuously.
    let eternal = doctored_flap(
        "fault-eternal.json",
        "\"at_s\": 900.0,\n      \"recover_at_s\": 2500.0",
        "\"at_s\": 0.0,\n      \"recover_at_s\": null",
    );
    let out = Command::new(REPRO_FAULTS)
        .args(["--flap-spec", eternal.path(), "--passes", "1"])
        .output()
        .expect("repro_faults spawns");
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("no untouched cell"), "{err}");
    assert!(err.contains("convergence gate violation"), "{err}");
}

#[test]
fn repro_faults_rejects_invalid_flap_spec_as_usage_error() {
    let bad = doctored_flap("fault-bad-for-repro.json", "\"at_s\": 900.0", "\"at_s\": -1.0");
    let out = Command::new(REPRO_FAULTS)
        .args(["--flap-spec", bad.path()])
        .output()
        .expect("repro_faults spawns");
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("$.faults[0].at_s"), "{}", stderr(&out));
}

// ---------------------------------------------------------------------------
// Checkpointed sweeps: the kill/resume/merge contract through the binary.
// ---------------------------------------------------------------------------

/// A scratch directory holding a tiny sweep (klagenfurt base trimmed to one
/// pass, 2 cadences × 1 seed = 2 variants) plus room for checkpoint
/// stores, cleaned up on drop.
struct SweepDir(PathBuf);

impl SweepDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sixg-cli-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create sweep dir");
        let mut base = sixg_measure::spec::ScenarioSpec::klagenfurt();
        base.campaign.passes = 1;
        std::fs::write(dir.join("base.json"), base.to_json()).expect("write base");
        std::fs::write(
            dir.join("sweep.json"),
            r#"{"name": "cli-torture", "base": "base.json",
                "axes": [{"kind": "override", "path": "$.campaign.sample_interval_s",
                           "values": [2.0, 4.0]},
                          {"kind": "seeds", "start": 7, "count": 1}]}"#,
        )
        .expect("write sweep");
        Self(dir)
    }

    fn sweep(&self) -> String {
        self.0.join("sweep.json").display().to_string()
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).display().to_string()
    }
}

impl Drop for SweepDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `--kill-after` dies mid-run without a clean exit status (like a real
/// kill), and rerunning with the same store resumes into a report bitwise
/// identical to a never-killed in-memory run.
#[test]
fn sweep_checkpoint_resumes_bitwise_after_kill() {
    let d = SweepDir::new("kill-resume");
    let out = run(&["sweep", &d.sweep(), "--json", &d.path("clean.json")]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    let out = run(&[
        "sweep",
        &d.sweep(),
        "--checkpoint",
        &d.path("store"),
        "--interval",
        "7",
        "--kill-after",
        "40",
    ]);
    // A killed run aborts: no exit code a script could mistake for success
    // (`code()` would panic here — the process dies by signal).
    assert!(!out.status.success(), "--kill-after must not exit cleanly");
    let err = stderr(&out);
    assert!(err.contains("killed at checkpoint cursor 40/"), "{err}");

    let out = run(&[
        "sweep",
        &d.sweep(),
        "--checkpoint",
        &d.path("store"),
        "--interval",
        "7",
        "--json",
        &d.path("resumed.json"),
    ]);
    assert_eq!(code(&out), 0, "resume must succeed: {}", stderr(&out));
    let clean = std::fs::read(d.path("clean.json")).expect("clean report");
    let resumed = std::fs::read(d.path("resumed.json")).expect("resumed report");
    assert_eq!(clean, resumed, "resumed report must be bitwise identical");
}

/// Two disjoint shard stores fold back into the in-memory report, byte
/// for byte, through `sixg-cli merge`.
#[test]
fn sweep_shard_merge_round_trips_bitwise() {
    let d = SweepDir::new("shard-merge");
    let out = run(&["sweep", &d.sweep(), "--json", &d.path("clean.json")]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    for i in 0..2 {
        let shard = format!("{i}/2");
        let store = d.path(&format!("s{i}"));
        let out = run(&["sweep", &d.sweep(), "--checkpoint", &store, "--shard", &shard]);
        assert_eq!(code(&out), 0, "shard {i}: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains(&format!("shard {i}/2 complete")), "{stdout}");
    }

    let out = run(&[
        "merge",
        &d.sweep(),
        "--store",
        &d.path("s0"),
        "--store",
        &d.path("s1"),
        "--json",
        &d.path("merged.json"),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let clean = std::fs::read(d.path("clean.json")).expect("clean report");
    let merged = std::fs::read(d.path("merged.json")).expect("merged report");
    assert_eq!(clean, merged, "merged report must be bitwise identical");
}

/// A truncated blob fails resume AND merge with exit 1 and the offending
/// file's path on stderr — corrupt stores are rejected, never repaired
/// silently or adopted partially.
#[test]
fn corrupt_store_exits_one_with_the_blob_path() {
    let d = SweepDir::new("corrupt");
    let out = run(&["sweep", &d.sweep(), "--checkpoint", &d.path("store")]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    let blob = d.0.join("store").join("run_00001.blob");
    let bytes = std::fs::read(&blob).expect("spilled blob");
    std::fs::write(&blob, &bytes[..bytes.len() / 2]).expect("truncate blob");

    // Resume path: the completed store re-reads every blob.
    let out = run(&["sweep", &d.sweep(), "--checkpoint", &d.path("store")]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("run_00001.blob"), "error must name the file: {err}");
    assert!(!err.contains("USAGE"), "a corrupt store is not a usage error: {err}");

    // Merge path: same rejection, same anchoring.
    let out = run(&["merge", &d.sweep(), "--store", &d.path("store")]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(stderr(&out).contains("run_00001.blob"), "{}", stderr(&out));
}

/// A store written for a different sweep is rejected at the manifest with
/// exit 1 (spec-hash binding).
#[test]
fn foreign_store_exits_one_with_hash_mismatch() {
    let d = SweepDir::new("foreign");
    let out = run(&["sweep", &d.sweep(), "--checkpoint", &d.path("store")]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    // Same axes, different cadence values ⇒ different content hash.
    std::fs::write(
        d.0.join("other.json"),
        r#"{"name": "cli-torture", "base": "base.json",
            "axes": [{"kind": "override", "path": "$.campaign.sample_interval_s",
                       "values": [1.0, 4.0]},
                      {"kind": "seeds", "start": 7, "count": 1}]}"#,
    )
    .expect("write other sweep");
    let out = run(&["sweep", &d.path("other.json"), "--checkpoint", &d.path("store")]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("spec hash mismatch"), "{err}");
    assert!(err.contains("manifest.json"), "{err}");
}

#[test]
fn checkpoint_flag_misuse_exits_two() {
    let d = SweepDir::new("usage");
    for args in [
        vec!["sweep", "SWEEP", "--shard", "0/2"],
        vec!["sweep", "SWEEP", "--kill-after", "10"],
        vec!["sweep", "SWEEP", "--interval", "64"],
        vec!["sweep", "SWEEP", "--checkpoint", "STORE", "--shard", "2/2"],
        vec!["sweep", "SWEEP", "--checkpoint", "STORE", "--shard", "zero/two"],
        vec!["sweep", "SWEEP", "--checkpoint", "STORE", "--interval", "0"],
        vec!["merge", "SWEEP"],
        vec!["merge", "--store", "STORE"],
    ] {
        let store = d.path("store-usage");
        let sweep_path = d.sweep();
        let resolved: Vec<&str> = args
            .iter()
            .map(|a| match *a {
                "SWEEP" => sweep_path.as_str(),
                "STORE" => store.as_str(),
                other => other,
            })
            .collect();
        let shown = args.join(" ");
        let out = run(&resolved);
        assert_eq!(code(&out), 2, "`{shown}` must be a usage error: {}", stderr(&out));
        assert!(stderr(&out).contains("USAGE"), "`{shown}`: {}", stderr(&out));
        // Usage errors must fire before any work: no store may appear.
        assert!(
            !Path::new(&store).exists(),
            "`{shown}` must not create a store (sweep file: {sweep_path})"
        );
    }
}

/// The in-memory cap error is a *validation* failure (exit 1) that names
/// the `--checkpoint` escape hatch.
#[test]
fn over_cap_sweep_exits_one_naming_checkpoint() {
    let d = SweepDir::new("cap");
    std::fs::write(
        d.0.join("mega.json"),
        r#"{"name": "over-cap", "base": "base.json",
            "axes": [{"kind": "seeds", "start": 0, "count": 5000}]}"#,
    )
    .expect("write over-cap sweep");
    let out = run(&["sweep", &d.path("mega.json")]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("--checkpoint"), "the cap error must name the escape hatch: {err}");
    assert!(!err.contains("USAGE"), "over-cap is not a usage error: {err}");
}
