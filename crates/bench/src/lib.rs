//! # sixg-bench — the reproduction harness
//!
//! One binary per paper artefact (`repro_fig1` … `repro_all`) regenerates
//! the corresponding table or figure from the simulator and prints a
//! paper-vs-measured comparison; the criterion benches (`benches/`) cover
//! the substrate's performance (event throughput, routing, campaign
//! scaling, rule stores, placement, transport).
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p sixg-bench --release --bin repro_all
//! cargo bench -p sixg-bench
//! ```

use sixg_measure::klagenfurt::KlagenfurtScenario;
use std::sync::OnceLock;

pub mod serve;
pub mod serve_client;

/// The scenario seed used by every reproduction binary (so their outputs
/// agree with each other and with the golden tests).
pub const REPRO_SEED: u64 = 0x6B6C_7531;

/// A lazily built, shared Klagenfurt scenario.
pub fn shared_scenario() -> &'static KlagenfurtScenario {
    static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
    S.get_or_init(|| KlagenfurtScenario::paper(REPRO_SEED))
}

/// Prints a section header in the binaries' common style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a `paper vs measured` comparison row.
pub fn compare(label: &str, paper: impl std::fmt::Display, measured: impl std::fmt::Display) {
    println!("{label:<52} paper: {paper:>12}   measured: {measured:>12}");
}

/// Formats milliseconds with one decimal.
pub fn ms(v: f64) -> String {
    format!("{v:.1} ms")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1} %")
}

/// Formats kilometres with no decimals.
pub fn km(v: f64) -> String {
    format!("{v:.0} km")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_scenario_is_cached() {
        let a = shared_scenario() as *const _;
        let b = shared_scenario() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(61.04), "61.0 ms");
        assert_eq!(pct(270.55), "270.6 %");
        assert_eq!(km(2543.7), "2544 km");
    }
}
