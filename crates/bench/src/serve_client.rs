//! Blocking client for the `sixg-serve` wire protocol.
//!
//! The harness side of the daemon: connect, send one
//! [`sixg_measure::ExecRequest`] JSON
//! document per [`ServeClient::request`], collect the streamed `VARIANT`
//! frames and the terminal `REPORT`/`ERROR` frame into a [`WireResponse`].
//! Used by `repro_serve`, the spawn-the-binary integration tests, and the
//! README walkthrough. [`ServeClient`] is deliberately dumb — timeouts and
//! `io::Error` on anything unexpected, no retries; [`RetryingClient`]
//! wraps it with the reconnect-and-replay policy the dispatch coordinator
//! uses, so harnesses can tell a worker death (transient, retriable —
//! execution is deterministic, replays are idempotent) from a malformed
//! frame (fatal, never retried).

use crate::serve::{is_transient_io, read_frame, write_frame, FrameKind};
use serde_json::Value;
use std::io;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

/// Default socket timeout: campaigns are seconds, mega-sweeps minutes.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(600);

/// A decoded `ERROR` frame: the facade's [`sixg_measure::SpecError`] as it
/// crossed the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable code (`"conflict"`, `"schema"`, …).
    pub code: String,
    /// JSON path of the offending element.
    pub path: String,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.code, self.path, self.message)
    }
}

/// One complete exchange: the streamed variant payloads (empty for run and
/// validate requests) plus the terminal outcome — raw `REPORT` bytes on
/// success, the decoded `ERROR` otherwise.
#[derive(Debug)]
pub struct WireResponse {
    /// `VARIANT` frame payloads, in arrival (= run) order.
    pub variants: Vec<Vec<u8>>,
    /// Terminal frame: `REPORT` payload bytes or the decoded error.
    pub outcome: Result<Vec<u8>, WireError>,
}

impl WireResponse {
    /// The `REPORT` payload as UTF-8, panicking on an error outcome — the
    /// test-harness convenience accessor.
    pub fn report_text(&self) -> &str {
        match &self.outcome {
            Ok(bytes) => std::str::from_utf8(bytes).expect("report payload is UTF-8"),
            Err(e) => panic!("request failed over the wire: {e}"),
        }
    }
}

/// A blocking connection to a `sixg-serve` daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects with the default timeout.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connects with an explicit read/write timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends one request document and reads frames until the terminal
    /// `REPORT` or `ERROR`. A connection drop mid-response is an error —
    /// a well-behaved server always terminates the exchange.
    pub fn request(&mut self, request_json: &str) -> io::Result<WireResponse> {
        write_frame(&mut self.stream, FrameKind::Request, request_json.as_bytes())?;
        let mut variants = Vec::new();
        loop {
            let Some((kind, payload)) = read_frame(&mut self.stream)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            };
            match kind {
                FrameKind::Variant => variants.push(payload),
                FrameKind::Report => return Ok(WireResponse { variants, outcome: Ok(payload) }),
                FrameKind::Error => {
                    return Ok(WireResponse { variants, outcome: Err(decode_error(&payload)?) })
                }
                FrameKind::Request | FrameKind::Store => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected {kind:?} frame from the server"),
                    ))
                }
            }
        }
    }
}

/// Reconnect-and-replay policy for [`RetryingClient`]: capped exponential
/// backoff, mirroring the dispatch coordinator's per-worker schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included) before giving up.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `failures` (1-based): `initial · 2^(f-1)`
    /// capped at `max_backoff`.
    pub fn backoff(&self, failures: u32) -> Duration {
        let shift = failures.saturating_sub(1).min(16);
        let grown = self.initial_backoff.saturating_mul(1u32 << shift);
        grown.min(self.max_backoff)
    }
}

/// A [`ServeClient`] that survives worker restarts: each request lazily
/// (re)connects and, on a *transient* failure — connection refused, reset,
/// or dropped mid-response — reconnects and replays the request after a
/// backoff. Replaying is safe because execution is deterministic and
/// side-effect-free from the client's view: the same request bytes always
/// produce the same report bytes. Protocol violations (`InvalidData`: bad
/// magic, unexpected frame kind, malformed payload) fail immediately — a
/// worker that speaks garbage will keep speaking garbage.
pub struct RetryingClient {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    conn: Option<ServeClient>,
    connected_once: bool,
    reconnects: u64,
}

impl RetryingClient {
    /// Creates a client for `addr` with the default timeout and policy.
    /// No connection is made until the first request.
    pub fn new(addr: &str) -> Self {
        Self::with_policy(addr, DEFAULT_TIMEOUT, RetryPolicy::default())
    }

    /// Creates a client with an explicit socket timeout and retry policy.
    pub fn with_policy(addr: &str, timeout: Duration, policy: RetryPolicy) -> Self {
        Self {
            addr: addr.to_string(),
            timeout,
            policy,
            conn: None,
            connected_once: false,
            reconnects: 0,
        }
    }

    /// Number of times a request had to reconnect (dead socket or
    /// mid-response drop). Zero over a healthy exchange.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one request document, reconnecting and replaying on transient
    /// failures up to the policy's attempt budget. Returns the last error
    /// once the budget is exhausted, and fails fast (no retry) on
    /// `InvalidData` protocol violations.
    pub fn request(&mut self, request_json: &str) -> io::Result<WireResponse> {
        let mut failures = 0u32;
        loop {
            let attempt = self.try_once(request_json);
            match attempt {
                Ok(response) => return Ok(response),
                Err(err) => {
                    // A poisoned connection never carries the next attempt.
                    self.conn = None;
                    failures += 1;
                    if !is_transient_io(&err) || failures >= self.policy.max_attempts {
                        return Err(err);
                    }
                    thread::sleep(self.policy.backoff(failures));
                }
            }
        }
    }

    fn try_once(&mut self, request_json: &str) -> io::Result<WireResponse> {
        if self.conn.is_none() {
            let fresh = ServeClient::connect_with_timeout(&self.addr, self.timeout)?;
            if self.connected_once {
                self.reconnects += 1;
            }
            self.conn = Some(fresh);
            self.connected_once = true;
        }
        self.conn.as_mut().expect("connection just established").request(request_json)
    }
}

/// Decodes an `ERROR` payload; a malformed one is itself an I/O error.
fn decode_error(payload: &[u8]) -> io::Result<WireError> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let text = std::str::from_utf8(payload).map_err(|_| bad("ERROR payload is not UTF-8"))?;
    let v = serde_json::from_str(text).map_err(|_| bad("ERROR payload is not JSON"))?;
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(&format!("ERROR payload lacks the {name:?} field")))
    };
    Ok(WireError { code: field("code")?, path: field("path")?, message: field("message")? })
}
