//! Blocking client for the `sixg-serve` wire protocol.
//!
//! The harness side of the daemon: connect, send one
//! [`sixg_measure::ExecRequest`] JSON
//! document per [`ServeClient::request`], collect the streamed `VARIANT`
//! frames and the terminal `REPORT`/`ERROR` frame into a [`WireResponse`].
//! Used by `repro_serve`, the spawn-the-binary integration tests, and the
//! README walkthrough; it is deliberately dumb — timeouts and `io::Error`
//! on anything unexpected, no retries.

use crate::serve::{read_frame, write_frame, FrameKind};
use serde_json::Value;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Default socket timeout: campaigns are seconds, mega-sweeps minutes.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(600);

/// A decoded `ERROR` frame: the facade's [`sixg_measure::SpecError`] as it
/// crossed the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable code (`"conflict"`, `"schema"`, …).
    pub code: String,
    /// JSON path of the offending element.
    pub path: String,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.code, self.path, self.message)
    }
}

/// One complete exchange: the streamed variant payloads (empty for run and
/// validate requests) plus the terminal outcome — raw `REPORT` bytes on
/// success, the decoded `ERROR` otherwise.
#[derive(Debug)]
pub struct WireResponse {
    /// `VARIANT` frame payloads, in arrival (= run) order.
    pub variants: Vec<Vec<u8>>,
    /// Terminal frame: `REPORT` payload bytes or the decoded error.
    pub outcome: Result<Vec<u8>, WireError>,
}

impl WireResponse {
    /// The `REPORT` payload as UTF-8, panicking on an error outcome — the
    /// test-harness convenience accessor.
    pub fn report_text(&self) -> &str {
        match &self.outcome {
            Ok(bytes) => std::str::from_utf8(bytes).expect("report payload is UTF-8"),
            Err(e) => panic!("request failed over the wire: {e}"),
        }
    }
}

/// A blocking connection to a `sixg-serve` daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects with the default timeout.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connects with an explicit read/write timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends one request document and reads frames until the terminal
    /// `REPORT` or `ERROR`. A connection drop mid-response is an error —
    /// a well-behaved server always terminates the exchange.
    pub fn request(&mut self, request_json: &str) -> io::Result<WireResponse> {
        write_frame(&mut self.stream, FrameKind::Request, request_json.as_bytes())?;
        let mut variants = Vec::new();
        loop {
            let Some((kind, payload)) = read_frame(&mut self.stream)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            };
            match kind {
                FrameKind::Variant => variants.push(payload),
                FrameKind::Report => return Ok(WireResponse { variants, outcome: Ok(payload) }),
                FrameKind::Error => {
                    return Ok(WireResponse { variants, outcome: Err(decode_error(&payload)?) })
                }
                FrameKind::Request => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected REQUEST frame from the server",
                    ))
                }
            }
        }
    }
}

/// Decodes an `ERROR` payload; a malformed one is itself an I/O error.
fn decode_error(payload: &[u8]) -> io::Result<WireError> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let text = std::str::from_utf8(payload).map_err(|_| bad("ERROR payload is not UTF-8"))?;
    let v = serde_json::from_str(text).map_err(|_| bad("ERROR payload is not JSON"))?;
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(&format!("ERROR payload lacks the {name:?} field")))
    };
    Ok(WireError { code: field("code")?, path: field("path")?, message: field("message")? })
}
