//! E14 — Section III-A: IoT protocol overhead.
//!
//! "Minimizing delays in IoT protocols like MQTT, AMQP, and CoAP, which
//! contribute an extra 5-8 milliseconds, will be essential for achieving
//! user-perceived latency below 16 milliseconds."

use sixg_bench::{compare, header, ms};
use sixg_core::requirements::USER_PERCEIVED_BOUND_MS;
use sixg_netsim::protocols::iot::{IotProtocol, QosLevel};
use sixg_netsim::rng::SimRng;
use sixg_netsim::stats::Welford;

fn main() {
    header("IoT protocol overhead (excluding network RTT)");
    println!("{:<8} {:>14} {:>14} {:>14}", "proto", "QoS0 (ms)", "QoS1 (ms)", "QoS2 (ms)");
    for p in IotProtocol::ALL {
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>14.1}",
            format!("{p:?}"),
            p.mean_overhead_ms(QosLevel::AtMostOnce),
            p.mean_overhead_ms(QosLevel::AtLeastOnce),
            p.mean_overhead_ms(QosLevel::ExactlyOnce),
        );
    }
    compare("overhead band at standard QoS", "5-8 ms [14]", {
        let (lo, hi) = IotProtocol::ALL.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
            let m = p.mean_overhead_ms(QosLevel::AtLeastOnce);
            (lo.min(m), hi.max(m))
        });
        format!("{lo:.1}-{hi:.1} ms")
    });

    header("End-to-end publish latency vs user-perceived bound (16 ms)");
    let mut rng = SimRng::from_seed(5);
    println!("{:<8} {:>16} {:>16} {:>16}", "proto", "RTT 2 ms", "RTT 8 ms", "RTT 74 ms (5G)");
    for p in IotProtocol::ALL {
        let mean_at = |rtt: f64, rng: &mut SimRng| -> f64 {
            let mut w = Welford::new();
            for _ in 0..20_000 {
                w.push(p.publish_latency_ms(rtt, QosLevel::AtLeastOnce, rng));
            }
            w.mean()
        };
        let a = mean_at(2.0, &mut rng);
        let b = mean_at(8.0, &mut rng);
        let c = mean_at(74.0, &mut rng);
        let flag = |v: f64| {
            if v <= USER_PERCEIVED_BOUND_MS {
                format!("{} ok", ms(v))
            } else {
                format!("{} LATE", ms(v))
            }
        };
        println!("{:<8} {:>16} {:>16} {:>16}", format!("{p:?}"), flag(a), flag(b), flag(c));
    }
    println!(
        "\nOnly sub-10 ms network RTTs leave room for the protocol stack within\n\
         the 16 ms user-perceived budget — the measured 74 ms 5G RTL does not."
    );
}
