//! E22 — control-plane convergence gates for fault-bearing campaigns.
//!
//! Locks down the live control plane ([`sixg_netsim::routing::dynamic`])
//! and the fault-aware campaign runner (`sixg_measure::faults`) with
//! three gates over the committed Klagenfurt transit-flap scenario
//! (`specs/klagenfurt_flap.json`):
//!
//! 1. **Static equivalence** — with no faults, the message-level BGP
//!    speakers must converge to exactly the static Gao–Rexford fixed
//!    point: for every (cell, target) route of each committed spec, the
//!    converged RIB's best path (AS sequence *and* preference class,
//!    stitched down to the router level) equals the cached static route.
//! 2. **Recovery** — after the flap recovers, every cell whose dwell
//!    windows never overlap an outage (plus reconvergence slack) must
//!    agree with an unfaulted run of the same spec within the backend
//!    cross-validation tolerance `6·SE + 0.75 ms` per cell.
//! 3. **Determinism** — the faulted campaign is bitwise identical at
//!    pool sizes 1, 2 and 4.
//!
//! A violation in any gate exits non-zero so CI can gate on it.
//!
//! ```text
//! cargo run --release --bin repro_faults -- [--flap-spec PATH] [--passes N] [--json PATH]
//! ```
//!
//! `--json PATH` writes the machine-readable record (the
//! `BENCH_faults.json` artifact CI uploads). The record carries no wall
//! times or pool sizes — every field is bitwise-deterministic, so CI
//! reruns the binary at a different pool size and `cmp`s the two files.

use sixg_measure::campaign::CampaignConfig;
use sixg_measure::event_backend::crossval_tolerance_ms;
use sixg_measure::exec::run_field;
use sixg_measure::faults::FaultCampaign;
use sixg_measure::klagenfurt::klagenfurt_flap_spec;
use sixg_measure::parallel::with_thread_count;
use sixg_measure::scenario::Scenario;
use sixg_measure::spec::{parse_backend, ExecBackend, ScenarioSpec};
use sixg_netsim::routing::dynamic::ControlPlane;
use sixg_netsim::routing::PathComputer;
use std::time::Instant;

/// Reconvergence slack added after each recovery before a dwell window
/// counts as untouched, seconds. BGP reconvergence takes milliseconds;
/// whole seconds bury any transient.
const RECOVERY_MARGIN_S: f64 = 5.0;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_faults: {flag} needs an unsigned integer, got {v:?}");
            std::process::exit(2);
        })
    })
}

fn string_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Gate 1 for one spec: count the (cell, target) routes where the
/// converged dynamic control plane disagrees with the cached static
/// fixed point. Returns `(routes_checked, mismatches)`.
fn static_equivalence(s: &Scenario) -> (usize, usize) {
    let cp = ControlPlane::converged_from_topology(&s.topo, &s.as_graph);
    let pc = PathComputer::new(&s.topo, &s.as_graph);
    let targets = s.measurement_targets();
    let mut mismatches = 0usize;
    for (&(cell, ti), cached) in &s.routes {
        let ue = s.ue[&cell];
        let target = targets[ti];
        let dynamic = cp
            .best_route(s.topo.node(ue).asn, s.topo.node(target).asn)
            .and_then(|as_path| pc.route_along(ue, target, &as_path));
        if dynamic.as_ref() != Some(cached) {
            if mismatches == 0 {
                eprintln!(
                    "{}: cell {cell} target {ti}: dynamic route {:?} != static {:?}",
                    s.name, dynamic, cached
                );
            }
            mismatches += 1;
        }
    }
    (s.routes.len(), mismatches)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // The flap scenario under test: the committed spec, or an override
    // (CI and the exit-code tests feed doctored variants through this).
    let flap_spec = match string_flag(&args, "--flap-spec") {
        None => klagenfurt_flap_spec().clone(),
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("repro_faults: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("repro_faults: {path}: {e}");
                std::process::exit(2);
            });
            let errors = spec.validate();
            if !errors.is_empty() {
                for e in &errors {
                    eprintln!("repro_faults: {path}: {e}");
                }
                std::process::exit(2);
            }
            spec
        }
    };
    let passes = parse_flag(&args, "--passes").map_or(flap_spec.campaign.passes, |p| p as u32);
    let config = CampaignConfig {
        seed: flap_spec.campaign.seed,
        sample_interval_s: flap_spec.campaign.sample_interval_s,
        passes,
    };

    println!("\n=== E22 — control-plane convergence gates (fault campaigns) ===");
    let mut violations = 0usize;

    // Gate 1 — static equivalence on every committed spec plus the flap
    // spec's own (fault-free) topology.
    let committed =
        [ScenarioSpec::klagenfurt(), ScenarioSpec::skopje(), ScenarioSpec::megacity(), flap_spec];
    let mut routes_checked = 0usize;
    let mut equivalence = Vec::new();
    for spec in &committed {
        let s = Scenario::from_spec(spec).unwrap_or_else(|e| {
            eprintln!("repro_faults: spec {}: {e}", spec.name);
            std::process::exit(2);
        });
        let (routes, mismatches) = static_equivalence(&s);
        println!(
            "gate 1  {:<18} {routes:>4} routes, {mismatches} dynamic/static mismatch(es)",
            s.name
        );
        routes_checked += routes;
        violations += mismatches;
        equivalence.push(serde_json::json!({
            "spec": s.name,
            "routes": routes,
            "mismatches": mismatches,
        }));
    }
    let [.., ref flap_spec] = committed;
    let flap = Scenario::from_spec(flap_spec).expect("validated above");

    // Gate 3 first (its 1-thread run doubles as gate 2's faulted field) —
    // the faulted campaign must be bitwise identical at pool sizes 1/2/4.
    let t0 = Instant::now();
    let backend = parse_backend(&flap_spec.backend).expect("validated backend tag");
    let faulted = with_thread_count(1, || run_field(&flap, config, backend));
    let faulted_s = t0.elapsed().as_secs_f64();
    for threads in [2usize, 4] {
        let again = with_thread_count(threads, || run_field(&flap, config, backend));
        for cell in flap.grid.cells() {
            let (a, b) = (faulted.stats(cell), again.stats(cell));
            if a.count != b.count
                || a.mean_ms.to_bits() != b.mean_ms.to_bits()
                || a.std_ms.to_bits() != b.std_ms.to_bits()
            {
                eprintln!("gate 3: cell {cell} differs between 1 and {threads} threads");
                violations += 1;
            }
        }
    }
    println!("gate 3  bitwise determinism at pool sizes 1/2/4 checked ({faulted_s:>6.2} s/run)");

    // Gate 2 — strip the faults, rerun, and compare the untouched cells.
    let mut clean_spec = flap_spec.clone();
    clean_spec.faults = Vec::new();
    clean_spec.backend = "event".into();
    let clean = Scenario::from_spec(&clean_spec).expect("stripping faults keeps the spec valid");
    let unfaulted = run_field(&clean, config, ExecBackend::Event);

    let fc = FaultCampaign::new(&flap, config);
    let outages = fc.outages();
    let untouched = fc.untouched_cells(RECOVERY_MARGIN_S);
    if untouched.is_empty() {
        // An eternal outage (or one spanning every dwell window) leaves
        // nothing to certify recovery against — the gate cannot pass
        // vacuously.
        eprintln!("gate 2: no untouched cell — the fault schedule never lets the campaign recover");
        violations += 1;
    }
    let mut worst_margin = 0.0f64;
    let mut worst_cell = String::new();
    let mut recovery = Vec::new();
    for &cell in &untouched {
        let (f, u) = (faulted.stats(cell), unfaulted.stats(cell));
        if f.is_masked() && u.is_masked() {
            continue;
        }
        let tol = crossval_tolerance_ms(&f, &u);
        let delta = (f.mean_ms - u.mean_ms).abs();
        if f.count != u.count || delta > tol {
            eprintln!(
                "gate 2: untouched cell {cell} drifted: faulted {:.4} ms / {} samples \
                 vs unfaulted {:.4} ms / {} samples (tolerance {tol:.4} ms)",
                f.mean_ms, f.count, u.mean_ms, u.count
            );
            violations += 1;
        }
        let margin = delta / tol;
        if margin >= worst_margin {
            worst_margin = margin;
            worst_cell = cell.label();
        }
        recovery.push(serde_json::json!({
            "cell": cell.label(),
            "samples": f.count,
            "faulted_mean_ms": f.mean_ms,
            "unfaulted_mean_ms": u.mean_ms,
            "delta_ms": delta,
            "tolerance_ms": tol,
        }));
    }
    println!(
        "gate 2  {} untouched cell(s) vs unfaulted run; worst {worst_cell} at {:.1}% of tolerance",
        untouched.len(),
        worst_margin * 100.0
    );

    println!("\nflap campaign:  {passes} pass(es), grand mean {:.4} ms", faulted.grand_mean_ms());
    println!("unfaulted run:  grand mean {:.4} ms", unfaulted.grand_mean_ms());
    println!(
        "outage windows: {outages:?} s; {} sample(s) blackholed",
        unfaulted.total_samples() - faulted.total_samples()
    );
    println!("violations: {violations}");

    if let Some(path) = string_flag(&args, "--json") {
        let doc = serde_json::json!({
            "bench": "repro_faults",
            "spec": flap_spec.name,
            "passes": passes,
            "campaign_seed": config.seed,
            "routes_checked": routes_checked,
            "static_equivalence": equivalence,
            "outages_s": outages,
            "recovery_margin_s": RECOVERY_MARGIN_S,
            "untouched_cells": untouched.iter().map(|c| c.label()).collect::<Vec<_>>(),
            "recovery": recovery,
            "worst_cell": worst_cell,
            "worst_margin_of_tolerance": worst_margin,
            "grand_mean_faulted_ms": faulted.grand_mean_ms(),
            "grand_mean_unfaulted_ms": unfaulted.grand_mean_ms(),
            "total_samples_faulted": faulted.total_samples(),
            "total_samples_unfaulted": unfaulted.total_samples(),
            "violations": violations,
        });
        let text = serde_json::to_string_pretty(&doc).expect("faults record serialises");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if violations > 0 {
        eprintln!("repro_faults: {violations} convergence gate violation(s)");
        std::process::exit(1);
    }
}
