//! E9 — Section V-A: local peering optimisation.
//!
//! Applies the two interconnect depths to the measured scenario and
//! shows the Table-I flow collapsing, including the literature's "wired
//! RTT as low as 1 ms" configuration.

use sixg_bench::{compare, header, km, ms, REPRO_SEED};
use sixg_core::recommend::peering::{detect_detours, evaluate, PeeringDepth};
use sixg_measure::klagenfurt::KlagenfurtScenario;

fn main() {
    header("Detour detection (before peering)");
    let scenario = KlagenfurtScenario::paper(REPRO_SEED);
    let detours = detect_detours(&scenario, 9);
    compare(
        "inefficient campaign flows",
        "all (hops > 10)",
        format!("{}/{}", detours, scenario.routes.len()),
    );

    for depth in [PeeringDepth::LocalIsp, PeeringDepth::DirectCampus] {
        header(&format!("Local peering — {depth:?}"));
        let r = evaluate(REPRO_SEED, depth);
        compare("hops before → after", "10 → few", format!("{} → {}", r.before.hops, r.after.hops));
        compare(
            "route before → after",
            "2544+ km → local",
            format!("{} → {}", km(r.before.route_km), km(r.after.route_km)),
        );
        compare(
            "network RTT before → after",
            "(dominates 65 ms RTL)",
            format!("{} → {}", ms(r.before.wire_rtt_ms), ms(r.after.wire_rtt_ms)),
        );
        compare("wired-endpoint RTT after", "as low as 1 ms [3]", ms(r.wired_rtt_min_ms));
        compare("mobile (5G C2) RTT after", "(radio now dominates)", ms(r.mobile_rtt_after_ms));
    }

    println!(
        "\nThe paper: 'the majority of the delay stems from excessive networking\n\
         hops rather than the physical distance traveled.'"
    );
}
