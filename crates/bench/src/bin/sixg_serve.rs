//! `sixg-serve` — the long-lived campaign daemon.
//!
//! Binds a TCP listener, keeps one shared [`sixg_measure::Executor`]
//! (execution facade + compiled-scenario cache) hot, and answers
//! length-framed [`sixg_measure::ExecRequest`] documents from any number
//! of concurrent clients — validate, run, and sweep, with per-variant
//! streaming for sweeps. See `crates/bench/src/serve.rs` for the frame
//! layout and `DESIGN.md` for the protocol contract.
//!
//! ```text
//! sixg-serve [--addr HOST:PORT] [--cache N] [--threads T]
//!            [--scratch DIR] [--fail-after-store-frames K]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:7864`; port `0` picks an
//!   ephemeral port, printed in the banner for discovery);
//! * `--cache` — compiled-scenario cache capacity (default 8);
//! * `--threads` — pin the rayon pool size each connection uses (results
//!   are bitwise identical at every setting; this only shapes load);
//! * `--scratch` — root directory for dispatched shard checkpoint stores
//!   (default: a process-unique directory under the system temp dir);
//! * `--fail-after-store-frames` — fault-injection drill for the dispatch
//!   gate: the worker dies (drops every connection, accepts no more)
//!   immediately after writing its K-th `STORE` frame, deterministically
//!   mid-shard. Clamped to at least 1; never use outside testing.
//!
//! The daemon prints exactly one banner line to stdout once it is
//! accepting — `sixg-serve: listening on ADDR (cache capacity N)` —
//! then runs until killed.

use sixg_bench::serve::Server;
use sixg_measure::exec::DEFAULT_CACHE_CAPACITY;

const DEFAULT_ADDR: &str = "127.0.0.1:7864";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn usage() -> ! {
    eprintln!(
        "usage: sixg-serve [--addr HOST:PORT] [--cache N] [--threads T] \
         [--scratch DIR] [--fail-after-store-frames K]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "--cache" | "--threads" | "--scratch" | "--fail-after-store-frames" => {
                i += 2
            }
            other => {
                eprintln!("sixg-serve: unknown argument {other:?}");
                usage();
            }
        }
    }
    let addr = flag_value(&args, "--addr").unwrap_or(DEFAULT_ADDR);
    let cache: usize = flag_value(&args, "--cache").map_or(DEFAULT_CACHE_CAPACITY, |v| {
        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("sixg-serve: invalid value {v:?} for --cache (need an integer >= 1)");
            std::process::exit(2);
        })
    });
    let threads: Option<usize> = flag_value(&args, "--threads").map(|v| {
        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("sixg-serve: invalid value {v:?} for --threads (need an integer >= 1)");
            std::process::exit(2);
        })
    });

    let fail_after: Option<u64> = flag_value(&args, "--fail-after-store-frames").map(|v| {
        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!(
                "sixg-serve: invalid value {v:?} for --fail-after-store-frames \
                 (need an integer >= 1)"
            );
            std::process::exit(2);
        })
    });

    let mut server = Server::bind(addr, cache, threads).unwrap_or_else(|e| {
        eprintln!("sixg-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    if let Some(dir) = flag_value(&args, "--scratch") {
        server.set_scratch(dir);
    }
    if let Some(k) = fail_after {
        server.set_fault_plan(k);
    }
    let bound = server.local_addr().expect("bound listener has an address");
    // The discovery contract: exactly this line, first on stdout, so
    // harnesses binding port 0 can read the real address back.
    println!("sixg-serve: listening on {bound} (cache capacity {cache})");

    if let Err(e) = server.run() {
        eprintln!("sixg-serve: listener failed: {e}");
        std::process::exit(1);
    }
}
