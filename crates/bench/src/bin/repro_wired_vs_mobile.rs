//! E7 — Section IV-C: "the mean RTL for mobile nodes surpasses that of
//! wired nodes by a factor of seven", plus the introduction's 7–12 ms
//! Exoscale wired reference.

use sixg_bench::{compare, header, ms, shared_scenario};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::wired::{mobile_wired_factor, WiredCampaign};

fn main() {
    let s = shared_scenario();

    header("Wired baseline campaign (fixed peers + anchor + Vienna cloud)");
    let wired = WiredCampaign::new(s, 2).run();
    compare("wired mean RTT", "1-11 ms band [3]", ms(wired.mean_ms));
    compare("wired → Exoscale-like cloud", "7-12 ms [3]", ms(wired.cloud_mean_ms));
    compare("wired → anchor", "(local ISP via Vienna)", ms(wired.anchor_mean_ms));
    println!("samples: {}", wired.count);

    header("Mobile campaign (Figure 2)");
    let field = MobileCampaign::new(s, CampaignConfig::dense(2)).run();
    compare("mobile grand mean", "~74 ms", ms(field.grand_mean_ms()));

    header("Mobile vs wired");
    let factor = mobile_wired_factor(field.grand_mean_ms(), &wired);
    compare("mobile / wired factor", "~7x", format!("{factor:.1}x"));
}
