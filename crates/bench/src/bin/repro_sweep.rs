//! E20 — the committed cadence sweep: a campaign matrix from one file.
//!
//! Runs `specs/sweeps/klagenfurt_cadence.json` — sampling cadence
//! {1 s, 2 s, 4 s} × execution backend {analytic, event} × campaign seeds
//! {1, 2, 3}, eighteen variants around the measured Klagenfurt baseline —
//! as one interleaved work list on the thread pool, prints the per-variant
//! deltas against the base spec, and **gates** on backend agreement: at
//! every swept cadence and seed, the analytic/event pair must agree within
//! the workspace cross-validation tolerance (`6·SE + 0.75 ms` per cell,
//! 1.5 % on grand means — the `repro_crossval` constants). Any violation
//! exits non-zero so CI can gate on it.
//!
//! ```text
//! cargo run --release --bin repro_sweep -- [--threads N] [--json PATH] [SWEEP_FILE]
//! ```
//!
//! `--json PATH` writes the `SweepReport` (the `BENCH_sweep.json` artifact
//! CI uploads). The report carries no wall times, so it is **bitwise
//! identical across pool sizes** — CI runs it at `--threads 1` and `4` and
//! `cmp`s the two files; wall-clock timings go to stdout only.

use sixg_bench::{compare, header};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::sweep::Sweep;
use std::time::Instant;

/// The committed sweep file, resolved from the crate root so the binary
/// works from any working directory.
const SWEEP_FILE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/sweeps/klagenfurt_cadence.json");

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // This binary exists to pin pool sizes for the bitwise determinism
    // gate — a silently dropped --threads would run the wrong experiment.
    let threads: Option<usize> = flag_value(&args, "--threads").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_sweep: invalid value {v:?} for --threads");
            std::process::exit(2);
        })
    });
    let json = flag_value(&args, "--json").map(str::to_string);
    let path = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some("--threads" | "--json")
                )
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or(SWEEP_FILE);

    header("E20 — declarative parameter sweep (cadence × backend × seeds)");
    let sweep = Sweep::from_file(path).unwrap_or_else(|e| {
        eprintln!("repro_sweep: cannot load {path}: {e}");
        std::process::exit(2);
    });
    compare("sweep", "klagenfurt_cadence", &sweep.spec.name);
    compare("variants", "18", sweep.spec.variant_count());

    let t0 = Instant::now();
    let run = match threads {
        Some(t) => with_thread_count(t, || sweep.run()),
        None => sweep.run(),
    }
    .unwrap_or_else(|e| {
        eprintln!("repro_sweep: sweep failed to run: {e}");
        std::process::exit(2);
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let report = &run.report;

    println!(
        "\n{:<70} {:>8} {:>9} {:>10} {:>9}",
        "variant", "backend", "samples", "mean (ms)", "Δ (ms)"
    );
    let row = |v: &sixg_measure::sweep::VariantReport| {
        println!(
            "{:<70} {:>8} {:>9} {:>10.4} {:>+9.4}",
            v.label, v.backend, v.total_samples, v.grand_mean_ms, v.delta_grand_mean_ms
        );
    };
    row(&report.base);
    for v in &report.variants {
        row(v);
    }

    let total_samples: u64 =
        std::iter::once(&report.base).chain(&report.variants).map(|v| v.total_samples).sum();
    println!(
        "\nmatrix: {} campaigns, {} samples, {:.3} s wall",
        report.variants.len() + 1,
        total_samples,
        wall_s
    );
    compare("base grand mean (ms)", "74.13", format!("{:.4}", report.base.grand_mean_ms));

    let violations = run.crossval_violations();
    println!("cross-validation violations: {}", violations.len());
    for v in &violations {
        eprintln!("violation: {v}");
    }

    if let Some(out) = &json {
        std::fs::write(out, report.to_json()).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out}");
    }

    if !violations.is_empty() {
        eprintln!(
            "repro_sweep: {} cross-validation violation(s) — backends disagree at a swept cadence",
            violations.len()
        );
        std::process::exit(1);
    }
}
