//! E18 — parallel scaling: sequential vs thread-pool campaign execution.
//!
//! Runs the same Klagenfurt campaign through the sequential runner and
//! through the facade's analytic runner at several pool sizes, reports wall time and
//! speedup, and **verifies bitwise equality** of every parallel result
//! against the sequential baseline. A mismatch is a determinism-contract
//! violation and exits non-zero, so CI can use this binary as a smoke
//! gate. Speedup itself is hardware-dependent (a single-core container
//! measures only scheduling overhead) and is reported, not asserted.
//!
//! ```text
//! cargo run --release --bin repro_scaling -- [--passes N] [--seed S] [--json PATH]
//! ```
//!
//! `--json PATH` additionally writes the machine-readable timing record
//! (the `BENCH_parallel.json` artifact CI uploads, seeding the perf
//! trajectory).

use sixg_bench::{compare, header, shared_scenario};
use sixg_measure::aggregate::CellField;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::exec::run_field;
use sixg_measure::parallel::with_thread_count;
use sixg_measure::ExecBackend;
use std::time::Instant;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bitwise comparison over every cell; returns the first differing cell.
fn first_difference(
    s: &sixg_measure::KlagenfurtScenario,
    a: &CellField,
    b: &CellField,
) -> Option<String> {
    for cell in s.grid.cells() {
        let (x, y) = (a.stats(cell), b.stats(cell));
        if x.count != y.count
            || x.mean_ms.to_bits() != y.mean_ms.to_bits()
            || x.std_ms.to_bits() != y.std_ms.to_bits()
        {
            return Some(format!(
                "cell {cell}: seq (n={}, mean={:.17}, std={:.17}) vs par (n={}, mean={:.17}, std={:.17})",
                x.count, x.mean_ms, x.std_ms, y.count, y.mean_ms, y.std_ms
            ));
        }
    }
    None
}

fn json_path(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let passes = parse_flag(&args, "--passes", 8) as u32;
    let seed = parse_flag(&args, "--seed", 1);
    let config = CampaignConfig { seed, passes, ..Default::default() };

    let s = shared_scenario();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    header("E18 — parallel scaling (sequential vs thread pool)");
    compare("hardware threads available", "n/a", cores);
    compare("campaign passes", "n/a", passes);

    // Warm up caches (scenario routes, allocator) outside the timed region.
    let _ = MobileCampaign::new(s, CampaignConfig { passes: 1, ..config }).run();

    let t0 = Instant::now();
    let sequential = MobileCampaign::new(s, config).run();
    let seq_s = t0.elapsed().as_secs_f64();
    println!("\nsequential: {:>8.3} s   ({} samples)", seq_s, sequential.total_samples());

    let mut all_equal = true;
    let mut best_speedup = 0.0f64;
    let mut runs: Vec<serde_json::Value> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let parallel = with_thread_count(threads, || run_field(s, config, ExecBackend::Analytic));
        let par_s = t.elapsed().as_secs_f64();
        let speedup = seq_s / par_s;
        best_speedup = best_speedup.max(speedup);
        let difference = first_difference(s, &sequential, &parallel);
        let bitwise_equal = difference.is_none();
        let verdict = match difference {
            None => "bitwise equal".to_string(),
            Some(diff) => {
                all_equal = false;
                format!("MISMATCH — {diff}")
            }
        };
        println!("{threads:>2} threads: {par_s:>8.3} s   speedup {speedup:>5.2}x   {verdict}");
        runs.push(serde_json::json!({
            "threads": threads,
            "seconds": par_s,
            "speedup": speedup,
            "bitwise_equal": bitwise_equal,
        }));
    }

    println!("\nbest speedup: {best_speedup:.2}x over sequential on {cores} hardware thread(s)");
    println!("parallel output identical to sequential: {all_equal}");

    if let Some(path) = json_path(&args) {
        let doc = serde_json::json!({
            "bench": "repro_scaling",
            "passes": passes,
            "seed": seed,
            "hardware_threads": cores,
            "total_samples": sequential.total_samples(),
            "sequential_seconds": seq_s,
            "best_speedup": best_speedup,
            "all_bitwise_equal": all_equal,
            "runs": runs,
        });
        let text = serde_json::to_string_pretty(&doc).expect("timing record serialises");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if !all_equal {
        eprintln!(
            "repro_scaling: parallel output differs from sequential — determinism contract broken"
        );
        std::process::exit(1);
    }
}
