//! E13 — Section V-C: end-to-end slicing and hypervisor placement.
//!
//! * slice isolation: a bulk overload cannot hurt the critical slice,
//!   unlike a shared best-effort queue;
//! * hypervisor placement under the three literature objectives;
//! * reactive vs predictive reconfiguration.

use sixg_bench::{compare, header, ms};
use sixg_core::slicing::{
    simulate_reconfig, HypervisorPlanner, Objective, ReconfigStrategy, SliceManager, SliceSpec,
};
use sixg_netsim::packet::TrafficClass;

fn main() {
    header("Slice isolation on a shared 1 Gbit/s link");
    let mut m = SliceManager::new(1e9);
    m.admit(SliceSpec {
        name: "ar-critical".into(),
        class: TrafficClass::Critical,
        reserved_bps: 100e6,
        max_latency_ms: 1.5,
    })
    .expect("critical slice admits");
    m.admit(SliceSpec {
        name: "bulk".into(),
        class: TrafficClass::Bulk,
        reserved_bps: 700e6,
        max_latency_ms: 100.0,
    })
    .expect("bulk slice admits");
    m.set_load("ar-critical", 30e6);
    m.set_load("bulk", 2e9); // bulk tenant misbehaving at 2 Gbit/s

    compare("critical slice latency (sliced)", "(bounded)", ms(m.slice_latency_ms("ar-critical")));
    compare("bulk slice latency (sliced)", "(policed)", ms(m.slice_latency_ms("bulk")));
    compare("shared best-effort latency", "(collapses)", ms(m.shared_latency_ms()));
    compare("all slice bounds met", "yes", format!("{}", m.all_bounds_met()));

    header("Hypervisor placement objectives (4 switches, 3 sites, k=2)");
    let planner = HypervisorPlanner::new(vec![
        vec![1.0, 8.0, 6.0],
        vec![2.0, 7.0, 6.0],
        vec![9.0, 1.0, 6.0],
        vec![8.0, 2.0, 6.0],
    ]);
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>10}",
        "objective", "sites", "mean (ms)", "failover (ms)", "max load"
    );
    for obj in [Objective::Latency, Objective::Resilience, Objective::LoadBalance] {
        let p = planner.place(2, obj);
        println!(
            "{:<14} {:>10} {:>14.2} {:>14.2} {:>10}",
            format!("{obj:?}"),
            format!("{:?}", p.sites),
            p.mean_latency_ms,
            p.worst_failover_ms,
            p.max_load
        );
    }

    header("Reactive vs predictive reconfiguration (500 steps, 6 ms bound)");
    for strat in [ReconfigStrategy::Reactive, ReconfigStrategy::Predictive] {
        let s = simulate_reconfig(strat, 500, 6.0);
        println!(
            "{:<12} violations: {:>4}   reconfigurations: {:>4}",
            format!("{strat:?}"),
            s.violations,
            s.reconfigurations
        );
    }
    println!(
        "\nThe paper: placement strategies 'typically operate in a reactive\n\
         rather than predictive manner' — prediction removes most violations."
    );
}
