//! E5 — Figure 4: "Data Trace of Local Service Request".
//!
//! Projects the Table-I traceroute geographically: the request leaves
//! Klagenfurt for Vienna, crosses to Prague, descends to Bucharest, and
//! returns via Vienna — the paper's 2 544 km detour for a < 5 km flow.

use sixg_bench::{compare, header, km, shared_scenario};
use sixg_core::detour::DetourAnalysis;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};

fn main() {
    let s = shared_scenario();
    let campaign = MobileCampaign::new(s, CampaignConfig::default());
    let trace = campaign.table1_traceroute(0);
    let analysis = DetourAnalysis::from_trace(&trace);

    header("Figure 4 — geographic data trace");
    println!("hop positions (lat, lon):");
    for h in &trace.hops {
        println!("  hop {:>2}  ({:>8.4}, {:>8.4})  {}", h.hop, h.pos.lat, h.pos.lon, h.name);
    }

    println!("\ncity-level waypoints ({}):", analysis.city_waypoints.len());
    for (i, p) in analysis.city_waypoints.iter().enumerate() {
        println!("  {i}: ({:>8.4}, {:>8.4})", p.lat, p.lon);
    }

    println!();
    compare("outbound route length", "2544 km", km(analysis.outbound_km));
    compare("full round length", "(not stated)", km(analysis.total_km));
    compare("direct endpoint distance", "< 5 km", format!("{:.1} km", analysis.direct_km));
    compare("detour ratio", ">500x", format!("{:.0}x", analysis.detour_ratio));
    compare("farthest point from source", "Bucharest (~1000 km)", km(analysis.farthest_km));
    println!(
        "\nThe paper: 'Such inefficiency undermines the goal of reducing\n\
         latency through edge resources.'"
    );
}
