//! E6 — Section III requirements table and the ≈270 % gap claim.
//!
//! Prints the per-application requirement envelopes and analyses the
//! dense campaign against the AR use case's 20 ms round-trip budget.

use sixg_bench::{compare, header, ms, pct, shared_scenario};
use sixg_core::gap::GapReport;
use sixg_core::requirements::{campaign_reference_requirement, ApplicationClass};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};

fn main() {
    header("Section III — application requirement envelopes");
    println!(
        "{:<24} {:>10} {:>14} {:>12} {:>14}  note",
        "class", "RTL (ms)", "tput (Mbit/s)", "GB/day", "dev/km²"
    );
    for class in ApplicationClass::ALL {
        let p = class.profile();
        println!(
            "{:<24} {:>10.1} {:>14.0} {:>12.0} {:>14.0}  {}",
            format!("{class:?}"),
            p.max_rtl_ms,
            p.min_throughput_bps / 1e6,
            p.data_per_day_gb,
            p.device_density_per_km2,
            p.note
        );
    }

    header("Gap analysis vs the measured campaign (AR budget: 20 ms)");
    let s = shared_scenario();
    let field = MobileCampaign::new(s, CampaignConfig::dense(2)).run();
    let report = GapReport::analyse(&field, &campaign_reference_requirement());

    compare("measured grand mean", "~74 ms", ms(report.measured_mean_ms));
    compare("requirement exceedance", "~270 %", pct(report.exceedance_pct));
    compare("best-cell exceedance (61 ms)", "~205 %", pct(report.best_cell_exceedance_pct));
    compare(
        "compliant cells",
        "0 / 33",
        format!("{} / {}", report.compliant_cells, report.reported_cells),
    );
}
