//! E10/E11 — Section V-B: UPF integration, dynamic selection, SmartNIC.
//!
//! * edge-UPF breakout reaching the literature's 5–6.2 ms band (≈90 %
//!   below the measured 62+ ms baseline);
//! * dynamic per-class UPF selection (critical → edge, bulk → cloud);
//! * SmartNIC data plane: 2× throughput, 3.75× lower processing latency
//!   (Jain et al.), swept over offered load.

use sixg_bench::{compare, header, ms, pct, REPRO_SEED};
use sixg_core::recommend::upf::{evaluate, Dataplane};
use sixg_netsim::rng::SimRng;

fn main() {
    header("UPF integration (edge breakout vs measured baseline)");
    let r = evaluate(REPRO_SEED);
    compare("baseline service RTT (C2 via detour)", "exceeding 62 ms", ms(r.baseline_ms));
    compare("edge-UPF service RTT", "5-6.2 ms [30][31]", ms(r.edge_upf_ms));
    compare("reduction", "up to 90 %", pct(r.reduction_pct));

    header("Dynamic UPF selection (per traffic class)");
    compare("latency-critical via edge UPF", "(prioritized at edge)", ms(r.critical_ms));
    compare("bulk via central cloud UPF", "(offloaded centrally)", ms(r.bulk_ms));

    header("SmartNIC UPF data plane (Jain et al. [32][33])");
    compare(
        "saturation throughput",
        "2x host CPU",
        format!(
            "{:.1} Mpps vs {:.1} Mpps",
            Dataplane::SmartNic.capacity_pps() / 1e6,
            Dataplane::HostCpu.capacity_pps() / 1e6
        ),
    );
    compare(
        "packet processing latency",
        "3.75x lower",
        format!(
            "{:.1} us vs {:.1} us",
            Dataplane::SmartNic.proc_ms() * 1e3,
            Dataplane::HostCpu.proc_ms() * 1e3
        ),
    );

    println!("\nOffered-load sweep (mean processing+queueing latency, us):");
    println!("{:>12} {:>14} {:>14}", "offered Mpps", "host CPU", "SmartNIC");
    let mut rng = SimRng::from_seed(9);
    for offered in [0.2e6, 0.5e6, 0.8e6, 1.0e6, 1.1e6, 1.5e6, 2.0e6, 2.2e6] {
        let mean = |dp: Dataplane, rng: &mut SimRng| -> String {
            let n = 20_000;
            let total: f64 = (0..n).map(|_| dp.sample_proc_ms(offered, rng)).sum();
            if total.is_finite() {
                format!("{:.2}", total / n as f64 * 1e3)
            } else {
                "saturated".to_string()
            }
        };
        println!(
            "{:>12.2} {:>14} {:>14}",
            offered / 1e6,
            mean(Dataplane::HostCpu, &mut rng),
            mean(Dataplane::SmartNic, &mut rng)
        );
    }
}
