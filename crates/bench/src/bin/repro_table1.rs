//! E4 — Table I: "Networking hops for local service request".
//!
//! Traceroutes from the mobile node in C2 to the university anchor in E3
//! (< 5 km apart) and prints the ten-hop table with the paper's node
//! names, plus the mean RTL over repetitions (the paper observed 65 ms).

use sixg_bench::{compare, header, ms, shared_scenario};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_netsim::stats::Welford;

fn main() {
    let s = shared_scenario();
    let campaign = MobileCampaign::new(s, CampaignConfig::default());

    header("Table I — networking hops for local service request");
    let trace = campaign.table1_traceroute(0);
    print!("{}", trace.render_table());

    let mut w = Welford::new();
    for rep in 0..500 {
        w.push(campaign.table1_traceroute(rep).total_rtt_ms());
    }

    println!();
    compare("hop count", 10, trace.hop_count());
    compare("overall RTL", "65 ms", ms(w.mean()));
    let (ue, anchor) = s.table1_endpoints();
    let d = s.topo.node(ue).pos.distance_km(s.topo.node(anchor).pos);
    compare("endpoint separation", "< 5 km", format!("{d:.1} km"));
}
