//! E23 — the checkpointed mega-sweep study, and the kill/resume/merge gate.
//!
//! Runs the three committed E23 mega-sweeps — `mega_klagenfurt` (cadence ×
//! density × fault recovery × 10 seeds over the faulted Klagenfurt base,
//! every variant on the live BGP control plane), `mega_skopje` and
//! `mega_megacity` (cadence × density × both backends × 10 seeds) — as
//! **checkpointed** runs spilling to an on-disk store per sweep, then
//! gates on three properties:
//!
//! 1. **Resume identity.** The store layer is exercised end to end: every
//!    run executes through `run_checkpointed` (spill + read-back), and an
//!    invocation with `--kill-after K` aborts at the committed cursor so a
//!    rerun with the same `--store` must resume into a report bitwise
//!    identical to a never-killed run (CI `cmp`s the JSON artifacts).
//! 2. **Merge identity.** One sweep is additionally executed as two
//!    disjoint shard stores and folded back with `merge_stores`; the
//!    merged report must equal the unsharded one byte for byte.
//! 3. **Cross-validation.** Every analytic/event variant pair of the
//!    backend-swept legs must agree within the workspace tolerances.
//!
//! Any violation exits 1. `--json PATH` writes the combined
//! `BENCH_megasweep.json` artifact — the three `SweepReport`s under one
//! document, no wall times, **bitwise identical across pool sizes and
//! kill positions**.
//!
//! ```text
//! cargo run --release --bin repro_megasweep -- \
//!     [--threads N] [--store DIR] [--kill-after K] [--json PATH]
//! ```

use sixg_bench::{compare, header};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::store::{run_checkpointed, CheckpointConfig, CheckpointOutcome};
use sixg_measure::sweep::{Sweep, SweepRun};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SWEEPS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/sweeps");
const SWEEPS: [&str; 3] = ["mega_klagenfurt", "mega_skopje", "mega_megacity"];
/// The sweep that additionally runs as two shards and re-merges.
const SHARDED: &str = "mega_skopje";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn load(name: &str) -> Sweep {
    let path = format!("{SWEEPS_DIR}/{name}.json");
    Sweep::from_file_unbounded(&path).unwrap_or_else(|e| {
        eprintln!("repro_megasweep: cannot load {path}: {e}");
        std::process::exit(2);
    })
}

/// Runs one sweep checkpointed under `dir`, resuming whatever the store
/// already holds. `kill_after` aborts the process at the committed cursor
/// once that many items of *this shard's remaining work* are folded.
fn run_leg(
    sweep: &Sweep,
    dir: PathBuf,
    shard: Option<(u32, u32)>,
    kill_after: Option<u64>,
    threads: Option<usize>,
) -> Option<SweepRun> {
    let mut cfg = CheckpointConfig::new(dir);
    if let Some((i, n)) = shard {
        cfg.shard_index = i;
        cfg.shard_count = n;
    }
    cfg.stop_after_items = kill_after;
    let outcome = match threads {
        Some(t) => with_thread_count(t, || run_checkpointed(sweep, &cfg)),
        None => run_checkpointed(sweep, &cfg),
    }
    .unwrap_or_else(|e| {
        eprintln!("repro_megasweep: {e}");
        std::process::exit(1);
    });
    match outcome {
        CheckpointOutcome::Complete(run) => Some(*run),
        CheckpointOutcome::ShardComplete { .. } => None,
        CheckpointOutcome::Interrupted { done_items, total_items } => {
            // Behave like a real kill: cursor committed, then die without
            // a clean exit status — CI reruns with the same --store and
            // must land on identical bits.
            eprintln!(
                "repro_megasweep: killed at checkpoint cursor {done_items}/{total_items} \
                 (--kill-after) — rerun with the same --store to resume"
            );
            std::process::abort();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: Option<usize> = flag_value(&args, "--threads").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_megasweep: invalid value {v:?} for --threads");
            std::process::exit(2);
        })
    });
    let kill_after: Option<u64> = flag_value(&args, "--kill-after").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_megasweep: invalid value {v:?} for --kill-after");
            std::process::exit(2);
        })
    });
    let json = flag_value(&args, "--json").map(str::to_string);
    let store_root: PathBuf = match flag_value(&args, "--store") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("sixg-megasweep-{}", std::process::id())),
    };

    header("E23 — checkpointed mega-sweeps (kill/resume/merge gate)");
    println!("store root: {}", store_root.display());

    // `--kill-after` applies to the first leg that still has work, so a
    // killed invocation dies mid-study and the rerun proves resume across
    // sweep boundaries as well as within one.
    let mut kill = kill_after;
    let mut reports = Vec::new();
    let mut total_variants = 0usize;
    let mut violations_total = 0usize;
    for name in SWEEPS {
        let sweep = load(name);
        total_variants += sweep.spec.variant_count();
        let t0 = Instant::now();
        let run = run_leg(&sweep, store_root.join(name), None, kill.take(), threads)
            .expect("unsharded run always yields a report");
        println!(
            "{name}: {} variants, {} samples, {:.3} s wall",
            run.report.variants.len(),
            std::iter::once(&run.report.base)
                .chain(&run.report.variants)
                .map(|v| v.total_samples)
                .sum::<u64>(),
            t0.elapsed().as_secs_f64()
        );
        let violations = run.crossval_violations();
        for v in &violations {
            eprintln!("violation ({name}): {v}");
        }
        violations_total += violations.len();
        reports.push((name, run));
    }
    compare("total variants", "420", total_variants);

    // Merge gate: re-run one sweep as two disjoint shard stores and fold
    // them back; the merged report must bit-reproduce the unsharded one.
    let sweep = load(SHARDED);
    let shard_dirs =
        [store_root.join(format!("{SHARDED}_s0")), store_root.join(format!("{SHARDED}_s1"))];
    for (i, dir) in shard_dirs.iter().enumerate() {
        let done = run_leg(&sweep, dir.clone(), Some((i as u32, 2)), None, threads);
        assert!(done.is_none(), "a 2-shard leg must end ShardComplete");
    }
    let merged = sixg_measure::store::merge_stores(&sweep, &shard_dirs).unwrap_or_else(|e| {
        eprintln!("repro_megasweep: merge failed: {e}");
        std::process::exit(1);
    });
    let unsharded = &reports.iter().find(|(n, _)| *n == SHARDED).expect("sharded leg ran").1;
    let merge_bitwise = merged.report.to_json() == unsharded.report.to_json();
    compare("2-shard merge bitwise", "true", merge_bitwise);

    if let Some(out) = &json {
        // The combined artifact: three SweepReports under one document.
        // No wall times anywhere, so the file is bitwise stable across
        // pool sizes and kill/resume positions.
        let doc = serde_json::Value::Object(vec![
            ("experiment".into(), serde_json::Value::String("E23".into())),
            (
                "sweeps".into(),
                serde_json::Value::Array(
                    reports
                        .iter()
                        .map(|(_, run)| {
                            serde_json::from_str(&run.report.to_json())
                                .expect("SweepReport round-trips")
                        })
                        .collect(),
                ),
            ),
        ]);
        let text = serde_json::to_string_pretty(&doc).expect("artifact serialises");
        std::fs::write(out, text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out}");
    }

    if violations_total > 0 {
        eprintln!(
            "repro_megasweep: {violations_total} cross-validation violation(s) — backends disagree"
        );
        std::process::exit(1);
    }
    if !merge_bitwise {
        eprintln!("repro_megasweep: merged shard report differs from the unsharded run");
        std::process::exit(1);
    }
    // Leave the store on disk only when the caller chose where it lives.
    if flag_value(&args, "--store").is_none() {
        let _ = std::fs::remove_dir_all(Path::new(&store_root));
    }
}
