//! E19 — backend cross-validation: analytic vs packet-level event backend.
//!
//! Runs the dense Klagenfurt campaign through both execution backends —
//! the closed-form analytic sampler and the packet-level discrete-event
//! simulator — over the identical (pass, cell) shard list, and asserts
//! their per-cell mean RTLs agree within the documented tolerance:
//!
//! ```text
//! |mean_analytic − mean_event| ≤ 6·SE + SLACK_MS          per cell
//! |gm_analytic − gm_event| / gm_analytic ≤ GRAND_MEAN_TOL grand mean
//! ```
//!
//! where `SE = sqrt(σ_a²/n_a + σ_e²/n_e)` is the standard error of the
//! difference of two independent sample means (the backends draw from
//! disjoint random streams), `6·SE` bounds statistical noise far beyond
//! any plausible fluctuation, and `SLACK_MS` absorbs the backends'
//! second-order modelling differences (the event backend samples the full
//! per-link extra-delay distributions and serialises probes through FIFO
//! queues; the analytic path collapses extras to their means). A violation
//! means one backend's model drifted — the binary exits non-zero so CI can
//! gate on it.
//!
//! ```text
//! cargo run --release --bin repro_crossval -- [--passes N] [--seed S] [--json PATH]
//! ```
//!
//! `--json PATH` writes the machine-readable record (the
//! `BENCH_crossval.json` artifact CI uploads: per-backend wall time plus
//! the worst per-cell deviation, seeding the perf trajectory).

use sixg_bench::{compare, header, shared_scenario};
use sixg_measure::campaign::CampaignConfig;
use sixg_measure::event_backend::{
    crossval_tolerance_ms, CROSSVAL_GRAND_MEAN_TOL, CROSSVAL_SLACK_MS,
};
use sixg_measure::exec::run_field;
use sixg_measure::ExecBackend;
use std::time::Instant;

/// Absolute slack on top of the statistical bound, ms (the shared
/// workspace definition — see DESIGN.md "Execution backends").
const SLACK_MS: f64 = CROSSVAL_SLACK_MS;
/// Relative tolerance on the grand-mean agreement.
const GRAND_MEAN_TOL: f64 = CROSSVAL_GRAND_MEAN_TOL;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn json_path(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let passes = parse_flag(&args, "--passes", 30) as u32;
    let seed = parse_flag(&args, "--seed", 2);
    let config = CampaignConfig { seed, passes, ..Default::default() };

    let s = shared_scenario();
    header("E19 — backend cross-validation (analytic vs event)");
    compare("campaign passes", "n/a", passes);

    let t0 = Instant::now();
    let analytic = run_field(s, config, ExecBackend::Analytic);
    let analytic_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let event = run_field(s, config, ExecBackend::Event);
    let event_s = t1.elapsed().as_secs_f64();

    println!("\nanalytic backend: {analytic_s:>8.3} s   ({} samples)", analytic.total_samples());
    println!("event backend:    {event_s:>8.3} s   ({} samples)", event.total_samples());

    let mut violations = 0usize;
    let mut worst_delta_ms = 0.0f64;
    let mut worst_margin = 0.0f64; // delta / tolerance, worst case
    let mut worst_cell = String::new();
    let mut cells: Vec<serde_json::Value> = Vec::new();
    for cell in s.grid.cells() {
        let (a, e) = (analytic.stats(cell), event.stats(cell));
        if a.is_masked() && e.is_masked() {
            continue;
        }
        if a.count != e.count {
            println!("cell {cell}: SAMPLE COUNT MISMATCH {} vs {}", a.count, e.count);
            violations += 1;
            continue;
        }
        let tol = crossval_tolerance_ms(&a, &e);
        let delta = (a.mean_ms - e.mean_ms).abs();
        let margin = delta / tol;
        if margin > worst_margin {
            worst_margin = margin;
            worst_delta_ms = delta;
            worst_cell = cell.label();
        }
        if delta > tol {
            println!(
                "cell {cell}: DEVIATION {delta:.4} ms exceeds tolerance {tol:.4} ms \
                 (analytic {:.4}, event {:.4})",
                a.mean_ms, e.mean_ms
            );
            violations += 1;
        }
        cells.push(serde_json::json!({
            "cell": cell.label(),
            "samples": a.count,
            "analytic_mean_ms": a.mean_ms,
            "event_mean_ms": e.mean_ms,
            "delta_ms": delta,
            "tolerance_ms": tol,
        }));
    }

    let (ga, ge) = (analytic.grand_mean_ms(), event.grand_mean_ms());
    let grand_rel = (ga - ge).abs() / ga;
    if grand_rel > GRAND_MEAN_TOL {
        println!(
            "grand mean: DEVIATION {:.3}% exceeds {:.1}% (analytic {ga:.4}, event {ge:.4})",
            grand_rel * 100.0,
            GRAND_MEAN_TOL * 100.0
        );
        violations += 1;
    }

    compare("grand mean, analytic (ms)", "74.13", format!("{ga:.4}"));
    compare("grand mean, event (ms)", "74.13±1.5%", format!("{ge:.4}"));
    println!(
        "\nworst cell {worst_cell}: |Δmean| {worst_delta_ms:.4} ms at {:.0}% of its tolerance",
        worst_margin * 100.0
    );
    println!(
        "per-cell tolerance: 6·SE + {SLACK_MS} ms; grand-mean tolerance: {:.1}%",
        GRAND_MEAN_TOL * 100.0
    );
    println!("violations: {violations}");

    if let Some(path) = json_path(&args) {
        let doc = serde_json::json!({
            "bench": "repro_crossval",
            "passes": passes,
            "seed": seed,
            "total_samples": analytic.total_samples(),
            "analytic_seconds": analytic_s,
            "event_seconds": event_s,
            "event_over_analytic": event_s / analytic_s,
            "grand_mean_analytic_ms": ga,
            "grand_mean_event_ms": ge,
            "grand_mean_rel_delta": grand_rel,
            "worst_cell": worst_cell,
            "worst_delta_ms": worst_delta_ms,
            "worst_margin_of_tolerance": worst_margin,
            "tolerance_per_cell": "6*SE + 0.75 ms",
            "tolerance_grand_mean_rel": GRAND_MEAN_TOL,
            "violations": violations,
            "cells": cells,
        });
        let text = serde_json::to_string_pretty(&doc).expect("crossval record serialises");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if violations > 0 {
        eprintln!("repro_crossval: {violations} cross-validation violation(s) — backends disagree");
        std::process::exit(1);
    }
}
