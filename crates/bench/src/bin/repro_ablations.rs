//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Policy vs geography** — what the Table-I flow would look like if
//!    routing ignored business relationships (flat peering everywhere):
//!    demonstrates the detour is *policy-induced*, the paper's core
//!    diagnosis;
//! 2. **Calibration robustness** — the Figure-2 field across independent
//!    campaign seeds;
//! 3. **Radio-model component ablation** — how much of a loaded cell's
//!    RTT each 5G component contributes;
//! 4. **Fibre-route-factor sensitivity** — the Figure-4 distance under
//!    different route-inflation assumptions.

use sixg_bench::{header, ms, REPRO_SEED};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::klagenfurt::{
    KlagenfurtScenario, ASCUS_AS, CAMPUS_AS, DATAPACKET_AS, IX_AS, OP_AS, ZET_AS,
};
use sixg_netsim::radio::{AccessModel, CellEnv, FiveGAccess};
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::{AsGraph, PathComputer};

fn main() {
    // ------------------------------------------------------------------
    header("Ablation 1: BGP policy vs geography-only routing");
    let scenario = KlagenfurtScenario::paper(REPRO_SEED);
    let (ue, anchor) = scenario.table1_endpoints();
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let policy_path = pc.route(ue, anchor).expect("routable");
    println!(
        "policy routing:     {:>2} hops, {:>6.0} km, {:>6.2} ms one-way",
        policy_path.hop_count(),
        policy_path.route_km(&scenario.topo),
        pc.expected_one_way_ms(ue, anchor).expect("routable"),
    );

    // Hypothetical: everyone peers with everyone (pure SPF world).
    let mut flat = AsGraph::new();
    for (i, a) in [OP_AS, DATAPACKET_AS, ZET_AS, IX_AS, ASCUS_AS, CAMPUS_AS].iter().enumerate() {
        for b in &[OP_AS, DATAPACKET_AS, ZET_AS, IX_AS, ASCUS_AS, CAMPUS_AS][i + 1..] {
            flat.add_peering(*a, *b);
        }
    }
    let pc_flat = PathComputer::new(&scenario.topo, &flat);
    match pc_flat.route(ue, anchor) {
        Some(path) => println!(
            "geography-only:     {:>2} hops, {:>6.0} km, {:>6.2} ms one-way",
            path.hop_count(),
            path.route_km(&scenario.topo),
            pc_flat.expected_one_way_ms(ue, anchor).expect("routable"),
        ),
        None => println!("geography-only:     unroutable (no physical shortcut exists)"),
    }
    println!("=> with this physical topology, even policy-free routing must transit");
    println!("   Vienna; only *new interconnects* (Section V-A) shorten the path.");

    // ------------------------------------------------------------------
    header("Ablation 2: calibration robustness across campaign seeds");
    println!("{:>6} {:>12} {:>12} {:>12}", "seed", "grand mean", "min cell", "max cell");
    for seed in [1u64, 2, 3, 4, 5] {
        let field = MobileCampaign::new(&scenario, CampaignConfig::dense(seed)).run();
        let (min, max) = field.mean_extrema().expect("non-empty");
        println!(
            "{seed:>6} {:>12} {:>12} {:>12}",
            ms(field.grand_mean_ms()),
            format!("{} {}", ms(min.mean_ms), min.cell),
            format!("{} {}", ms(max.mean_ms), max.cell)
        );
    }

    // ------------------------------------------------------------------
    header("Ablation 3: 5G access RTT decomposition (loaded cell)");
    let mut rng = SimRng::from_seed(3);
    let cases = [
        ("full model (load .8, intf .5)", CellEnv::new(0.8, 0.5)),
        ("no interference (load .8)", CellEnv::new(0.8, 0.0)),
        ("no load (intf .5)", CellEnv::new(0.0, 0.5)),
        ("ideal", CellEnv::new(0.0, 0.0)),
    ];
    for (name, env) in cases {
        let m = FiveGAccess::new(env);
        let n = 50_000;
        let emp: f64 = (0..n).map(|_| m.sample_rtt_ms(&mut rng)).sum::<f64>() / n as f64;
        println!(
            "{name:<32} analytic {:>7} (sampled {:>7}), sigma {:>7}",
            ms(m.mean_rtt_ms()),
            ms(emp),
            ms(m.var_rtt_ms2().sqrt())
        );
    }

    // ------------------------------------------------------------------
    header("Ablation 4: fibre-route factor vs the 2544 km figure");
    let campaign = MobileCampaign::new(&scenario, CampaignConfig::default());
    let trace = campaign.table1_traceroute(0);
    let geodesic: f64 = {
        let analysis = sixg_core::detour::DetourAnalysis::from_trace(&trace);
        analysis.outbound_km / sixg_geo::route::FIBRE_ROUTE_FACTOR
    };
    println!("geodesic outbound: {geodesic:.0} km");
    for factor in [1.00, 1.05, 1.10, 1.20] {
        println!("  route factor {factor:.2} -> {:.0} km", geodesic * factor);
    }
    println!("the paper's 2544 km corresponds to the standard ~1.05 inflation.");
}
