//! E15 — Section IV-A's AR dodgeball QoE under access technologies and
//! service placements: the fraction of throws resolved on stale pose
//! data ("struck by a ball even though their physical location no longer
//! aligns").

use sixg_bench::{header, ms};
use sixg_geo::GeoPoint;
use sixg_netsim::radio::{AccessModel, CellEnv, FiveGAccess, SixGAccess, WiredAccess};
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::{AsGraph, PathComputer};
use sixg_netsim::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
use sixg_workloads::ar_game::{ArGame, ArGameConfig};
use sixg_workloads::services::Service;

fn world() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_node(NodeKind::UserEquipment, "hmd-a", GeoPoint::new(46.61, 14.28), Asn(1));
    let b = t.add_node(NodeKind::UserEquipment, "hmd-b", GeoPoint::new(46.63, 14.31), Asn(1));
    let edge = t.add_node(NodeKind::EdgeServer, "edge-klu", GeoPoint::new(46.62, 14.30), Asn(1));
    let cloud = t.add_node(NodeKind::CloudDc, "cloud-vie", GeoPoint::new(48.21, 16.37), Asn(1));
    t.add_link(a, edge, LinkParams::access_wired());
    t.add_link(b, edge, LinkParams::access_wired());
    t.add_link(edge, cloud, LinkParams { bandwidth_bps: 10e9, utilisation: 0.5, extra_ms: 1.0 });
    (t, a, b, edge, cloud)
}

fn game(host: NodeId, a: NodeId, b: NodeId) -> ArGame {
    ArGame {
        thrower: a,
        victim: b,
        video: Service::new("video-streaming", host, 2.0),
        controller: Service::new("remote-controller", host, 0.5),
        trajectory: Service::new("trajectory", host, 1.5),
        config: ArGameConfig { throws: 5000, ..Default::default() },
    }
}

fn main() {
    let (t, a, b, edge, cloud) = world();
    let g = AsGraph::new();
    let pc = PathComputer::new(&t, &g);

    let accesses: Vec<(&str, Box<dyn AccessModel>)> = vec![
        ("wired", Box::new(WiredAccess::default())),
        ("5G ideal", Box::new(FiveGAccess::ideal())),
        ("5G measured-ish", Box::new(FiveGAccess::new(CellEnv::new(0.9, 0.5)))),
        ("6G target", Box::new(SixGAccess::default())),
    ];

    header("AR dodgeball: unfair-hit ratio (20 ms pose budget)");
    println!(
        "{:<18} {:<8} {:>12} {:>14} {:>14}",
        "access", "host", "unfair", "pose age", "event latency"
    );
    for (name, access) in &accesses {
        for (host_name, host) in [("edge", edge), ("cloud", cloud)] {
            let mut rng = SimRng::from_seed(42);
            let r = game(host, a, b)
                .play(&pc, Some(access.as_ref()), Some(access.as_ref()), &mut rng)
                .expect("routable");
            println!(
                "{:<18} {:<8} {:>11.2}% {:>14} {:>14}",
                name,
                host_name,
                r.unfair_ratio() * 100.0,
                ms(r.mean_pose_age_ms),
                ms(r.mean_event_latency_ms)
            );
        }
    }
    println!(
        "\nLoaded 5G + cloud hosting reproduces the paper's failure mode; 6G at\n\
         the edge removes it (pose age well under the 20 ms budget)."
    );
}
