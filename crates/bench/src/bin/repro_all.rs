//! Runs the complete reproduction suite and prints the paper-vs-measured
//! summary table that EXPERIMENTS.md records, writing a machine-readable
//! copy to `experiments.json` in the working directory.

use sixg_bench::{header, shared_scenario, REPRO_SEED};
use sixg_core::detour::DetourAnalysis;
use sixg_core::gap::GapReport;
use sixg_core::orchestrator;
use sixg_core::requirements::campaign_reference_requirement;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::wired::{mobile_wired_factor, WiredCampaign};
use sixg_netsim::radio::phy::MmWavePhy;
use sixg_netsim::stats::Welford;

struct Row {
    experiment: String,
    artifact: String,
    paper: String,
    measured: String,
    holds: bool,
}

fn row(experiment: &str, artifact: &str, paper: &str, measured: String, holds: bool) -> Row {
    Row {
        experiment: experiment.to_string(),
        artifact: artifact.to_string(),
        paper: paper.to_string(),
        measured,
        holds,
    }
}

fn main() {
    let s = shared_scenario();
    let mut rows: Vec<Row> = Vec::new();

    header("Running dense mobile campaign (Figures 2-3)");
    let field = MobileCampaign::new(s, CampaignConfig::dense(2)).run();
    let (min, max) = field.mean_extrema().expect("non-empty");
    let (smin, smax) = field.std_extrema().expect("non-empty");
    rows.push(row(
        "E2",
        "Fig. 2 min mean",
        "61 ms @ C1",
        format!("{:.1} ms @ {}", min.mean_ms, min.cell),
        (min.mean_ms - 61.0).abs() < 2.0 && min.cell.label() == "C1",
    ));
    rows.push(row(
        "E2",
        "Fig. 2 max mean",
        "110 ms @ C3",
        format!("{:.1} ms @ {}", max.mean_ms, max.cell),
        (max.mean_ms - 110.0).abs() < 3.0 && max.cell.label() == "C3",
    ));
    rows.push(row(
        "E3",
        "Fig. 3 min sigma",
        "1.8 ms @ B3",
        format!("{:.1} ms @ {}", smin.std_ms, smin.cell),
        (smin.std_ms - 1.8).abs() < 0.6 && smin.cell.label() == "B3",
    ));
    rows.push(row(
        "E3",
        "Fig. 3 max sigma",
        "46.4 ms @ E5",
        format!("{:.1} ms @ {}", smax.std_ms, smax.cell),
        (smax.std_ms - 46.4).abs() < 4.0 && smax.cell.label() == "E5",
    ));

    header("Table I traceroute + Figure 4 detour");
    let campaign = MobileCampaign::new(s, CampaignConfig::default());
    let trace = campaign.table1_traceroute(0);
    let mut rtl = Welford::new();
    for rep in 0..500 {
        rtl.push(campaign.table1_traceroute(rep).total_rtt_ms());
    }
    let detour = DetourAnalysis::from_trace(&trace);
    rows.push(row(
        "E4",
        "Table I hop count",
        "10",
        format!("{}", trace.hop_count()),
        trace.hop_count() == 10,
    ));
    rows.push(row(
        "E4",
        "Table I RTL",
        "65 ms",
        format!("{:.1} ms", rtl.mean()),
        (rtl.mean() - 65.0).abs() < 2.0,
    ));
    rows.push(row(
        "E5",
        "Fig. 4 detour",
        "2544 km",
        format!("{:.0} km", detour.outbound_km),
        (detour.outbound_km - 2544.0).abs() < 60.0,
    ));

    header("Requirements gap (Section III vs IV)");
    let gap = GapReport::analyse(&field, &campaign_reference_requirement());
    rows.push(row(
        "E6",
        "exceedance vs 20 ms",
        "~270 %",
        format!("{:.0} %", gap.exceedance_pct),
        (gap.exceedance_pct - 270.0).abs() < 15.0,
    ));

    header("Wired baseline");
    let wired = WiredCampaign::new(s, 2).run();
    let factor = mobile_wired_factor(field.grand_mean_ms(), &wired);
    rows.push(row(
        "E7",
        "mobile/wired factor",
        "~7x",
        format!("{factor:.1}x"),
        (6.0..=8.5).contains(&factor),
    ));
    rows.push(row(
        "E7",
        "wired cloud RTT",
        "7-12 ms",
        format!("{:.1} ms", wired.cloud_mean_ms),
        (7.0..=12.0).contains(&wired.cloud_mean_ms),
    ));

    header("mmWave PHY (Fezeu)");
    let phy = MmWavePhy::calibrated();
    let f1 = phy.empirical_fraction_below(1.0, 400_000, 1);
    let f3 = phy.empirical_fraction_below(3.0, 400_000, 2);
    rows.push(row(
        "E8",
        "PHY < 1 ms",
        "4.40 %",
        format!("{:.2} %", f1 * 100.0),
        (f1 - 0.044).abs() < 0.005,
    ));
    rows.push(row(
        "E8",
        "PHY < 3 ms",
        "22.36 %",
        format!("{:.2} %", f3 * 100.0),
        (f3 - 0.2236).abs() < 0.01,
    ));

    header("Section V strategies");
    let strategies = orchestrator::evaluate_all(REPRO_SEED);
    print!("{}", orchestrator::render_reports(&strategies));
    let upf = &strategies[1];
    rows.push(row(
        "E10",
        "edge-UPF RTT",
        "5-6.2 ms",
        format!("{:.1} ms", upf.improved),
        (5.0..=6.2).contains(&upf.improved),
    ));
    rows.push(row(
        "E10",
        "UPF reduction",
        "up to 90 %",
        format!("{:.0} %", upf.reduction_pct),
        (85.0..=95.0).contains(&upf.reduction_pct),
    ));

    header("Summary: paper vs measured");
    println!("{:<5} {:<22} {:<14} {:<16} holds", "exp", "artifact", "paper", "measured");
    let mut all_hold = true;
    for r in &rows {
        all_hold &= r.holds;
        println!(
            "{:<5} {:<22} {:<14} {:<16} {}",
            r.experiment,
            r.artifact,
            r.paper,
            r.measured,
            if r.holds { "yes" } else { "NO" }
        );
    }
    println!("\nall checks hold: {all_hold}");

    let values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "experiment": r.experiment,
                "artifact": r.artifact,
                "paper": r.paper,
                "measured": r.measured,
                "holds": r.holds,
            })
        })
        .collect();
    let json = serde_json::to_string_pretty(&values).expect("rows serialise");
    std::fs::write("experiments.json", json).expect("write experiments.json");
    println!("wrote experiments.json");
}
