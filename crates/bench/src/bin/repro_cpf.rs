//! E12 — Section V-C: control-plane functionality enhancement.
//!
//! * Near-RT RIC consolidation of session & mobility management;
//! * context-aware PDR/QER rule stores vs linear tables;
//! * hybrid centralized/decentralized control vs the slot deadline.

use sixg_bench::{compare, header, ms};
use sixg_core::recommend::cpf::{
    rule_store_comparison, simulate_control, ControlMode, ControlPlaneLayout,
};
use sixg_netsim::rng::SimRng;

fn main() {
    header("Session establishment: core-hosted vs RIC-consolidated");
    let core = ControlPlaneLayout::core_hosted();
    let ric = ControlPlaneLayout::ric_consolidated();
    compare("core-hosted mean setup", "(baseline)", ms(core.mean_setup_ms()));
    compare("RIC-consolidated mean setup", "(edge decision efficiency)", ms(ric.mean_setup_ms()));
    compare(
        "reduction",
        "(consolidation benefit)",
        format!("{:.1} %", (1.0 - ric.mean_setup_ms() / core.mean_setup_ms()) * 100.0),
    );

    header("Context-aware QoS rule store (PDR/QER lookups)");
    println!("{:>10} {:>16} {:>16} {:>10}", "rules", "linear probes", "indexed probes", "speedup");
    for n_rules in [100u32, 1_000, 10_000, 100_000] {
        let (lin, ctx) = rule_store_comparison(n_rules, 1_000, 7);
        println!("{n_rules:>10} {lin:>16.1} {ctx:>16.1} {:>9.0}x", lin / ctx);
    }

    header("Per-slot scheduling vs the 0.5 ms slot deadline");
    let mut rng = SimRng::from_seed(11);
    println!("{:<14} {:>10} {:>10}", "mode", "on-time", "stale");
    for mode in [ControlMode::Centralized, ControlMode::Local, ControlMode::Hybrid] {
        let s = simulate_control(mode, 20_000, 0.5, 1.2, 0.05, 100, &mut rng);
        println!(
            "{:<14} {:>9.1}% {:>9.1}%",
            format!("{mode:?}"),
            s.on_time_ratio * 100.0,
            s.stale_ratio * 100.0
        );
    }
    println!(
        "\nThe paper: 'constraints imposed by real-time scheduling require a\n\
         hybrid approach that balances centralized and decentralized control.'"
    );
}
