//! E2 — Figure 2: "Urban Mean Round-trip Time Latency".
//!
//! Runs the dense mobile campaign and prints the per-cell mean-RTL grid,
//! checking the paper's anchors: 61 ms at C1 (minimum), 110 ms at C3
//! (maximum), 0.0 markers on non-traversed border cells, and the grand
//! mean behind the 270 % claim.

use sixg_bench::{compare, header, ms, shared_scenario};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::report::{render_grid, CampaignSummary, FieldStat};

fn main() {
    let s = shared_scenario();
    let field = MobileCampaign::new(s, CampaignConfig::dense(2)).run();

    header("Figure 2 — urban mean round-trip latency (ms)");
    println!("{}", render_grid(&field, FieldStat::Mean));

    let (min, max) = field.mean_extrema().expect("non-empty");
    compare("minimum cell mean", "61 ms @ C1", format!("{} @ {}", ms(min.mean_ms), min.cell));
    compare("maximum cell mean", "110 ms @ C3", format!("{} @ {}", ms(max.mean_ms), max.cell));
    compare("grand mean over 33 cells", "~74 ms", ms(field.grand_mean_ms()));
    compare(
        "masked cells (<10 samples)",
        9,
        field.all_stats().iter().filter(|c| c.is_masked()).count(),
    );

    let summary = CampaignSummary::from_field(&field);
    println!("\nJSON summary:\n{}", summary.to_json());
}
