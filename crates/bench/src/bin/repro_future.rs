//! E16 — Section VI future-work extensions, implemented and measured:
//! federated learning at the edge, energy-efficient management, and
//! intelligent (predictive) slicing.

use sixg_bench::{compare, header, REPRO_SEED};
use sixg_core::autoscale::{run_autoscale, ScalePolicy};
use sixg_core::energy::{evaluate_deployments, simulate_sleep, SitePower, SleepPolicy};
use sixg_netsim::radio::{CellEnv, FiveGAccess, SixGAccess};
use sixg_netsim::rng::SimRng;
use sixg_netsim::topology::NodeId;
use sixg_workloads::federated::{run_federated, FlConfig};
use sixg_workloads::services::Service;

fn main() {
    header("Federated learning at the edge (synchronous FedAvg, 5 MB model)");
    let aggregator = Service::new("fedavg-edge", NodeId(0), 50.0);
    let mut rng = SimRng::from_seed(REPRO_SEED);
    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "access / uplink", "round (s)", "comm (s)", "straggler"
    );
    let cases = [
        ("6G, 50 Mbit/s up", 50e6, 200e6, true),
        ("6G, 2 Mbit/s up", 2e6, 20e6, true),
        ("loaded 5G, 50 Mbit/s up", 50e6, 200e6, false),
    ];
    for (name, up, down, sixg) in cases {
        let cfg = FlConfig::reference(aggregator.clone(), up, down);
        let stats = if sixg {
            run_federated(&cfg, &SixGAccess::default(), &mut rng)
        } else {
            run_federated(&cfg, &FiveGAccess::new(CellEnv::new(0.9, 0.8)), &mut rng)
        };
        println!(
            "{:<26} {:>14.2} {:>14.2} {:>11.1}%",
            name,
            stats.mean_round_s,
            stats.mean_comm_s,
            stats.straggler_overhead * 100.0
        );
    }

    header("Energy per byte across deployment layouts (Table-I flow)");
    for d in evaluate_deployments(REPRO_SEED) {
        println!(
            "{:<28} {:>10.0} nJ/byte   {:>10.1} J/GB",
            d.layout, d.nj_per_byte, d.joules_per_gb
        );
    }

    header("Sleep scheduling over a diurnal day (100 sites)");
    let on = simulate_sleep(SleepPolicy::AlwaysOn, 100, SitePower::default(), 0.2, 1000.0);
    let sleep = simulate_sleep(SleepPolicy::ThresholdSleep, 100, SitePower::default(), 0.2, 1000.0);
    compare("fleet energy, always-on", "(baseline)", format!("{:.1} kWh", on.energy_kwh));
    compare(
        "fleet energy, threshold sleep",
        "(saves energy)",
        format!("{:.1} kWh (-{:.1} %)", sleep.energy_kwh, sleep.saving_pct),
    );
    compare(
        "mean wake-up penalty",
        "(bounded)",
        format!("{:.1} ms/request", sleep.mean_wake_penalty_ms),
    );

    header("Intelligent slicing: static vs predictive reservations (96 epochs)");
    let s = run_autoscale(ScalePolicy::Static, 96, 10e9, 1.1e9, 1e9, 5.0);
    let p = run_autoscale(ScalePolicy::Predictive, 96, 10e9, 1.1e9, 1e9, 5.0);
    println!(
        "{:<12} violations {:>4}   mean waste {:>7.2} Gbit/s   resizes {:>3}",
        "static",
        s.violations,
        s.mean_waste_bps / 1e9,
        s.resizes
    );
    println!(
        "{:<12} violations {:>4}   mean waste {:>7.2} Gbit/s   resizes {:>3}",
        "predictive",
        p.violations,
        p.mean_waste_bps / 1e9,
        p.resizes
    );
}
