//! `sixg-cli` — run, sweep, validate and list declarative scenario specs.
//!
//! Any `ScenarioSpec` JSON file on disk becomes a runnable, parallel,
//! deterministic measurement campaign, and any `SweepSpec` file becomes a
//! whole campaign matrix:
//!
//! ```text
//! sixg-cli run specs/klagenfurt.json          # campaign + heatmaps + gap
//! sixg-cli run specs/megacity.json --passes 2 # override the seed policy
//! sixg-cli sweep specs/sweeps/klagenfurt_cadence.json   # the E20 matrix
//! sixg-cli dispatch specs/sweeps/klagenfurt_cadence.json \
//!          --workers 127.0.0.1:7864,127.0.0.1:7865      # farm to a fleet
//! sixg-cli validate specs/*.json              # all violations, JSON paths
//! sixg-cli list [specs/]                      # inventory of spec files
//! ```
//!
//! `run` executes the spec's default campaign (its seed policy) on the
//! rayon thread pool and reports the Figure-2/3-style heatmaps, the
//! grand mean, and the requirement gap against the spec's reference
//! workload class — for `specs/klagenfurt.json` the printed grand mean and
//! exceedance are the `repro_all` numbers, to the digit. `sweep` compiles
//! the sweep's axis cross product into an ordered variant list, runs the
//! whole matrix as one interleaved work list, and prints the per-variant
//! deltas against the base spec.
//!
//! **Exit codes.** `0` success; `1` the input was reachable but wrong
//! (spec/sweep parse or validation failures, unknown workload classes,
//! output-write failures); `2` usage errors — unknown subcommand, missing
//! operand, unreadable file, malformed flag — with the usage text on
//! stderr. Scripts can therefore tell "your spec is invalid" from "you
//! called me wrong".

use sixg_core::gap::GapReport;
use sixg_core::requirements::{ApplicationClass, RequirementProfile};
use sixg_measure::dispatch::{dispatch_sweep, DispatchConfig, DispatchError};
use sixg_measure::exec::{execute, ExecReport, ExecRequest, ShardSel};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::report::{render_grid, FieldStat};
use sixg_measure::spec::{parse_backend, ScenarioSpec};
use sixg_measure::store::{merge_stores, CheckpointError};
use sixg_measure::sweep::{Sweep, SweepRun, SweepSpec};
use std::process::ExitCode;

const USAGE: &str = "\
sixg-cli — declarative scenario runner

USAGE:
    sixg-cli run <spec.json> [--passes N] [--campaign-seed S] [--seed S]
                             [--backend analytic|event] [--threads T] [--json PATH]
    sixg-cli sweep <sweep.json> [--threads T] [--json PATH]
                                [--checkpoint DIR [--shard I/N] [--interval K]
                                 [--kill-after K]]
    sixg-cli merge <sweep.json> --store DIR [--store DIR]... [--json PATH]
    sixg-cli dispatch <sweep.json> --workers A:P,B:P,... [--shards-per-worker S]
                                   [--interval K] [--json PATH]
    sixg-cli validate <spec.json>...
    sixg-cli list [dir]

SUBCOMMANDS:
    run       compile the spec and run its campaign on the thread pool
    sweep     run a SweepSpec's whole campaign matrix (axis cross product)
    merge     fold complete, disjoint shard checkpoint stores into the full
              SweepReport (bitwise identical to an unsharded run)
    dispatch  farm the sweep's run range to a fleet of sixg-serve workers as
              checkpointed shards; the merged report is bitwise identical to
              a single-machine `sixg-cli sweep`, even across worker deaths
    validate  parse + validate specs; print every violation with its JSON path
    list      inventory the spec files in a directory (default: specs/)

RUN OPTIONS:
    --passes N         override the spec's campaign passes
    --campaign-seed S  override the spec's campaign seed
    --seed S           override the scenario seed (calibration + streams)
    --backend B        execution backend: analytic (closed-form sampling,
                       default) or event (packet-level discrete-event
                       simulation with per-hop FIFO queues)
    --threads T        pin the rayon pool size (default: RAYON_NUM_THREADS)
    --json PATH        also write the campaign summary as JSON

SWEEP OPTIONS:
    --threads T        pin the rayon pool size
    --json PATH        also write the SweepReport as JSON (deterministic:
                       bitwise identical across pool sizes)
    --checkpoint DIR   spill completed variants to a resumable on-disk store
                       in DIR; lifts the in-memory variant cap, and a killed
                       run resumes bitwise-identically from the store
    --shard I/N        with --checkpoint: run only shard I of N (disjoint
                       run ranges; fold the shard stores with `merge`)
    --interval K       with --checkpoint: work items folded between
                       checkpoint commits (default 1024)
    --kill-after K     with --checkpoint: abort the process once K items
                       are folded and the cursor is committed (testing hook
                       for the kill/resume contract)

MERGE OPTIONS:
    --store DIR        a shard checkpoint store to merge (repeat per shard)
    --json PATH        also write the merged SweepReport as JSON

DISPATCH OPTIONS:
    --workers LIST     comma-separated sixg-serve addresses (host:port); the
                       run range splits into more shards than workers so a
                       dead worker's shards resume on live ones
    --shards-per-worker S
                       work-stealing granularity (default 3)
    --interval K       work items folded between streamed cursor commits on
                       each worker (default 256) — the upper bound on
                       re-folded work after a mid-shard death
    --json PATH        also write the merged SweepReport as JSON (bitwise
                       identical to `sixg-cli sweep --json`)

EXIT CODES:
    0  success
    1  validation failure (invalid spec/sweep, unknown class, write error)
    2  usage error (unknown subcommand, missing operand, unreadable file)
";

/// The CLI's two failure classes, mapped to distinct exit codes so scripts
/// can tell "you called me wrong" (usage → 2, with the usage text) from
/// "your input is invalid" (failure → 1).
enum CliError {
    /// Unknown subcommand, missing operand, unreadable file, bad flag.
    Usage(String),
    /// Parse/validation/run failures on reachable input.
    Fail(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    fn fail(msg: impl Into<String>) -> Self {
        CliError::Fail(msg.into())
    }
}

fn class_by_name(name: &str) -> Result<ApplicationClass, CliError> {
    ApplicationClass::ALL.into_iter().find(|c| format!("{c:?}") == name).ok_or_else(|| {
        let known: Vec<String> = ApplicationClass::ALL.iter().map(|c| format!("{c:?}")).collect();
        CliError::fail(format!(
            "unknown workload class {name:?} (expected one of {})",
            known.join(", ")
        ))
    })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("invalid value {v:?} for {flag}"))),
    }
}

/// First positional operand of a subcommand (flags don't count).
fn operand<'a>(args: &'a [String], what: &str) -> Result<&'a str, CliError> {
    args.first()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("missing operand: {what}")))
}

/// Reads a file, classifying "not there / not readable" as a usage error
/// (exit 2) — distinct from "there but invalid" (exit 1).
fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read file {path}: {e}")))
}

fn load_spec(path: &str) -> Result<ScenarioSpec, CliError> {
    let text = read_file(path)?;
    ScenarioSpec::from_json(&text).map_err(|e| CliError::fail(format!("{path}: {e}")))
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let path = operand(args, "run needs a spec file")?;
    let mut spec = load_spec(path)?;

    let errors = spec.validate();
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        return Err(CliError::fail(format!("{path}: {} validation error(s)", errors.len())));
    }

    if let Some(seed) = parse_flag::<u64>(args, "--seed")? {
        spec.seed = seed;
    }
    if let Some(passes) = parse_flag::<u32>(args, "--passes")? {
        spec.campaign.passes = passes;
    }
    if let Some(seed) = parse_flag::<u64>(args, "--campaign-seed")? {
        spec.campaign.seed = seed;
    }
    // A malformed --backend value is a usage error (exit 2, like any bad
    // flag); the spec's own backend tag was already checked by validate()
    // above, so this parse cannot fail for spec-borne values.
    if let Some(flag) = flag_value(args, "--backend") {
        parse_backend(flag).map_err(CliError::Usage)?;
        spec.backend = flag.to_string();
    }
    let threads = parse_flag::<usize>(args, "--threads")?;

    // The spec's reference class must resolve before the campaign runs.
    let reference = class_by_name(&spec.workloads.reference_class)?;
    let mix: Vec<(ApplicationClass, f64)> = spec
        .workloads
        .mix
        .iter()
        .map(|w| class_by_name(&w.class).map(|c| (c, w.share)))
        .collect::<Result<_, _>>()?;

    println!("=== scenario: {} ===", spec.name);
    if !spec.description.is_empty() {
        println!("{}", spec.description);
    }

    // One facade request — the CLI is a thin client of the same `execute`
    // entry point `sixg-serve` exposes over the wire, so the run (and the
    // `--json` payload below) is byte-for-byte what a daemon client gets.
    let hops = spec.hops.len();
    let mut request = ExecRequest::run(spec);
    request.requirement_ms = Some(reference.profile().max_rtl_ms);
    let report = match threads {
        Some(t) => with_thread_count(t, || execute(&request)),
        None => execute(&request),
    }
    .map_err(|e| CliError::fail(format!("{path}: {e}")))?;
    let ExecReport::Run(out) = report else { unreachable!("a run request yields a run report") };
    let (field, summary) = (&out.field, &out.report);

    println!(
        "\ngrid {}×{} ({} cells, {} traversed) · {} hops · {} peers · seed {:#x}",
        out.scenario.grid.cols,
        out.scenario.grid.rows,
        out.scenario.grid.len(),
        out.scenario.included.len(),
        hops,
        out.scenario.peers.len(),
        out.scenario.seed,
    );
    println!(
        "campaign: {} passes, seed {}, {:.1} s cadence, {} backend",
        summary.passes, summary.seed, summary.sample_interval_s, summary.backend
    );

    println!("\n--- mean RTL heatmap (ms, 0.0 = not traversed) ---");
    print!("{}", render_grid(field, FieldStat::Mean));
    println!("--- σ heatmap (ms) ---");
    print!("{}", render_grid(field, FieldStat::StdDev));

    println!("--- campaign summary ---");
    println!("samples:      {}", summary.total_samples);
    println!("grand mean:   {:.4} ms", summary.grand_mean_ms);
    println!("mean range:   {:.4} .. {:.4} ms", summary.mean_min_ms, summary.mean_max_ms);
    println!("sigma range:  {:.4} .. {:.4} ms", summary.std_min_ms, summary.std_max_ms);

    let gap = GapReport::analyse(field, &reference.profile());
    println!("\n--- requirement gap vs {reference:?} ({} ms) ---", gap.requirement_ms);
    println!("exceedance:      {:.4} %", gap.exceedance_pct);
    println!("best cell:       {:.4} %", gap.best_cell_exceedance_pct);
    println!("compliant cells: {}/{}", gap.compliant_cells, gap.reported_cells);

    println!("\n--- workload mix ---");
    println!("{:<22} {:>7} {:>10} {:>12}", "class", "share", "req (ms)", "exceedance");
    for (class, share) in &mix {
        let profile: RequirementProfile = class.profile();
        let exceedance = (summary.grand_mean_ms - profile.max_rtl_ms) / profile.max_rtl_ms * 100.0;
        println!(
            "{:<22} {:>6.0}% {:>10.1} {:>11.1}%",
            format!("{class:?}"),
            share * 100.0,
            profile.max_rtl_ms,
            exceedance
        );
    }

    if let Some(path_out) = flag_value(args, "--json") {
        // The facade's canonical rendering: identical bytes whether the
        // request ran here, via `execute()` in-process, or over the wire.
        std::fs::write(path_out, summary.to_json())
            .map_err(|e| CliError::fail(format!("cannot write {path_out}: {e}")))?;
        println!("\nwrote {path_out}");
    }
    Ok(())
}

/// Every `--flag`'s value, in order (for repeatable flags like `--store`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Parses `--shard I/N` (shard index / shard count).
fn parse_shard(value: &str) -> Result<(u32, u32), CliError> {
    let parsed = value.split_once('/').and_then(|(i, n)| {
        let i: u32 = i.parse().ok()?;
        let n: u32 = n.parse().ok()?;
        (n >= 1 && i < n).then_some((i, n))
    });
    parsed.ok_or_else(|| {
        CliError::usage(format!("invalid value {value:?} for --shard (expected I/N with I < N)"))
    })
}

/// Maps a checkpoint failure onto the CLI's exit-code contract: both a
/// broken sweep and a broken store are reachable-but-invalid input (1).
fn checkpoint_err(path: &str, e: CheckpointError) -> CliError {
    match e {
        CheckpointError::Spec(e) => CliError::fail(format!("{path}: {e}")),
        // StoreError displays as "<store path>: <message>" already.
        CheckpointError::Store(e) => CliError::fail(e.to_string()),
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let path = operand(args, "sweep needs a sweep file")?;
    // One read: an unreadable sweep file is a usage error (exit 2), while
    // everything past it — sweep parse, base resolution relative to the
    // sweep file's directory, validation — is a content failure (exit 1).
    let text = read_file(path)?;
    let dir = std::path::Path::new(path).parent().unwrap_or(std::path::Path::new("."));
    let threads = parse_flag::<usize>(args, "--threads")?;
    let checkpoint = flag_value(args, "--checkpoint");
    let shard = flag_value(args, "--shard").map(parse_shard).transpose()?;
    let interval = parse_flag::<usize>(args, "--interval")?;
    let kill_after = parse_flag::<u64>(args, "--kill-after")?;
    if checkpoint.is_none() {
        for (flag, present) in [
            ("--shard", shard.is_some()),
            ("--interval", interval.is_some()),
            ("--kill-after", kill_after.is_some()),
        ] {
            if present {
                return Err(CliError::usage(format!("{flag} requires --checkpoint")));
            }
        }
    }
    if interval == Some(0) {
        return Err(CliError::usage("invalid value \"0\" for --interval (must be at least 1)"));
    }

    // The CLI resolves the sweep's filesystem references (the wire has no
    // filesystem), then hands one facade request to the same `execute`
    // entry point `sixg-serve` serves remotely. An unreadable base spec is
    // reachable-but-broken content (exit 1), like every other document
    // failure past the initial sweep-file read.
    let sweep_spec =
        SweepSpec::from_json(&text).map_err(|e| CliError::fail(format!("{path}: {e}")))?;
    let base_path = dir.join(&sweep_spec.base);
    let base_text = std::fs::read_to_string(&base_path).map_err(|e| {
        CliError::fail(format!(
            "{path}: $.base: cannot read base spec {}: {e}",
            base_path.display()
        ))
    })?;
    let base_value = serde_json::from_str(&base_text)
        .map_err(|e| CliError::fail(format!("{path}: $: base spec is invalid JSON: {e}")))?;

    println!("=== sweep: {} ===", sweep_spec.name);
    if !sweep_spec.description.is_empty() {
        println!("{}", sweep_spec.description);
    }
    println!(
        "base {} · {} axes · {} variants · requirement {} ms",
        sweep_spec.base,
        sweep_spec.axes.len(),
        sweep_spec.variant_count(),
        sweep_spec.requirement_ms
    );
    let (shard_index, shard_count) = shard.unwrap_or((0, 1));
    if let Some(store_dir) = checkpoint {
        println!("checkpoint store: {store_dir} (shard {shard_index}/{shard_count})");
    }

    let mut request = ExecRequest::sweep(sweep_spec, base_value);
    request.checkpoint = checkpoint.map(str::to_string);
    request.shard = shard.map(|(index, count)| ShardSel { index, count });
    request.interval = interval;
    request.stop_after_items = kill_after;

    let report = match threads {
        Some(t) => with_thread_count(t, || execute(&request)),
        None => execute(&request),
    }
    .map_err(|e| CliError::fail(format!("{path}: {e}")))?;
    match report {
        ExecReport::Sweep(run) => report_sweep_run(path, &run, args),
        ExecReport::ShardComplete { shard_index, shard_count, done_items } => {
            let store_dir = checkpoint.expect("sharding requires --checkpoint");
            println!(
                "shard {shard_index}/{shard_count} complete: {done_items} items spilled to \
                 {store_dir} — fold the shards with `sixg-cli merge`"
            );
            Ok(())
        }
        ExecReport::Interrupted { done_items, total_items } => {
            // The testing hook behaves like a real kill: the cursor is
            // committed, then the process dies without an exit status a
            // script could mistake for success.
            let store_dir = checkpoint.expect("--kill-after requires --checkpoint");
            eprintln!(
                "sixg-cli: killed at checkpoint cursor {done_items}/{total_items} \
                 (--kill-after) — rerun with --checkpoint {store_dir} to resume"
            );
            std::process::abort();
        }
        ExecReport::Valid { .. } | ExecReport::Run(_) => {
            unreachable!("a sweep request yields a sweep outcome")
        }
    }
}

fn cmd_merge(args: &[String]) -> Result<(), CliError> {
    let path = operand(args, "merge needs a sweep file")?;
    let text = read_file(path)?;
    let dir = std::path::Path::new(path).parent().unwrap_or(std::path::Path::new("."));
    let stores = flag_values(args, "--store");
    if stores.is_empty() {
        return Err(CliError::usage("merge needs at least one --store DIR"));
    }
    // Mega-sweeps beyond the in-memory cap are exactly what sharded stores
    // are for, so merge loads the sweep uncapped.
    let sweep = Sweep::from_json_in_dir_unbounded(&text, dir)
        .map_err(|e| CliError::fail(format!("{path}: {e}")))?;

    println!("=== merge: {} ===", sweep.spec.name);
    println!(
        "base {} · {} variants · {} shard store(s)",
        sweep.base.name,
        sweep.spec.variant_count(),
        stores.len()
    );
    let run = merge_stores(&sweep, &stores).map_err(|e| checkpoint_err(path, e))?;
    report_sweep_run(path, &run, args)
}

fn cmd_dispatch(args: &[String]) -> Result<(), CliError> {
    let path = operand(args, "dispatch needs a sweep file")?;
    let text = read_file(path)?;
    let dir = std::path::Path::new(path).parent().unwrap_or(std::path::Path::new("."));
    let workers: Vec<String> = flag_value(args, "--workers")
        .ok_or_else(|| CliError::usage("dispatch needs --workers A:P,B:P,..."))?
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect();
    if workers.is_empty() {
        return Err(CliError::usage("--workers needs at least one host:port address"));
    }
    // Shards spill to the workers' stores, never coordinator memory, so the
    // sweep loads uncapped — same policy as `merge`.
    let sweep = Sweep::from_json_in_dir_unbounded(&text, dir)
        .map_err(|e| CliError::fail(format!("{path}: {e}")))?;

    let mut cfg = DispatchConfig::new(workers);
    if let Some(s) = parse_flag::<u32>(args, "--shards-per-worker")? {
        if s == 0 {
            return Err(CliError::usage(
                "invalid value \"0\" for --shards-per-worker (must be at least 1)",
            ));
        }
        cfg.shards_per_worker = s;
    }
    if let Some(k) = parse_flag::<usize>(args, "--interval")? {
        if k == 0 {
            return Err(CliError::usage("invalid value \"0\" for --interval (must be at least 1)"));
        }
        cfg.interval = k;
    }

    println!("=== dispatch: {} ===", sweep.spec.name);
    println!(
        "base {} · {} variants · {} worker(s) · {} shard(s) target",
        sweep.base.name,
        sweep.spec.variant_count(),
        cfg.workers.len(),
        cfg.workers.len() as u32 * cfg.shards_per_worker,
    );

    let dispatched = dispatch_sweep(&sweep, &cfg).map_err(|e| match e {
        // An invalid sweep is the input's fault; a dead fleet or a
        // protocol-fatal worker is still a reachable-but-failed run —
        // both land on exit 1, with the fleet log on stderr.
        DispatchError::Spec(err) => CliError::fail(format!("{path}: {err}")),
        other => CliError::fail(other.to_string()),
    })?;
    let stats = &dispatched.stats;
    println!(
        "fleet: {} shard(s) over {} worker(s) — {} assignment(s), {} reassignment(s) \
         ({} resumed mid-shard), {} reconnect(s)",
        stats.shard_count,
        stats.workers,
        stats.assignments,
        stats.reassignments,
        stats.resumed_shards,
        stats.reconnects,
    );
    for dead in &stats.dead_workers {
        eprintln!("sixg-cli: worker {dead} died; its shards were reassigned");
    }
    report_sweep_run(path, &dispatched.run, args)
}

/// Prints the per-variant table, cross-validation verdict and optional
/// `--json` report for an executed sweep — shared by `sweep` (in-memory
/// and checkpointed) and `merge`, so all three surface identical output
/// for identical accumulator state.
fn report_sweep_run(path: &str, run: &SweepRun, args: &[String]) -> Result<(), CliError> {
    let report = &run.report;

    println!(
        "\n{:<58} {:>8} {:>9} {:>10} {:>9} {:>10}",
        "variant", "backend", "samples", "mean (ms)", "Δ (ms)", "exceed (%)"
    );
    let row = |v: &sixg_measure::sweep::VariantReport| {
        println!(
            "{:<58} {:>8} {:>9} {:>10.4} {:>+9.4} {:>10.2}",
            v.label,
            v.backend,
            v.total_samples,
            v.grand_mean_ms,
            v.delta_grand_mean_ms,
            v.exceedance_pct
        );
    };
    row(&report.base);
    for v in &report.variants {
        row(v);
    }

    let violations = run.crossval_violations();
    if violations.is_empty() {
        println!("\ncross-validation: every analytic/event pair agrees within tolerance");
    } else {
        for v in &violations {
            eprintln!("cross-validation violation: {v}");
        }
    }

    if let Some(out) = flag_value(args, "--json") {
        std::fs::write(out, report.to_json())
            .map_err(|e| CliError::fail(format!("cannot write {out}: {e}")))?;
        println!("wrote {out}");
    }

    // A failed cross-validation is a failed sweep: the matrix ran, the
    // backends disagree — exit 1 so pipelines gating on this command
    // cannot stay green on a real divergence (the report is still
    // printed and written above for diagnosis).
    if !violations.is_empty() {
        return Err(CliError::fail(format!(
            "{path}: {} cross-validation violation(s) — backends disagree",
            violations.len()
        )));
    }
    Ok(())
}

fn cmd_validate(paths: &[String]) -> Result<(), CliError> {
    if paths.is_empty() {
        return Err(CliError::usage("validate needs at least one spec file"));
    }
    // The whole batch is always validated: an unreadable entry must not
    // mask validation results for the files after it. Unreadable files
    // dominate the final classification (usage, exit 2) over invalid
    // ones (exit 1).
    let mut bad = 0usize;
    let mut unreadable = 0usize;
    for path in paths {
        match load_spec(path) {
            Err(CliError::Usage(e)) => {
                unreadable += 1;
                eprintln!("INVALID {e}");
            }
            Err(CliError::Fail(e)) => {
                bad += 1;
                eprintln!("INVALID {e}");
            }
            Ok(spec) => {
                let errors = spec.validate();
                if errors.is_empty() {
                    println!(
                        "ok      {path}: {} ({}×{} grid, {} hops, {} links)",
                        spec.name,
                        spec.grid.cols,
                        spec.grid.rows,
                        spec.hops.len(),
                        spec.links.len()
                    );
                } else {
                    bad += 1;
                    for e in &errors {
                        eprintln!("INVALID {path}: {e}");
                    }
                }
            }
        }
    }
    if unreadable > 0 {
        return Err(CliError::usage(format!(
            "{unreadable} of {} spec file(s) unreadable ({bad} invalid)",
            paths.len()
        )));
    }
    if bad > 0 {
        return Err(CliError::fail(format!("{bad} of {} spec file(s) invalid", paths.len())));
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    let dir = args.first().map(String::as_str).unwrap_or("specs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| CliError::usage(format!("cannot read directory {dir}: {e}")))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(CliError::fail(format!("no spec files (*.json) in {dir}")));
    }
    println!(
        "{:<28} {:>7} {:>7} {:>6} {:>6}  description",
        "file", "grid", "cells", "hops", "peers"
    );
    for path in entries {
        let shown = path.display();
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| ScenarioSpec::from_json(&t).map_err(|e| e.to_string()))
        {
            Ok(spec) => {
                let mut description = spec.description.clone();
                if description.len() > 60 {
                    description.truncate(57);
                    description.push_str("...");
                }
                println!(
                    "{:<28} {:>7} {:>7} {:>6} {:>6}  {description}",
                    shown.to_string(),
                    format!("{}×{}", spec.grid.cols, spec.grid.rows),
                    spec.grid.cols as usize * spec.grid.rows as usize,
                    spec.hops.len(),
                    spec.peers.cells.len(),
                );
            }
            Err(e) => println!("{:<28} UNPARSEABLE: {e}", shown.to_string()),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("dispatch") => cmd_dispatch(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        None => Err(CliError::usage("missing subcommand")),
        Some(other) => Err(CliError::usage(format!("unknown subcommand {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Fail(e)) => {
            eprintln!("sixg-cli: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("sixg-cli: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
