//! `sixg-cli` — run, validate and list declarative scenario specs.
//!
//! Any `ScenarioSpec` JSON file on disk becomes a runnable, parallel,
//! deterministic measurement campaign:
//!
//! ```text
//! sixg-cli run specs/klagenfurt.json          # campaign + heatmaps + gap
//! sixg-cli run specs/megacity.json --passes 2 # override the seed policy
//! sixg-cli validate specs/*.json              # all violations, JSON paths
//! sixg-cli list [specs/]                      # inventory of spec files
//! ```
//!
//! `run` executes the spec's default campaign (its seed policy) on the
//! rayon thread pool and reports the Figure-2/3-style heatmaps, the
//! grand mean, and the requirement gap against the spec's reference
//! workload class — for `specs/klagenfurt.json` the printed grand mean and
//! exceedance are the `repro_all` numbers, to the digit.

use sixg_core::gap::GapReport;
use sixg_core::requirements::{ApplicationClass, RequirementProfile};
use sixg_measure::campaign::CampaignConfig;
use sixg_measure::parallel::{run_backend, with_thread_count};
use sixg_measure::report::{render_grid, CampaignSummary, FieldStat};
use sixg_measure::scenario::Scenario;
use sixg_measure::spec::{parse_backend, ScenarioSpec};
use std::process::ExitCode;

const USAGE: &str = "\
sixg-cli — declarative scenario runner

USAGE:
    sixg-cli run <spec.json> [--passes N] [--campaign-seed S] [--seed S]
                             [--backend analytic|event] [--threads T] [--json PATH]
    sixg-cli validate <spec.json>...
    sixg-cli list [dir]

SUBCOMMANDS:
    run       compile the spec and run its campaign on the thread pool
    validate  parse + validate specs; print every violation with its JSON path
    list      inventory the spec files in a directory (default: specs/)

RUN OPTIONS:
    --passes N         override the spec's campaign passes
    --campaign-seed S  override the spec's campaign seed
    --seed S           override the scenario seed (calibration + streams)
    --backend B        execution backend: analytic (closed-form sampling,
                       default) or event (packet-level discrete-event
                       simulation with per-hop FIFO queues)
    --threads T        pin the rayon pool size (default: RAYON_NUM_THREADS)
    --json PATH        also write the campaign summary as JSON
";

fn class_by_name(name: &str) -> Result<ApplicationClass, String> {
    ApplicationClass::ALL.into_iter().find(|c| format!("{c:?}") == name).ok_or_else(|| {
        let known: Vec<String> = ApplicationClass::ALL.iter().map(|c| format!("{c:?}")).collect();
        format!("unknown workload class {name:?} (expected one of {})", known.join(", "))
    })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value {v:?} for {flag}")),
    }
}

fn load_spec(path: &str) -> Result<ScenarioSpec, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec file {path}: {e}"))?;
    let spec = ScenarioSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(spec)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().filter(|a| !a.starts_with("--")).ok_or("run needs a spec file")?;
    let mut spec = load_spec(path)?;

    let errors = spec.validate();
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        return Err(format!("{path}: {} validation error(s)", errors.len()));
    }

    if let Some(seed) = parse_flag::<u64>(args, "--seed")? {
        spec.seed = seed;
    }
    if let Some(passes) = parse_flag::<u32>(args, "--passes")? {
        spec.campaign.passes = passes;
    }
    if let Some(seed) = parse_flag::<u64>(args, "--campaign-seed")? {
        spec.campaign.seed = seed;
    }
    if let Some(backend) = flag_value(args, "--backend") {
        spec.backend = backend.to_string();
    }
    let backend = parse_backend(&spec.backend)?;
    let threads = parse_flag::<usize>(args, "--threads")?;

    // The spec's reference class must resolve before the campaign runs.
    let reference = class_by_name(&spec.workloads.reference_class)?;
    let mix: Vec<(ApplicationClass, f64)> = spec
        .workloads
        .mix
        .iter()
        .map(|w| class_by_name(&w.class).map(|c| (c, w.share)))
        .collect::<Result<_, _>>()?;

    println!("=== scenario: {} ===", spec.name);
    if !spec.description.is_empty() {
        println!("{}", spec.description);
    }
    let scenario = Scenario::from_spec(&spec).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "\ngrid {}×{} ({} cells, {} traversed) · {} hops · {} peers · seed {:#x}",
        scenario.grid.cols,
        scenario.grid.rows,
        scenario.grid.len(),
        scenario.included.len(),
        spec.hops.len(),
        scenario.peers.len(),
        scenario.seed,
    );

    let config = CampaignConfig {
        seed: spec.campaign.seed,
        sample_interval_s: spec.campaign.sample_interval_s,
        passes: spec.campaign.passes,
    };
    println!(
        "campaign: {} passes, seed {}, {:.1} s cadence, {backend} backend",
        config.passes, config.seed, config.sample_interval_s
    );

    let field = match threads {
        Some(t) => with_thread_count(t, || run_backend(&scenario, config, backend)),
        None => run_backend(&scenario, config, backend),
    };

    println!("\n--- mean RTL heatmap (ms, 0.0 = not traversed) ---");
    print!("{}", render_grid(&field, FieldStat::Mean));
    println!("--- σ heatmap (ms) ---");
    print!("{}", render_grid(&field, FieldStat::StdDev));

    let summary = CampaignSummary::from_field(&field);
    println!("--- campaign summary ---");
    println!("samples:      {}", summary.total_samples);
    println!("grand mean:   {:.4} ms", summary.grand_mean_ms);
    println!("mean range:   {:.4} .. {:.4} ms", summary.mean_min_ms, summary.mean_max_ms);
    println!("sigma range:  {:.4} .. {:.4} ms", summary.std_min_ms, summary.std_max_ms);

    let gap = GapReport::analyse(&field, &reference.profile());
    println!("\n--- requirement gap vs {reference:?} ({} ms) ---", gap.requirement_ms);
    println!("exceedance:      {:.4} %", gap.exceedance_pct);
    println!("best cell:       {:.4} %", gap.best_cell_exceedance_pct);
    println!("compliant cells: {}/{}", gap.compliant_cells, gap.reported_cells);

    println!("\n--- workload mix ---");
    println!("{:<22} {:>7} {:>10} {:>12}", "class", "share", "req (ms)", "exceedance");
    for (class, share) in &mix {
        let profile: RequirementProfile = class.profile();
        let exceedance = (summary.grand_mean_ms - profile.max_rtl_ms) / profile.max_rtl_ms * 100.0;
        println!(
            "{:<22} {:>6.0}% {:>10.1} {:>11.1}%",
            format!("{class:?}"),
            share * 100.0,
            profile.max_rtl_ms,
            exceedance
        );
    }

    if let Some(out) = flag_value(args, "--json") {
        let mut doc = serde_json::to_value(&summary);
        if let serde_json::Value::Object(pairs) = &mut doc {
            pairs.push(("scenario".into(), serde_json::Value::String(spec.name.clone())));
            pairs.push(("backend".into(), serde_json::Value::String(backend.to_string())));
            pairs.push(("requirement_ms".into(), serde_json::Value::F64(gap.requirement_ms)));
            pairs.push(("exceedance_pct".into(), serde_json::Value::F64(gap.exceedance_pct)));
        }
        let text = serde_json::to_string_pretty(&doc).expect("summary serialises");
        std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("\nwrote {out}");
    }
    Ok(())
}

fn cmd_validate(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err("validate needs at least one spec file".into());
    }
    let mut bad = 0usize;
    for path in paths {
        match load_spec(path) {
            Err(e) => {
                bad += 1;
                eprintln!("INVALID {e}");
            }
            Ok(spec) => {
                let errors = spec.validate();
                if errors.is_empty() {
                    println!(
                        "ok      {path}: {} ({}×{} grid, {} hops, {} links)",
                        spec.name,
                        spec.grid.cols,
                        spec.grid.rows,
                        spec.hops.len(),
                        spec.links.len()
                    );
                } else {
                    bad += 1;
                    for e in &errors {
                        eprintln!("INVALID {path}: {e}");
                    }
                }
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} spec file(s) invalid", paths.len()));
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let dir = args.first().map(String::as_str).unwrap_or("specs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no spec files (*.json) in {dir}"));
    }
    println!(
        "{:<28} {:>7} {:>7} {:>6} {:>6}  description",
        "file", "grid", "cells", "hops", "peers"
    );
    for path in entries {
        let shown = path.display();
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| ScenarioSpec::from_json(&t).map_err(|e| e.to_string()))
        {
            Ok(spec) => {
                let mut description = spec.description.clone();
                if description.len() > 60 {
                    description.truncate(57);
                    description.push_str("...");
                }
                println!(
                    "{:<28} {:>7} {:>7} {:>6} {:>6}  {description}",
                    shown.to_string(),
                    format!("{}×{}", spec.grid.cols, spec.grid.rows),
                    spec.grid.cols as usize * spec.grid.rows as usize,
                    spec.hops.len(),
                    spec.peers.cells.len(),
                );
            }
            Err(e) => println!("{:<28} UNPARSEABLE: {e}", shown.to_string()),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sixg-cli: {e}");
            ExitCode::from(2)
        }
    }
}
