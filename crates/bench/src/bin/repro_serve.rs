//! E24 — the `sixg-serve` load-test gate: determinism under concurrency.
//!
//! Sends the committed cadence sweep to a `sixg-serve` daemon from several
//! concurrent clients and **gates** on the wire contract: every `REPORT`
//! payload, from every client, on every repeat (cold cache and warm), must
//! be byte-identical to the offline in-process [`execute`] of the same
//! request. Any divergence — from concurrent load, scenario-cache state,
//! or frame handling — exits non-zero so CI can gate on it.
//!
//! ```text
//! repro_serve [--addr HOST:PORT] [--clients N] [--requests M]
//!             [--json PATH] [--payload-out PATH] [SWEEP_FILE]
//! ```
//!
//! * `--addr` — an already-running daemon; without it the binary
//!   self-hosts an in-process server on an ephemeral port;
//! * `--clients` — concurrent connections (default 4);
//! * `--requests` — requests per client (default 2, so every client sees
//!   both a cold/contended cache and a warm one);
//! * `--json` — write `BENCH_serve.json` (client count, payload size,
//!   wall-clock latency percentiles — timing, so **not** byte-stable);
//! * `--payload-out` — write the verified wire payload, for `cmp` against
//!   the offline `sixg-cli sweep --json` artifact.

use sixg_bench::serve::Server;
use sixg_bench::serve_client::RetryingClient;
use sixg_bench::{compare, header};
use sixg_measure::exec::{execute, ExecReport, ExecRequest};
use sixg_measure::sweep::SweepSpec;
use std::path::Path;
use std::time::Instant;

/// The committed sweep file, resolved from the crate root so the binary
/// works from any working directory.
const SWEEP_FILE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/sweeps/klagenfurt_cadence.json");

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_serve: invalid value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

/// Builds the sweep request exactly the way `sixg-cli sweep` does: parse
/// the sweep file, read its base spec relative to the sweep's directory.
fn load_request(path: &str) -> ExecRequest {
    let die = |msg: String| -> ! {
        eprintln!("repro_serve: {msg}");
        std::process::exit(2);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
    let sweep = SweepSpec::from_json(&text)
        .unwrap_or_else(|e| die(format!("{path}: invalid sweep spec: {e}")));
    let dir = Path::new(path).parent().unwrap_or_else(|| Path::new("."));
    let base_path = dir.join(&sweep.base);
    let base_text = std::fs::read_to_string(&base_path)
        .unwrap_or_else(|e| die(format!("cannot read base spec {}: {e}", base_path.display())));
    let base = serde_json::from_str(&base_text)
        .unwrap_or_else(|e| die(format!("{}: invalid JSON: {e}", base_path.display())));
    ExecRequest::sweep(sweep, base)
}

/// One client thread's yield: verified payloads, per-request latencies,
/// and how often the retrying client had to reconnect.
type ClientYield = (Vec<Vec<u8>>, Vec<f64>, u64);

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = parsed(&args, "--clients", 4);
    let requests: usize = parsed(&args, "--requests", 2);
    let json = flag_value(&args, "--json").map(str::to_string);
    let payload_out = flag_value(&args, "--payload-out").map(str::to_string);
    let addr_flag = flag_value(&args, "--addr").map(str::to_string);
    let sweep_file = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some("--addr" | "--clients" | "--requests" | "--json" | "--payload-out")
                )
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or(SWEEP_FILE);
    if clients == 0 || requests == 0 {
        eprintln!("repro_serve: --clients and --requests must be at least 1");
        std::process::exit(2);
    }

    header("E24 — sixg-serve wire determinism under concurrent load");
    let request = load_request(sweep_file);
    let request_json = request.to_json();
    let variant_count =
        request.sweep.as_ref().map(SweepSpec::variant_count).expect("sweep request");

    // The offline anchor: the same request through the in-process facade.
    // Every wire payload must reproduce these bytes exactly.
    let offline = match execute(&request) {
        Ok(report @ ExecReport::Sweep(_)) => report.to_json(),
        Ok(_) => unreachable!("a sweep request yields a sweep report"),
        Err(e) => {
            eprintln!("repro_serve: offline execution failed: {e}");
            std::process::exit(2);
        }
    };

    // Self-host unless pointed at a running daemon.
    let addr = match &addr_flag {
        Some(a) => a.clone(),
        None => {
            let server = Server::bind("127.0.0.1:0", 8, None).unwrap_or_else(|e| {
                eprintln!("repro_serve: cannot bind the in-process server: {e}");
                std::process::exit(2);
            });
            let addr = server.local_addr().expect("bound").to_string();
            std::thread::spawn(move || server.run());
            addr
        }
    };
    compare("daemon", addr_flag.as_deref().unwrap_or("(in-process)"), &addr);
    compare("clients × requests", format!("{clients} × {requests}"), clients * requests);
    compare("sweep variants", "18", variant_count);

    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let request_json = request_json.clone();
            std::thread::spawn(move || -> Result<ClientYield, String> {
                // Retrying client: a connection dropped mid-response (a
                // worker restart) reconnects and replays instead of
                // aborting the gate — only protocol violations (malformed
                // frames) fail fast. Replays are safe: the report bytes
                // for a request are deterministic.
                let mut client = RetryingClient::new(&addr);
                let mut payloads = Vec::new();
                let mut latencies_ms = Vec::new();
                for r in 0..requests {
                    let t = Instant::now();
                    let response = client
                        .request(&request_json)
                        .map_err(|e| format!("client {c} request {r}: {e}"))?;
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    let payload = response
                        .outcome
                        .map_err(|e| format!("client {c} request {r}: server error: {e}"))?;
                    // Base + every variant streams before the terminal report.
                    let streamed = response.variants.len();
                    if streamed != variant_count + 1 {
                        return Err(format!(
                            "client {c} request {r}: {streamed} VARIANT frames, \
                             expected {}",
                            variant_count + 1
                        ));
                    }
                    payloads.push(payload);
                }
                Ok((payloads, latencies_ms, client.reconnects()))
            })
        })
        .collect();

    let mut mismatches = 0usize;
    let mut reconnects = 0u64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for worker in workers {
        match worker.join().expect("client thread") {
            Ok((payloads, lats, recons)) => {
                latencies_ms.extend(lats);
                reconnects += recons;
                for payload in payloads {
                    if payload != offline.as_bytes() {
                        mismatches += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("repro_serve: {e}");
                std::process::exit(1);
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p90, p99, max) = (
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 90.0),
        percentile(&latencies_ms, 99.0),
        latencies_ms[latencies_ms.len() - 1],
    );
    println!(
        "\n{} requests over {} clients in {wall_s:.3} s wall — latency p50 {p50:.1} ms, \
         p90 {p90:.1} ms, p99 {p99:.1} ms, max {max:.1} ms",
        clients * requests,
        clients
    );
    compare("payload bytes", offline.len(), offline.len());
    compare("byte-identical payloads", clients * requests, clients * requests - mismatches);
    if reconnects > 0 {
        println!("note: {reconnects} reconnect(s) — transient drops retried, payloads verified");
    }

    if let Some(out) = &payload_out {
        std::fs::write(out, &offline).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out} (the verified wire payload)");
    }
    if let Some(out) = &json {
        // Timing record for the BENCH_* trajectory. Latencies are wall
        // clock, so unlike the payload this artifact is not byte-stable.
        let record = format!(
            "{{\n  \"experiment\": \"serve_load\",\n  \"sweep\": {:?},\n  \
             \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
             \"variant_count\": {variant_count},\n  \"payload_bytes\": {},\n  \
             \"byte_identical\": {},\n  \"wall_s\": {wall_s:.6},\n  \
             \"latency_ms\": {{ \"p50\": {p50:.3}, \"p90\": {p90:.3}, \
             \"p99\": {p99:.3}, \"max\": {max:.3} }}\n}}\n",
            Path::new(sweep_file).file_name().and_then(|n| n.to_str()).unwrap_or(sweep_file),
            offline.len(),
            mismatches == 0,
        );
        std::fs::write(out, record).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out}");
    }

    if mismatches > 0 {
        eprintln!(
            "repro_serve: {mismatches} wire payload(s) diverged from the offline \
             execution — the determinism contract is broken"
        );
        std::process::exit(1);
    }
}
