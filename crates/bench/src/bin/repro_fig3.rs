//! E3 — Figure 3: "Standard Deviation Latency".
//!
//! Same campaign as Figure 2, reporting the per-cell standard deviation
//! with its paper anchors: 1.8 ms at B3 (minimum), 46.4 ms at E5
//! (maximum).

use sixg_bench::{compare, header, ms, shared_scenario};
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::report::{render_grid, FieldStat};

fn main() {
    let s = shared_scenario();
    let field = MobileCampaign::new(s, CampaignConfig::dense(2)).run();

    header("Figure 3 — per-cell RTL standard deviation (ms)");
    println!("{}", render_grid(&field, FieldStat::StdDev));

    let (min, max) = field.std_extrema().expect("non-empty");
    compare("minimum cell σ", "1.8 ms @ B3", format!("{} @ {}", ms(min.std_ms), min.cell));
    compare("maximum cell σ", "46.4 ms @ E5", format!("{} @ {}", ms(max.std_ms), max.cell));
    println!(
        "\nThe paper: 'large variance highlights significant inter-cell and\n\
         intra-cell latency differences, considerably higher than static nodes.'"
    );
}
