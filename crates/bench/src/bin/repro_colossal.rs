//! E25 — colossal: the continental mega-grid columnar-pipeline gate.
//!
//! Runs the committed `specs/continental.json` campaign — one million
//! cells under the wide key scheme, ~2×10⁷ samples drawn by the batched
//! inverse-CDF path — at pool sizes 1, 2 and 4, and enforces two
//! contracts:
//!
//! 1. **Determinism**: every pool size must produce a bitwise-identical
//!    field (the pool-1 run is the reference; any differing cell exits
//!    non-zero and is named).
//! 2. **Throughput**: the best run must sustain more than
//!    [`MIN_SAMPLES_PER_SECOND`] analytic samples per second — the
//!    committed floor the columnar pipeline was built to clear. Override
//!    with `--min-rate R` (0 disables, for underpowered machines).
//!
//! ```text
//! cargo run --release --bin repro_colossal -- [--min-rate R] [--json PATH] [--bench PATH]
//! ```
//!
//! `--json PATH` writes the deterministic record — sample counts, field
//! fingerprint, super-cell hierarchy digest, **no wall times** — so CI
//! can `cmp` the artifacts of two independent process runs byte for
//! byte. `--bench PATH` writes the timing record into
//! `BENCH_parallel.json`: if the file already holds a `repro_scaling`
//! document (or a previous combined record), the E25 entries are merged
//! in under `"colossal"` with the scaling record preserved under
//! `"scaling"`.

use sixg_measure::aggregate::CellField;
use sixg_measure::campaign::CampaignConfig;
use sixg_measure::continental::continental_spec;
use sixg_measure::exec::run_field;
use sixg_measure::hvt::{self, HvtConfig};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::scenario::Scenario;
use sixg_measure::store::fnv1a64;
use sixg_measure::sweep::DEFAULT_REQUIREMENT_MS;
use sixg_measure::ExecBackend;
use std::time::Instant;

/// The committed throughput floor: the columnar pipeline must draw more
/// than ten million analytic samples per second at its best pool size.
pub const MIN_SAMPLES_PER_SECOND: f64 = 1.0e7;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// FNV-1a over every cell's `(count, mean, std)` bits, row-major — a
/// 64-bit fingerprint of the entire million-cell field.
fn field_fingerprint(field: &CellField) -> u64 {
    let grid = field.grid();
    let mut bytes = Vec::with_capacity(grid.len() * 24);
    for cell in grid.cells() {
        let s = field.stats(cell);
        bytes.extend_from_slice(&s.count.to_le_bytes());
        bytes.extend_from_slice(&s.mean_ms.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.std_ms.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// First cell whose stats differ bitwise between two fields.
fn first_difference(a: &CellField, b: &CellField) -> Option<String> {
    for cell in a.grid().cells() {
        let (x, y) = (a.stats(cell), b.stats(cell));
        if x.count != y.count
            || x.mean_ms.to_bits() != y.mean_ms.to_bits()
            || x.std_ms.to_bits() != y.std_ms.to_bits()
        {
            return Some(format!(
                "cell {cell}: ref (n={}, mean={:.17}) vs run (n={}, mean={:.17})",
                x.count, x.mean_ms, y.count, y.mean_ms
            ));
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let min_rate: f64 = flag_value(&args, "--min-rate")
        .map(|v| v.parse().expect("--min-rate takes a number"))
        .unwrap_or(MIN_SAMPLES_PER_SECOND);

    let spec = continental_spec();
    let config = CampaignConfig {
        seed: spec.campaign.seed,
        sample_interval_s: spec.campaign.sample_interval_s,
        passes: spec.campaign.passes,
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("== E25 — colossal: continental mega-grid columnar pipeline ==");
    let t0 = Instant::now();
    let scenario = Scenario::from_spec(spec).expect("committed continental spec compiles");
    println!(
        "compiled {} ({}×{} = {} cells, wide key scheme) in {:.3} s",
        scenario.name,
        scenario.grid.cols,
        scenario.grid.rows,
        scenario.grid.len(),
        t0.elapsed().as_secs_f64(),
    );

    // Warm the allocator and thread pool outside the timed region.
    let _ = with_thread_count(4, || run_field(&scenario, config, ExecBackend::Analytic));

    let mut baseline: Option<CellField> = None;
    let mut all_equal = true;
    let mut best_rate = 0.0f64;
    let mut total_samples = 0u64;
    let mut runs: Vec<serde_json::Value> = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let field =
            with_thread_count(threads, || run_field(&scenario, config, ExecBackend::Analytic));
        let seconds = t.elapsed().as_secs_f64();
        total_samples = field.total_samples();
        let rate = total_samples as f64 / seconds;
        best_rate = best_rate.max(rate);
        let difference = baseline.as_ref().and_then(|b| first_difference(b, &field));
        let bitwise_equal = difference.is_none();
        let verdict = match difference {
            None if baseline.is_none() => "reference".to_string(),
            None => "bitwise equal".to_string(),
            Some(diff) => {
                all_equal = false;
                format!("MISMATCH — {diff}")
            }
        };
        println!(
            "{threads:>2} threads: {seconds:>7.3} s   {:>5.1} Msamples/s   {verdict}",
            rate / 1e6
        );
        runs.push(serde_json::json!({
            "threads": threads,
            "seconds": seconds,
            "samples_per_second": rate,
            "bitwise_equal": bitwise_equal,
        }));
        if baseline.is_none() {
            baseline = Some(field);
        }
    }
    let baseline = baseline.expect("pool-1 run completed");

    let fingerprint = field_fingerprint(&baseline);
    let hvt_report =
        hvt::build(&baseline, &HvtConfig::for_grid(baseline.grid(), DEFAULT_REQUIREMENT_MS));
    let hvt_json = hvt_report.to_json();
    let super_cells: usize = hvt_report.tiles.iter().map(|t| t.super_cells.len()).sum();
    println!("\n{} samples · field fingerprint {fingerprint:#018x}", total_samples);
    println!(
        "hierarchy: {} tiles, {super_cells} super-cells over {} reported cells",
        hvt_report.tiles.len(),
        hvt_report.reported_cells,
    );
    println!(
        "best rate {:.1} Msamples/s (floor {:.1}) · all pool sizes bitwise equal: {all_equal}",
        best_rate / 1e6,
        min_rate / 1e6,
    );

    // The deterministic record: no wall times, so two process runs at any
    // pool size must produce byte-identical files (CI `cmp`s them).
    if let Some(path) = flag_value(&args, "--json") {
        let doc = serde_json::json!({
            "bench": "repro_colossal",
            "scenario": scenario.name,
            "grid_cols": scenario.grid.cols as u64,
            "grid_rows": scenario.grid.rows as u64,
            "scenario_seed": spec.seed,
            "campaign_seed": config.seed,
            "passes": config.passes,
            "total_samples": total_samples,
            "field_fingerprint": format!("{fingerprint:#018x}"),
            "grand_mean_bits": format!("{:#018x}", baseline.grand_mean_ms().to_bits()),
            "hvt_tiles": hvt_report.tiles.len() as u64,
            "hvt_super_cells": super_cells as u64,
            "hvt_reported_cells": hvt_report.reported_cells,
            "hvt_fingerprint": format!("{:#018x}", fnv1a64(hvt_json.as_bytes())),
            "all_bitwise_equal": all_equal,
        });
        let text = serde_json::to_string_pretty(&doc).expect("record serialises");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    // The timing record, merged into the BENCH_parallel.json trajectory.
    if let Some(path) = flag_value(&args, "--bench") {
        let colossal = serde_json::json!({
            "bench": "repro_colossal",
            "hardware_threads": cores,
            "total_samples": total_samples,
            "best_samples_per_second": best_rate,
            "min_samples_per_second": min_rate,
            "all_bitwise_equal": all_equal,
            "runs": runs,
        });
        let merged =
            match std::fs::read_to_string(&path).ok().and_then(|t| serde_json::from_str(&t).ok()) {
                // A combined record: replace the colossal entry, keep the rest.
                Some(serde_json::Value::Object(pairs))
                    if pairs.iter().any(|(k, _)| k == "scaling" || k == "colossal") =>
                {
                    let mut pairs: Vec<(String, serde_json::Value)> =
                        pairs.into_iter().filter(|(k, _)| k != "colossal").collect();
                    pairs.push(("colossal".to_string(), colossal));
                    serde_json::Value::Object(pairs)
                }
                // A bare repro_scaling document: wrap it.
                Some(existing @ serde_json::Value::Object(_)) => serde_json::json!({
                    "scaling": existing,
                    "colossal": colossal,
                }),
                _ => serde_json::json!({ "colossal": colossal }),
            };
        let text = serde_json::to_string_pretty(&merged).expect("record serialises");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if !all_equal {
        eprintln!("repro_colossal: pool sizes disagree — determinism contract broken");
        std::process::exit(1);
    }
    if min_rate > 0.0 && best_rate <= min_rate {
        eprintln!(
            "repro_colossal: best rate {best_rate:.0} samples/s is below the floor {min_rate:.0}"
        );
        std::process::exit(1);
    }
}
