//! E1 — Figure 1: "Mobile evaluation scenario using grid segmentation".
//!
//! Regenerates the campaign's spatial setup: the 6×7 grid of 1 km cells
//! over Klagenfurt, the synthetic population-density field with its
//! sparse border cells, the boustrophedon traversal of the 33 measured
//! cells, and the resulting per-cell sample counts.

use sixg_bench::{compare, header, shared_scenario};
use sixg_geo::CellId;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::report::{render_grid, FieldStat};

fn main() {
    let s = shared_scenario();

    header("Figure 1 — grid segmentation scenario");
    compare("grid dimensions", "6 x 7 (A-F x 1-7)", format!("{} x {}", s.grid.cols, s.grid.rows));
    compare("cell side length", "1 km", format!("{} km", s.grid.cell_km));
    compare("cells traversed", 33, s.included.len());
    compare("peer nodes per mobile node", 8, s.peers.len());

    header("Population density (synthetic Statistik Austria substitute)");
    println!("cells below 1000 inhabitants/km² are skipped by the campaign:");
    for r in 0..s.grid.rows {
        print!("  ");
        for c in 0..s.grid.cols {
            let cell = CellId::new(c, r);
            let d = s.density.density(cell);
            let mark = if s.density.is_sparse(cell) { '.' } else { '#' };
            print!("{mark}{d:>5.0} ");
        }
        println!();
    }

    header("Traversal (boustrophedon over included cells)");
    let campaign = MobileCampaign::new(s, CampaignConfig::default());
    let t = campaign.traversal(0);
    let labels: Vec<String> = t.visits.iter().map(|v| v.cell.label()).collect();
    println!("order: {}", labels.join(" "));
    println!("total traversal time: {:.0} s", t.duration_s());

    header("Per-cell sample counts (one pass)");
    let field = campaign.run();
    println!("{}", render_grid(&field, FieldStat::Count));
    println!("masked (0-count) cells are the paper's 0.0 markers.");
}
