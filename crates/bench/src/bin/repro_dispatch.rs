//! E26 — the distributed-dispatch gate: fault-tolerant fleet determinism.
//!
//! Spawns a three-worker `sixg-serve` fleet in-process, dispatches the
//! committed cadence sweep across it with `measure::dispatch`, and
//! **gates** on the distribution contract: the merged `SweepReport` must
//! be byte-identical to the offline in-process [`execute`] of the same
//! sweep — including a run where one worker is killed mid-shard (its
//! fault plan cuts the connection right after a `STORE` frame), so the
//! shard resumes on a live worker from the last streamed checkpoint
//! cursor. Any divergence, or a kill drill that never reassigns, exits
//! non-zero so CI can gate on it.
//!
//! ```text
//! repro_dispatch [--kill-worker N] [--kill-after-frames K]
//!                [--workers A:P,B:P,...] [--shards-per-worker S]
//!                [--interval K] [--json PATH] [--payload-out PATH]
//!                [SWEEP_FILE]
//! ```
//!
//! * `--kill-worker` — arm worker N (0-based) of the in-process fleet to
//!   die after its `--kill-after-frames`-th STORE frame (default 3);
//! * `--workers` — use an external fleet instead of self-hosting (the
//!   kill drill then requires the fleet itself to be faulted, e.g. via
//!   `sixg-serve --fail-after-store-frames`);
//! * `--json` — write the `BENCH_dispatch.json` record (stats + verdict);
//! * `--payload-out` — write the verified merged report, for `cmp`
//!   against the offline `sixg-cli sweep --json` artifact.

use sixg_bench::serve::Server;
use sixg_bench::{compare, header};
use sixg_measure::dispatch::{dispatch_sweep, DispatchConfig};
use sixg_measure::exec::{execute, ExecReport, ExecRequest};
use sixg_measure::sweep::Sweep;
use std::path::Path;
use std::time::Instant;

/// The committed sweep file, resolved from the crate root so the binary
/// works from any working directory.
const SWEEP_FILE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/sweeps/klagenfurt_cadence.json");

/// Workers self-hosted when `--workers` is absent.
const FLEET_SIZE: usize = 3;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("repro_dispatch: invalid value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn die(msg: String) -> ! {
    eprintln!("repro_dispatch: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kill_worker: Option<usize> = flag_value(&args, "--kill-worker").map(|v| {
        v.parse().unwrap_or_else(|_| die(format!("invalid value {v:?} for --kill-worker")))
    });
    let kill_after: u64 = parsed(&args, "--kill-after-frames", 3);
    let shards_per_worker: u32 = parsed(&args, "--shards-per-worker", 3);
    let interval: usize = parsed(&args, "--interval", 64);
    let json = flag_value(&args, "--json").map(str::to_string);
    let payload_out = flag_value(&args, "--payload-out").map(str::to_string);
    let external = flag_value(&args, "--workers").map(str::to_string);
    let sweep_file = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some(
                        "--kill-worker"
                            | "--kill-after-frames"
                            | "--workers"
                            | "--shards-per-worker"
                            | "--interval"
                            | "--json"
                            | "--payload-out"
                    )
                )
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or(SWEEP_FILE);
    if shards_per_worker == 0 || interval == 0 {
        die("--shards-per-worker and --interval must be at least 1".to_string());
    }

    header("E26 — distributed dispatch determinism across a worker fleet");
    let text = std::fs::read_to_string(sweep_file)
        .unwrap_or_else(|e| die(format!("cannot read {sweep_file}: {e}")));
    let dir = Path::new(sweep_file).parent().unwrap_or_else(|| Path::new("."));
    let sweep = Sweep::from_json_in_dir_unbounded(&text, dir)
        .unwrap_or_else(|e| die(format!("{sweep_file}: invalid sweep: {e}")));
    let variant_count = sweep.spec.variant_count();

    // The offline anchor: the same sweep through the in-process facade —
    // exactly the bytes `sixg-cli sweep --json` writes. The merged fleet
    // report must reproduce them no matter what the fleet went through.
    let request = ExecRequest::sweep(sweep.spec.clone(), sweep.base_value().clone());
    let offline = match execute(&request) {
        Ok(ExecReport::Sweep(run)) => run.report.to_json(),
        Ok(_) => unreachable!("a sweep request yields a sweep report"),
        Err(e) => die(format!("offline execution failed: {e}")),
    };

    // Self-host a fleet unless pointed at one. The kill drill arms one
    // worker's fault plan: it drops every connection right after writing
    // its K-th STORE frame — deterministically mid-shard, no process-kill
    // timing race.
    let workers: Vec<String> = match &external {
        Some(list) => {
            if kill_worker.is_some() {
                die("--kill-worker only drills the self-hosted fleet; fault an external \
                     fleet with `sixg-serve --fail-after-store-frames`"
                    .to_string());
            }
            list.split(',').map(|w| w.trim().to_string()).filter(|w| !w.is_empty()).collect()
        }
        None => (0..FLEET_SIZE)
            .map(|w| {
                let server = Server::bind("127.0.0.1:0", 8, None)
                    .unwrap_or_else(|e| die(format!("cannot bind worker {w}: {e}")));
                let addr = server.local_addr().expect("bound").to_string();
                if kill_worker == Some(w) {
                    server.set_fault_plan(kill_after);
                }
                std::thread::spawn(move || server.run());
                addr
            })
            .collect(),
    };
    if workers.is_empty() {
        die("--workers needs at least one host:port address".to_string());
    }

    compare("fleet", external.as_deref().unwrap_or("(in-process × 3)"), workers.join(", "));
    compare("sweep variants", "18", variant_count);
    match kill_worker {
        Some(w) => compare(
            "kill drill",
            format!("worker {w} dies after STORE frame {kill_after}"),
            "armed",
        ),
        None => compare("kill drill", "none (clean fleet)", "disarmed"),
    }

    let mut cfg = DispatchConfig::new(workers);
    cfg.shards_per_worker = shards_per_worker;
    cfg.interval = interval;

    let t0 = Instant::now();
    let dispatched = dispatch_sweep(&sweep, &cfg).unwrap_or_else(|e| {
        eprintln!("repro_dispatch: dispatch failed: {e}");
        std::process::exit(1);
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = &dispatched.stats;
    let merged = dispatched.run.report.to_json();

    println!(
        "\ndispatched {} shard(s) over {} worker(s) in {wall_s:.3} s wall — \
         {} assignment(s), {} reassignment(s) ({} resumed mid-shard), {} reconnect(s)",
        stats.shard_count,
        stats.workers,
        stats.assignments,
        stats.reassignments,
        stats.resumed_shards,
        stats.reconnects,
    );
    for dead in &stats.dead_workers {
        println!("worker {dead} declared dead; its shards were reassigned");
    }

    let identical = merged == offline;
    compare("payload bytes", offline.len(), merged.len());
    compare("byte-identical to offline sweep", "yes", if identical { "yes" } else { "NO" });

    // Under the kill drill the gate also demands the fault actually bit:
    // a drill that never reassigns proves nothing about fault tolerance.
    let drill_ok =
        kill_worker.is_none() || (stats.reassignments >= 1 && stats.dead_workers.len() == 1);
    if kill_worker.is_some() {
        compare(
            "fault drill took effect",
            "dead worker + reassignment",
            if drill_ok { "yes" } else { "NO" },
        );
    }

    if let Some(out) = &payload_out {
        std::fs::write(out, &merged).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out} (the merged fleet report)");
    }
    if let Some(out) = &json {
        // Stats + timing record for the BENCH_* trajectory. Wall clock and
        // fleet scheduling vary run to run, so unlike the payload this
        // artifact is not byte-stable.
        let record = format!(
            "{{\n  \"experiment\": \"dispatch\",\n  \"sweep\": {:?},\n  \
             \"workers\": {},\n  \"shard_count\": {},\n  \
             \"kill_worker\": {},\n  \"assignments\": {},\n  \
             \"reassignments\": {},\n  \"resumed_shards\": {},\n  \
             \"reconnects\": {},\n  \"dead_workers\": {},\n  \
             \"payload_bytes\": {},\n  \"byte_identical\": {identical},\n  \
             \"wall_s\": {wall_s:.6}\n}}\n",
            Path::new(sweep_file).file_name().and_then(|n| n.to_str()).unwrap_or(sweep_file),
            stats.workers,
            stats.shard_count,
            kill_worker.map_or("null".to_string(), |w| w.to_string()),
            stats.assignments,
            stats.reassignments,
            stats.resumed_shards,
            stats.reconnects,
            stats.dead_workers.len(),
            offline.len(),
        );
        std::fs::write(out, record).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out}");
    }

    if !identical {
        eprintln!(
            "repro_dispatch: the merged fleet report diverged from the offline sweep — \
             the distribution contract is broken"
        );
        std::process::exit(1);
    }
    if !drill_ok {
        eprintln!(
            "repro_dispatch: the kill drill left no dead worker or never reassigned a \
             shard — the fault path was not exercised"
        );
        std::process::exit(1);
    }
}
