//! E8 — Section IV-C's Fezeu et al. PHY citation: "the system transmitted
//! 4.4% of packets in under 1 ms and 22.36% in under 3 ms … On average,
//! the application layer added 35 ms".

use sixg_bench::{compare, header, ms, pct};
use sixg_netsim::radio::phy::{MmWavePhy, APP_LAYER_MEAN_MS, FRAC_UNDER_1MS, FRAC_UNDER_3MS};
use sixg_netsim::rng::SimRng;
use sixg_netsim::stats::Welford;

fn main() {
    let phy = MmWavePhy::calibrated();
    let n = 1_000_000;

    header("5G mmWave PHY latency distribution (Fezeu et al.)");
    let f1 = phy.empirical_fraction_below(1.0, n, 1);
    let f3 = phy.empirical_fraction_below(3.0, n, 2);
    compare("packets under 1 ms", pct(FRAC_UNDER_1MS * 100.0), pct(f1 * 100.0));
    compare("packets under 3 ms", pct(FRAC_UNDER_3MS * 100.0), pct(f3 * 100.0));
    compare("PHY mean", "(not stated)", ms(phy.mean_ms()));

    // A compact CDF table for plotting.
    println!("\nCDF (ms -> fraction below):");
    for x in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0] {
        println!("  {x:>5.1} ms  {:>7.4}", phy.empirical_fraction_below(x, 200_000, 3));
    }

    header("Application-layer overhead");
    let mut rng = SimRng::from_seed(4);
    let mut w = Welford::new();
    for _ in 0..200_000 {
        w.push(MmWavePhy::app_layer_sample_ms(&mut rng));
    }
    compare("mean application-layer addition", ms(APP_LAYER_MEAN_MS), ms(w.mean()));
}
