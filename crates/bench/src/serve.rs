//! The `sixg-serve` wire protocol and daemon core.
//!
//! A long-lived campaign daemon: one [`sixg_measure::Executor`] (facade +
//! compiled-scenario cache) shared across thread-per-connection clients on
//! a plain `std::net` TCP socket. No async runtime, no external protocol
//! crates — the frame codec (now in [`sixg_measure::wire`], re-exported
//! below) is the entire dependency surface.
//!
//! ## The exchange
//!
//! A client sends one `REQUEST` frame per exchange — the payload is an
//! [`ExecRequest`] JSON document (`{"action": "run" | "sweep" | "validate",
//! ...}`). The server answers with zero or more `VARIANT` frames (sweep
//! requests stream one per completed campaign, in run order:
//! `{"run": N, "report": {…VariantReport…}}`) followed by exactly one
//! terminal frame: `REPORT` carrying [`sixg_measure::ExecReport::to_json`]
//! bytes on success, or `ERROR` carrying `{"code", "path", "message"}`
//! from the
//! facade's [`SpecError`]. The connection then idles for the next request;
//! clients close by shutting the socket down between frames.
//!
//! A dispatched shard request (`"stream_store": true`, sent by
//! [`sixg_measure::dispatch`]) adds `STORE` frames to the exchange: an
//! optional seed bundle follows the request (`"seed_store": true`), and
//! the server streams one `STORE` frame per checkpoint-store mutation —
//! manifest, spilled run blobs, committed cursors — before the terminal
//! frame, so the coordinator can resume the shard elsewhere if this
//! worker dies. Store names resolve under the server's scratch root
//! ([`Server::set_scratch`]), never absolute paths.
//!
//! ## Determinism on the wire
//!
//! `REPORT` payloads are the same bytes [`sixg_measure::execute`] would
//! serialise in-process: no wall times, no connection state, no cache
//! tags. Identical requests therefore produce byte-identical payloads
//! regardless of concurrent load, scenario-cache hits, or pool size — the
//! property `repro_serve` and `tests/serve.rs` gate on.

use sixg_measure::dispatch::run_streamed_shard;
use sixg_measure::exec::{ExecRequest, Executor};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::spec::{ErrorCode, SpecError};
use sixg_measure::store::{run_blob_name, StoreEvent, CURSOR_FILE, MANIFEST_FILE};
use sixg_measure::sweep::VariantReport;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

// The frame codec lives in `sixg_measure::wire` (the dispatch coordinator
// speaks it too); re-exported here so daemon, client, benches and tests
// keep one import surface.
pub use sixg_measure::wire::{
    error_payload, is_transient_io, read_frame, variant_payload, write_frame, FrameKind,
    StoreBundle, HEADER_LEN, MAGIC, MAX_PAYLOAD_LEN,
};

/// Process-unique scratch-directory counter: several in-process servers
/// (a test fleet) must never share a default scratch root.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A deterministic worker-death schedule for fault drills: the server
/// counts the `STORE` frames it writes across all connections and, when
/// the armed count is reached, shuts the active socket down mid-stream
/// and refuses every connection from then on — a worker that died
/// mid-shard and stayed dead, without any process-kill timing race.
#[derive(Debug)]
pub struct FaultPlan {
    /// `STORE` frames left until death; negative = disarmed.
    remaining: AtomicI64,
    dead: AtomicBool,
}

impl FaultPlan {
    fn disarmed() -> Self {
        Self { remaining: AtomicI64::new(-1), dead: AtomicBool::new(false) }
    }

    /// Called after each written `STORE` frame; true when the plan fires
    /// on exactly this frame.
    fn on_store_frame(&self) -> bool {
        if self.remaining.load(Ordering::SeqCst) < 0 {
            return false;
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.dead.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// True once the plan has fired (the worker is dead).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }
}

/// The daemon: a bound listener plus the shared executor every connection
/// multiplexes onto.
pub struct Server {
    listener: TcpListener,
    executor: Arc<Executor>,
    threads: Option<usize>,
    scratch: PathBuf,
    fault: Arc<FaultPlan>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port — read it
    /// back with [`Self::local_addr`]). `cache_capacity` bounds the shared
    /// compiled-scenario cache; `threads`, when set, pins the rayon pool
    /// size each connection thread uses (results are bitwise identical
    /// either way — this only shapes load).
    pub fn bind(addr: &str, cache_capacity: usize, threads: Option<usize>) -> io::Result<Self> {
        let scratch = std::env::temp_dir().join(format!(
            "sixg-serve-scratch-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            executor: Arc::new(Executor::with_capacity(cache_capacity)),
            threads,
            scratch,
            fault: Arc::new(FaultPlan::disarmed()),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared executor (for in-process smoke tests and stats).
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The scratch root dispatched shard stores are resolved under
    /// (`--scratch` on the binary). Defaults to a process-unique
    /// directory under the system temp dir.
    pub fn scratch(&self) -> &PathBuf {
        &self.scratch
    }

    /// Overrides the scratch root.
    pub fn set_scratch(&mut self, dir: impl Into<PathBuf>) {
        self.scratch = dir.into();
    }

    /// Arms the worker-death drill: die mid-stream on the `k`-th written
    /// `STORE` frame (`k >= 1`) and refuse all connections afterwards.
    pub fn set_fault_plan(&self, kill_after_store_frames: u64) {
        self.fault.store_arm(kill_after_store_frames);
    }

    /// The fault plan (for tests asserting the drill fired).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// The accept loop: one thread per connection, forever. Accept errors
    /// on a single connection are skipped; only a dead listener returns.
    /// Once the fault plan fires, every accepted connection is dropped on
    /// the floor — the worker stays dead.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            if self.fault.is_dead() {
                drop(stream);
                continue;
            }
            let executor = Arc::clone(&self.executor);
            let threads = self.threads;
            let scratch = self.scratch.clone();
            let fault = Arc::clone(&self.fault);
            std::thread::spawn(move || {
                serve_connection(&executor, stream, threads, &scratch, &fault)
            });
        }
    }
}

impl FaultPlan {
    fn store_arm(&self, kill_after_store_frames: u64) {
        let k = kill_after_store_frames.max(1) as i64;
        self.remaining.store(k, Ordering::SeqCst);
    }
}

/// One connection's request loop: frames in, frames out, until the client
/// shuts down or the stream turns unrecoverable.
fn serve_connection(
    executor: &Executor,
    mut stream: TcpStream,
    threads: Option<usize>,
    scratch: &std::path::Path,
    fault: &FaultPlan,
) {
    let _ = stream.set_nodelay(true);
    loop {
        if fault.is_dead() {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean shutdown, client vanished, or garbage on the wire:
            // nothing sensible to answer on this socket either way.
            Ok(None) | Err(_) => return,
        };
        if kind != FrameKind::Request {
            let e = SpecError::coded(
                ErrorCode::Schema,
                "$",
                format!("expected a REQUEST frame, got kind {}", kind.as_u8()),
            );
            let _ = write_frame(&mut stream, FrameKind::Error, &error_payload(&e));
            return;
        }
        let outcome = std::str::from_utf8(&payload)
            .map_err(|_| {
                SpecError::coded(ErrorCode::InvalidJson, "$", "request payload is not UTF-8")
            })
            .and_then(ExecRequest::from_json);
        let request = match outcome {
            Ok(request) => request,
            Err(e) => {
                // A malformed request poisons nothing: answer and keep the
                // connection for the client's next attempt.
                if write_frame(&mut stream, FrameKind::Error, &error_payload(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let alive = if request.stream_store {
            answer_stream_request(&mut stream, &request, threads, scratch, fault)
        } else {
            answer_request(executor, &mut stream, &request, threads)
        };
        if !alive {
            return;
        }
    }
}

/// Executes one decoded request and writes the response frames; `false`
/// means the socket died and the connection loop should end.
fn answer_request(
    executor: &Executor,
    stream: &mut TcpStream,
    request: &ExecRequest,
    threads: Option<usize>,
) -> bool {
    let mut wire_dead = false;
    let mut emit = |run: usize, report: &VariantReport| {
        if !wire_dead {
            let payload = variant_payload(run, report);
            wire_dead = write_frame(&mut *stream, FrameKind::Variant, &payload).is_err();
        }
    };
    let result = match threads {
        Some(t) => with_thread_count(t, || executor.execute_streaming(request, &mut emit)),
        None => executor.execute_streaming(request, &mut emit),
    };
    if wire_dead {
        return false;
    }
    let written = match result {
        Ok(report) => write_frame(stream, FrameKind::Report, report.to_json().as_bytes()),
        Err(e) => write_frame(stream, FrameKind::Error, &error_payload(&e)),
    };
    written.is_ok()
}

/// Executes one dispatched shard request (`stream_store: true`): resolve
/// the store name under the scratch root, read the optional seed `STORE`
/// frame, run the shard with every store mutation echoed back as a
/// `STORE` frame, then the terminal `REPORT`/`ERROR`. `false` means the
/// socket died (or the fault drill fired) and the connection should end.
fn answer_stream_request(
    stream: &mut TcpStream,
    request: &ExecRequest,
    threads: Option<usize>,
    scratch: &std::path::Path,
    fault: &FaultPlan,
) -> bool {
    // Validate before touching the filesystem: the store name is only
    // trustworthy once `validate` vouched for it.
    if let Err(e) = request.validate() {
        return write_frame(stream, FrameKind::Error, &error_payload(&e)).is_ok();
    }
    let name = request.checkpoint.as_deref().expect("validated: stream_store has checkpoint");
    let store_dir = scratch.join(name);

    let seed = if request.seed_store {
        match read_frame(stream) {
            Ok(Some((FrameKind::Store, payload))) => match StoreBundle::decode(&payload) {
                Ok(bundle) => Some(bundle),
                // A corrupt seed is protocol garbage, not a request error:
                // the stream is out of step, close it.
                Err(_) => return false,
            },
            _ => return false,
        }
    } else {
        None
    };

    let mut wire_dead = false;
    let mut observe = |ev: StoreEvent<'_>| -> bool {
        if wire_dead {
            return false;
        }
        let (entry, bytes): (String, &[u8]) = match ev {
            StoreEvent::Opened { manifest } => (MANIFEST_FILE.to_string(), manifest),
            StoreEvent::RunSpilled { run, blob } => (run_blob_name(run), blob),
            StoreEvent::CursorCommitted { blob, .. } => (CURSOR_FILE.to_string(), blob),
        };
        let mut bundle = StoreBundle::new();
        bundle.push(&entry, bytes.to_vec());
        if write_frame(&mut *stream, FrameKind::Store, &bundle.encode()).is_err() {
            wire_dead = true;
            return false;
        }
        if fault.on_store_frame() {
            // The drill: die mid-stream, abruptly, exactly here.
            let _ = stream.shutdown(Shutdown::Both);
            wire_dead = true;
            return false;
        }
        true
    };
    let result = match threads {
        Some(t) => with_thread_count(t, || {
            run_streamed_shard(request, &store_dir, seed.as_ref(), &mut observe)
        }),
        None => run_streamed_shard(request, &store_dir, seed.as_ref(), &mut observe),
    };
    if wire_dead {
        return false;
    }
    let written = match result {
        Ok(report) => write_frame(stream, FrameKind::Report, report.to_json().as_bytes()),
        Err(e) => write_frame(stream, FrameKind::Error, &error_payload(&e)),
    };
    written.is_ok()
}

// The frame-codec unit tests moved to `sixg_measure::wire` with the codec
// itself; what stays here is the daemon's own machinery.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_fires_on_the_armed_frame_and_stays_dead() {
        let plan = FaultPlan::disarmed();
        for _ in 0..100 {
            assert!(!plan.on_store_frame(), "disarmed plan must never fire");
        }
        assert!(!plan.is_dead());

        plan.store_arm(3);
        assert!(!plan.on_store_frame());
        assert!(!plan.on_store_frame());
        assert!(!plan.is_dead());
        assert!(plan.on_store_frame(), "third frame fires the plan");
        assert!(plan.is_dead());
        assert!(!plan.on_store_frame(), "the plan fires exactly once");
        assert!(plan.is_dead(), "death is permanent");
    }

    #[test]
    fn scratch_roots_are_process_unique() {
        let a = Server::bind("127.0.0.1:0", 1, None).expect("bind");
        let b = Server::bind("127.0.0.1:0", 1, None).expect("bind");
        assert_ne!(a.scratch(), b.scratch(), "two in-process servers must not share scratch");
    }
}
