//! The `sixg-serve` wire protocol and daemon core.
//!
//! A long-lived campaign daemon: one [`sixg_measure::Executor`] (facade +
//! compiled-scenario cache) shared across thread-per-connection clients on
//! a plain `std::net` TCP socket. No async runtime, no external protocol
//! crates — the frame codec below is the entire dependency surface.
//!
//! ## Frame layout
//!
//! Every message in both directions is one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "6GSV"
//!      4     1  kind   (1 = REQUEST, 2 = VARIANT, 3 = REPORT, 4 = ERROR)
//!      5     3  reserved, must be zero
//!      8     4  payload length, u32 little-endian (cap: 64 MiB)
//!     12     n  payload, UTF-8 JSON
//! ```
//!
//! A client sends one `REQUEST` frame per exchange — the payload is an
//! [`ExecRequest`] JSON document (`{"action": "run" | "sweep" | "validate",
//! ...}`). The server answers with zero or more `VARIANT` frames (sweep
//! requests stream one per completed campaign, in run order:
//! `{"run": N, "report": {…VariantReport…}}`) followed by exactly one
//! terminal frame: `REPORT` carrying [`sixg_measure::ExecReport::to_json`]
//! bytes on success, or `ERROR` carrying `{"code", "path", "message"}`
//! from the
//! facade's [`SpecError`]. The connection then idles for the next request;
//! clients close by shutting the socket down between frames.
//!
//! ## Determinism on the wire
//!
//! `REPORT` payloads are the same bytes [`sixg_measure::execute`] would
//! serialise in-process: no wall times, no connection state, no cache
//! tags. Identical requests therefore produce byte-identical payloads
//! regardless of concurrent load, scenario-cache hits, or pool size — the
//! property `repro_serve` and `tests/serve.rs` gate on.

use sixg_measure::exec::{ExecRequest, Executor};
use sixg_measure::parallel::with_thread_count;
use sixg_measure::spec::{ErrorCode, SpecError};
use sixg_measure::sweep::VariantReport;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use serde_json::Value;

/// Frame magic: every frame in either direction starts with these bytes.
pub const MAGIC: [u8; 4] = *b"6GSV";

/// Frame header size (magic + kind + reserved + length), bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload — a mega-sweep report is a few MiB;
/// anything past this is a corrupt length field, not a real request.
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Frame kind tags (byte 4 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an [`ExecRequest`] JSON document.
    Request,
    /// Server → client: one streamed per-variant sweep report.
    Variant,
    /// Server → client, terminal: the [`sixg_measure::ExecReport`] JSON.
    Report,
    /// Server → client, terminal: `{"code", "path", "message"}`.
    Error,
}

impl FrameKind {
    /// The wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Variant => 2,
            FrameKind::Report => 3,
            FrameKind::Error => 4,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameKind::Request,
            2 => FrameKind::Variant,
            3 => FrameKind::Report,
            4 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = kind.as_u8();
    header[8..].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer shut the
/// connection down between frames); EOF inside a frame, a bad magic, an
/// unknown kind, non-zero reserved bytes, or an oversized length are all
/// `InvalidData` errors — the stream is unrecoverable after any of them.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameKind, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame header",
            ));
        }
        filled += n;
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if header[..4] != MAGIC {
        return Err(bad("bad frame magic (expected \"6GSV\")"));
    }
    let kind = FrameKind::from_u8(header[4]).ok_or_else(|| bad("unknown frame kind"))?;
    if header[5..8] != [0, 0, 0] {
        return Err(bad("non-zero reserved bytes in frame header"));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_LEN {
        return Err(bad("frame payload length exceeds the 64 MiB cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

/// The `ERROR` frame payload for a facade error: stable field order, so
/// identical failures serialise identically.
pub fn error_payload(e: &SpecError) -> Vec<u8> {
    let v = Value::Object(vec![
        ("code".into(), Value::String(e.code.as_str().into())),
        ("path".into(), Value::String(e.path.clone())),
        ("message".into(), Value::String(e.message.clone())),
    ]);
    serde_json::to_string_pretty(&v).expect("error payload serialises").into_bytes()
}

/// The `VARIANT` frame payload for one streamed sweep variant.
pub fn variant_payload(run: usize, report: &VariantReport) -> Vec<u8> {
    let v = Value::Object(vec![
        ("run".into(), Value::U64(run as u64)),
        ("report".into(), serde_json::to_value(report)),
    ]);
    serde_json::to_string_pretty(&v).expect("variant payload serialises").into_bytes()
}

/// The daemon: a bound listener plus the shared executor every connection
/// multiplexes onto.
pub struct Server {
    listener: TcpListener,
    executor: Arc<Executor>,
    threads: Option<usize>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port — read it
    /// back with [`Self::local_addr`]). `cache_capacity` bounds the shared
    /// compiled-scenario cache; `threads`, when set, pins the rayon pool
    /// size each connection thread uses (results are bitwise identical
    /// either way — this only shapes load).
    pub fn bind(addr: &str, cache_capacity: usize, threads: Option<usize>) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            executor: Arc::new(Executor::with_capacity(cache_capacity)),
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared executor (for in-process smoke tests and stats).
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The accept loop: one thread per connection, forever. Accept errors
    /// on a single connection are skipped; only a dead listener returns.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            let executor = Arc::clone(&self.executor);
            let threads = self.threads;
            std::thread::spawn(move || serve_connection(&executor, stream, threads));
        }
    }
}

/// One connection's request loop: frames in, frames out, until the client
/// shuts down or the stream turns unrecoverable.
fn serve_connection(executor: &Executor, mut stream: TcpStream, threads: Option<usize>) {
    let _ = stream.set_nodelay(true);
    loop {
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean shutdown, client vanished, or garbage on the wire:
            // nothing sensible to answer on this socket either way.
            Ok(None) | Err(_) => return,
        };
        if kind != FrameKind::Request {
            let e = SpecError::coded(
                ErrorCode::Schema,
                "$",
                format!("expected a REQUEST frame, got kind {}", kind.as_u8()),
            );
            let _ = write_frame(&mut stream, FrameKind::Error, &error_payload(&e));
            return;
        }
        let outcome = std::str::from_utf8(&payload)
            .map_err(|_| {
                SpecError::coded(ErrorCode::InvalidJson, "$", "request payload is not UTF-8")
            })
            .and_then(ExecRequest::from_json);
        let request = match outcome {
            Ok(request) => request,
            Err(e) => {
                // A malformed request poisons nothing: answer and keep the
                // connection for the client's next attempt.
                if write_frame(&mut stream, FrameKind::Error, &error_payload(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if !answer_request(executor, &mut stream, &request, threads) {
            return;
        }
    }
}

/// Executes one decoded request and writes the response frames; `false`
/// means the socket died and the connection loop should end.
fn answer_request(
    executor: &Executor,
    stream: &mut TcpStream,
    request: &ExecRequest,
    threads: Option<usize>,
) -> bool {
    let mut wire_dead = false;
    let mut emit = |run: usize, report: &VariantReport| {
        if !wire_dead {
            let payload = variant_payload(run, report);
            wire_dead = write_frame(&mut *stream, FrameKind::Variant, &payload).is_err();
        }
    };
    let result = match threads {
        Some(t) => with_thread_count(t, || executor.execute_streaming(request, &mut emit)),
        None => executor.execute_streaming(request, &mut emit),
    };
    if wire_dead {
        return false;
    }
    let written = match result {
        Ok(report) => write_frame(stream, FrameKind::Report, report.to_json().as_bytes()),
        Err(e) => write_frame(stream, FrameKind::Error, &error_payload(&e)),
    };
    written.is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kinds_round_trip() {
        for kind in [FrameKind::Request, FrameKind::Variant, FrameKind::Report, FrameKind::Error] {
            assert_eq!(FrameKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(FrameKind::from_u8(0), None);
        assert_eq!(FrameKind::from_u8(5), None);
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"{\"action\":\"validate\"}").unwrap();
        write_frame(&mut buf, FrameKind::Report, b"").unwrap();
        let mut r = &buf[..];
        let (kind, payload) = read_frame(&mut r).unwrap().expect("first frame");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(payload, b"{\"action\":\"validate\"}");
        let (kind, payload) = read_frame(&mut r).unwrap().expect("second frame");
        assert_eq!(kind, FrameKind::Report);
        assert!(payload.is_empty());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn corrupt_frames_are_invalid_data() {
        // Bad magic.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[0] = b'!';
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Unknown kind.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[4] = 9;
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Non-zero reserved bytes.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[6] = 1;
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Length past the cap.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[8..12].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // EOF inside the header.
        let err = read_frame(&mut &buf[..7]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_payload_carries_the_machine_readable_code() {
        let e = SpecError::coded(ErrorCode::Conflict, "$.checkpoint", "no checkpointed runs");
        let text = String::from_utf8(error_payload(&e)).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("conflict"));
        assert_eq!(v.get("path").and_then(Value::as_str), Some("$.checkpoint"));
        assert_eq!(v.get("message").and_then(Value::as_str), Some("no checkpointed runs"));
    }
}
