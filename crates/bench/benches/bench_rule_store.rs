//! E12 bench: PDR/QER rule-store lookups — the context-aware store's
//! speedup over a linear table at realistic rule counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sixg_core::recommend::cpf::{ContextAwareRuleStore, LinearRuleStore, QosRule};
use sixg_netsim::rng::SimRng;

fn stores(n: u32, seed: u64) -> (LinearRuleStore, ContextAwareRuleStore) {
    let mut rng = SimRng::from_seed(seed);
    let mut linear = LinearRuleStore::new();
    let mut ctx = ContextAwareRuleStore::new();
    for i in 0..n {
        let rule = QosRule {
            ue: i % (n / 4).max(1),
            flow: i % 8,
            priority: rng.below(8) as u8,
            gbr_bps: 1e6,
        };
        linear.install(rule);
        ctx.install(rule);
    }
    (linear, ctx)
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpf/rule_lookup");
    for n in [1_000u32, 10_000, 100_000] {
        let (linear, ctx) = stores(n, 7);
        let ue_space = (n / 4).max(1) as u64;
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut rng = SimRng::from_seed(1);
            b.iter(|| {
                let ue = rng.below(ue_space) as u32;
                linear.lookup(ue, rng.below(8) as u32).probes
            });
        });
        group.bench_with_input(BenchmarkId::new("context_aware", n), &n, |b, _| {
            let mut rng = SimRng::from_seed(1);
            b.iter(|| {
                let ue = rng.below(ue_space) as u32;
                ctx.lookup(ue, rng.below(8) as u32).probes
            });
        });
    }
    group.finish();
}

fn bench_install(c: &mut Criterion) {
    c.bench_function("cpf/context_aware_install_10k", |b| {
        b.iter(|| {
            let (_, ctx) = stores(10_000, 9);
            ctx.len()
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_lookups, bench_install
}
criterion_main!(benches);
