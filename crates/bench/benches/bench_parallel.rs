//! Parallel-backend bench: the same campaign on 1 / 2 / 4 / 8 pool
//! threads, plus the sequential runner as the baseline.
//!
//! On a multi-core machine the `threads_N` rows should shrink roughly with
//! N until the core count is reached; on a single core they bound the
//! pool's scheduling overhead instead. Either way every configuration
//! computes the identical (bitwise) `CellField`.

use criterion::{criterion_group, criterion_main, Criterion};
use sixg_bench::shared_scenario;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::exec::run_field;
use sixg_measure::parallel::with_thread_count;
use sixg_measure::ExecBackend;

const PASSES: u32 = 4;

fn config() -> CampaignConfig {
    CampaignConfig { passes: PASSES, ..Default::default() }
}

fn bench_sequential_baseline(c: &mut Criterion) {
    let s = shared_scenario();
    c.bench_function("parallel/sequential_baseline", |b| {
        b.iter(|| MobileCampaign::new(s, config()).run().total_samples());
    });
}

fn bench_thread_counts(c: &mut Criterion) {
    let s = shared_scenario();
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(&format!("parallel/threads_{threads}"), |b| {
            b.iter(|| {
                with_thread_count(threads, || {
                    run_field(s, config(), ExecBackend::Analytic).total_samples()
                })
            });
        });
    }
}

fn bench_shard_listing(c: &mut Criterion) {
    let s = shared_scenario();
    let campaign = MobileCampaign::new(s, config());
    c.bench_function("parallel/shard_listing", |b| {
        b.iter(|| campaign.shards().len());
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sequential_baseline, bench_thread_counts, bench_shard_listing
}
criterion_main!(benches);
