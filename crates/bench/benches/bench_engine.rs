//! Substrate bench: discrete-event engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sixg_netsim::engine::Engine;
use sixg_netsim::time::SimDuration;

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/event_throughput");
    for n in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                let mut world = 0u64;
                for i in 0..n {
                    eng.schedule(SimDuration::from_micros(i), |_, w| *w += 1);
                }
                eng.run(&mut world);
                assert_eq!(world, n);
                world
            });
        });
    }
    group.finish();
}

fn bench_self_scheduling_chain(c: &mut Criterion) {
    c.bench_function("engine/self_scheduling_chain_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            let mut world = 0u64;
            fn tick(eng: &mut Engine<u64>, w: &mut u64) {
                *w += 1;
                if *w < 10_000 {
                    eng.schedule(SimDuration::from_micros(1), tick);
                }
            }
            eng.schedule(SimDuration::ZERO, tick);
            eng.run(&mut world);
            world
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_event_throughput, bench_self_scheduling_chain
}
criterion_main!(benches);
