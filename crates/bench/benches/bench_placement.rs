//! E10/E13 bench: greedy UPF placement and hypervisor placement at
//! growing problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sixg_core::slicing::{HypervisorPlanner, Objective};

fn synthetic_matrix(switches: usize, sites: usize) -> Vec<Vec<f64>> {
    (0..switches)
        .map(|s| {
            (0..sites)
                .map(|c| {
                    // Deterministic pseudo-geography.
                    let d = ((s * 37 + c * 101) % 97) as f64;
                    0.5 + d / 10.0
                })
                .collect()
        })
        .collect()
}

fn bench_hypervisor_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/hypervisor");
    for (switches, sites, k) in [(20usize, 8usize, 3usize), (100, 16, 4), (400, 32, 5)] {
        let planner = HypervisorPlanner::new(synthetic_matrix(switches, sites));
        for obj in [Objective::Latency, Objective::Resilience, Objective::LoadBalance] {
            group.bench_with_input(
                BenchmarkId::new(format!("{obj:?}"), format!("{switches}x{sites}k{k}")),
                &k,
                |b, &k| {
                    b.iter(|| planner.place(k, obj).mean_latency_ms);
                },
            );
        }
    }
    group.finish();
}

fn bench_upf_placement(c: &mut Criterion) {
    use sixg_core::recommend::upf::{deploy_upfs, place_upfs, Dataplane};
    use sixg_measure::klagenfurt::KlagenfurtScenario;
    use sixg_netsim::routing::PathComputer;

    let mut scenario = KlagenfurtScenario::paper(0x6B6C_7531);
    let upfs = deploy_upfs(&mut scenario, Dataplane::HostCpu);
    let candidates: Vec<_> = upfs.iter().map(|u| u.node).collect();
    let clients: Vec<_> = scenario.ue.values().map(|&n| (n, 1.0)).collect();
    c.bench_function("placement/upf_greedy_k2_33_clients", |b| {
        let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
        b.iter(|| place_upfs(&pc, &candidates, &clients, 2).mean_latency_ms);
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_hypervisor_placement, bench_upf_placement
}
criterion_main!(benches);
