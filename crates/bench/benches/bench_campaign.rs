//! E2/E3 harness bench: the mobile campaign, sequential vs rayon.

use criterion::{criterion_group, criterion_main, Criterion};
use sixg_bench::shared_scenario;
use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
use sixg_measure::exec::run_field;
use sixg_measure::wired::WiredCampaign;
use sixg_measure::ExecBackend;

fn bench_sequential(c: &mut Criterion) {
    let s = shared_scenario();
    c.bench_function("campaign/sequential_1_pass", |b| {
        b.iter(|| MobileCampaign::new(s, CampaignConfig::default()).run().total_samples());
    });
}

fn bench_parallel(c: &mut Criterion) {
    let s = shared_scenario();
    c.bench_function("campaign/rayon_4_passes", |b| {
        b.iter(|| {
            run_field(s, CampaignConfig { passes: 4, ..Default::default() }, ExecBackend::Analytic)
                .total_samples()
        });
    });
    c.bench_function("campaign/sequential_4_passes", |b| {
        b.iter(|| {
            MobileCampaign::new(s, CampaignConfig { passes: 4, ..Default::default() })
                .run()
                .total_samples()
        });
    });
}

fn bench_wired(c: &mut Criterion) {
    let s = shared_scenario();
    c.bench_function("campaign/wired_baseline", |b| {
        b.iter(|| WiredCampaign::new(s, 2).run().count);
    });
}

fn bench_traceroute(c: &mut Criterion) {
    let s = shared_scenario();
    let campaign = MobileCampaign::new(s, CampaignConfig::default());
    c.bench_function("campaign/table1_traceroute", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            campaign.table1_traceroute(rep).total_rtt_ms()
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sequential, bench_parallel, bench_wired, bench_traceroute
}
criterion_main!(benches);
