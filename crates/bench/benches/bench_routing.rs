//! Substrate bench: BGP path selection and router-level path computation
//! on the Klagenfurt scenario topology.

use criterion::{criterion_group, criterion_main, Criterion};
use sixg_bench::shared_scenario;
use sixg_measure::klagenfurt::{CAMPUS_AS, OP_AS};
use sixg_netsim::routing::PathComputer;

fn bench_as_path(c: &mut Criterion) {
    let s = shared_scenario();
    c.bench_function("routing/bgp_as_path", |b| {
        b.iter(|| s.as_graph.as_path(OP_AS, CAMPUS_AS).expect("policy path"));
    });
}

fn bench_router_path(c: &mut Criterion) {
    let s = shared_scenario();
    let (ue, anchor) = s.table1_endpoints();
    c.bench_function("routing/router_level_path", |b| {
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        b.iter(|| pc.route(ue, anchor).expect("routable"));
    });
}

fn bench_all_campaign_routes(c: &mut Criterion) {
    let s = shared_scenario();
    let targets = s.measurement_targets();
    c.bench_function("routing/all_297_campaign_routes", |b| {
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        b.iter(|| {
            let mut hops = 0usize;
            for &ue in s.ue.values() {
                for &t in &targets {
                    hops += pc.route(ue, t).expect("routable").hop_count();
                }
            }
            hops
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_as_path, bench_router_path, bench_all_campaign_routes
}
criterion_main!(benches);
