//! Substrate bench: per-sample cost of the latency decomposition, the 5G
//! access model, and the mmWave PHY mixture.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixg_bench::shared_scenario;
use sixg_geo::CellId;
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::radio::phy::MmWavePhy;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;

fn bench_path_rtt(c: &mut Criterion) {
    let s = shared_scenario();
    let c2 = CellId::parse("C2").unwrap();
    let path = &s.routes[&(c2, 0)];
    let sampler = DelaySampler::new(&s.topo);
    let mut group = c.benchmark_group("sampling/path_rtt");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ten_hop_rtt", |b| {
        let mut rng = SimRng::from_seed(1);
        b.iter(|| sampler.rtt_ms(&path.hops, 64, &mut rng));
    });
    group.finish();
}

fn bench_access_models(c: &mut Criterion) {
    let s = shared_scenario();
    let c2 = CellId::parse("C2").unwrap();
    let access = s.access_for(c2);
    c.bench_function("sampling/fiveg_access_rtt", |b| {
        let mut rng = SimRng::from_seed(2);
        b.iter(|| access.sample_rtt_ms(&mut rng));
    });
}

fn bench_phy_mixture(c: &mut Criterion) {
    let phy = MmWavePhy::calibrated();
    c.bench_function("sampling/mmwave_phy", |b| {
        let mut rng = SimRng::from_seed(3);
        b.iter(|| phy.sample_ms(&mut rng));
    });
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("sampling/fiveg_fit_inversion", |b| {
        b.iter(|| sixg_netsim::radio::FiveGAccess::fit(68.0, 38.0));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_path_rtt, bench_access_models, bench_phy_mixture, bench_calibration
}
criterion_main!(benches);
