//! Substrate bench: event-driven reliable transport and frame delivery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sixg_geo::GeoPoint;
use sixg_netsim::protocols::transport::{transfer, TransferConfig};
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::{AsGraph, PathComputer};
use sixg_netsim::topology::{Asn, LinkParams, NodeKind, Topology};
use sixg_workloads::video::{VideoConfig, VideoStream};

fn path() -> (Topology, Vec<(sixg_netsim::NodeId, sixg_netsim::LinkId)>) {
    let mut t = Topology::new();
    let a = t.add_node(NodeKind::Server, "a", GeoPoint::new(46.6, 14.3), Asn(1));
    let m = t.add_node(NodeKind::CoreRouter, "m", GeoPoint::new(47.0, 15.4), Asn(1));
    let b = t.add_node(NodeKind::Server, "b", GeoPoint::new(48.2, 16.4), Asn(1));
    t.add_link(a, m, LinkParams::metro());
    t.add_link(m, b, LinkParams::metro());
    let g = AsGraph::new();
    let hops = PathComputer::new(&t, &g).route(a, b).unwrap().hops;
    (t, hops)
}

fn bench_transfer(c: &mut Criterion) {
    let (t, hops) = path();
    let mut group = c.benchmark_group("transport/transfer");
    for mb in [1u64, 4] {
        let bytes = mb * 1_000_000;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(mb), &bytes, |b, &bytes| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                transfer(&t, &hops, TransferConfig { bytes, ..Default::default() }, seed)
                    .transmissions
            });
        });
    }
    group.finish();
}

fn bench_lossy_transfer(c: &mut Criterion) {
    let (t, hops) = path();
    c.bench_function("transport/transfer_1mb_5pct_loss", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            transfer(&t, &hops, TransferConfig { loss_prob: 0.05, ..Default::default() }, seed)
                .retransmissions
        });
    });
}

fn bench_video_delivery(c: &mut Criterion) {
    let (t, hops) = path();
    let stream = VideoStream::new(VideoConfig::ar_headset());
    c.bench_function("transport/video_600_frames", |b| {
        let mut rng = SimRng::from_seed(5);
        b.iter(|| stream.deliver(&t, &hops, 600, |_| 0.5, &mut rng).mean_latency_ms);
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_transfer, bench_lossy_transfer, bench_video_delivery
}
criterion_main!(benches);
