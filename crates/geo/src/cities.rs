//! City coordinates used by the paper's data trace (Figure 4) and the
//! inter-AS topology built on top of them.

use crate::coord::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cities relevant to the Klagenfurt measurement campaign and its routing
/// detour, plus a few extra PoPs useful for larger synthetic topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum City {
    /// Klagenfurt, Austria — measurement sector, University anchor.
    Klagenfurt,
    /// Vienna, Austria — primary Austrian transit/IXP location (VIX).
    Vienna,
    /// Prague, Czech Republic — peering.cz PoP on the observed detour.
    Prague,
    /// Bucharest, Romania — zet.net PoP, farthest point of the detour.
    Bucharest,
    /// Graz, Austria — intermediate aggregation on the A2 southern corridor.
    Graz,
    /// Frankfurt, Germany — DE-CIX, common European transit hub.
    Frankfurt,
    /// Milan, Italy — MIX, southern European transit hub.
    Milan,
    /// Skopje, North Macedonia — partner-site of the paper's project.
    Skopje,
}

impl City {
    /// All cities, in a stable order.
    pub const ALL: [City; 8] = [
        City::Klagenfurt,
        City::Vienna,
        City::Prague,
        City::Bucharest,
        City::Graz,
        City::Frankfurt,
        City::Milan,
        City::Skopje,
    ];

    /// WGS-84 position of the city centre.
    pub fn position(self) -> GeoPoint {
        match self {
            City::Klagenfurt => GeoPoint::new(46.6247, 14.3050),
            City::Vienna => GeoPoint::new(48.2082, 16.3738),
            City::Prague => GeoPoint::new(50.0755, 14.4378),
            City::Bucharest => GeoPoint::new(44.4268, 26.1025),
            City::Graz => GeoPoint::new(47.0707, 15.4395),
            City::Frankfurt => GeoPoint::new(50.1109, 8.6821),
            City::Milan => GeoPoint::new(45.4642, 9.1900),
            City::Skopje => GeoPoint::new(41.9981, 21.4254),
        }
    }

    /// Short code used in synthetic reverse-DNS names (`vie`, `prg`, …).
    pub fn code(self) -> &'static str {
        match self {
            City::Klagenfurt => "klu",
            City::Vienna => "vie",
            City::Prague => "prg",
            City::Bucharest => "buh",
            City::Graz => "grz",
            City::Frankfurt => "fra",
            City::Milan => "mil",
            City::Skopje => "skp",
        }
    }
}

impl fmt::Display for City {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            City::Klagenfurt => "Klagenfurt",
            City::Vienna => "Vienna",
            City::Prague => "Prague",
            City::Bucharest => "Bucharest",
            City::Graz => "Graz",
            City::Frankfurt => "Frankfurt",
            City::Milan => "Milan",
            City::Skopje => "Skopje",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_distances_match_geography() {
        // Sanity anchors (±10% tolerance on great-circle distances).
        let cases = [
            (City::Klagenfurt, City::Vienna, 234.0),
            (City::Vienna, City::Prague, 252.0),
            (City::Prague, City::Bucharest, 1078.0),
            (City::Bucharest, City::Vienna, 855.0),
        ];
        for (a, b, expect) in cases {
            let d = a.position().distance_km(b.position());
            assert!((d - expect).abs() / expect < 0.10, "{a}-{b}: got {d}, want ~{expect}");
        }
    }

    #[test]
    fn detour_legs_sum_to_about_2544_km() {
        // Figure 4: Klagenfurt→Vienna→Prague→Bucharest→Vienna→Klagenfurt-ish
        // covers 2544 km in total. Our great-circle legs for the core detour
        // (Vienna→Prague→Bucharest→Vienna) plus access legs land in the same
        // range; the exact reproduction lives in sixg-core::detour.
        let legs = [
            (City::Klagenfurt, City::Vienna),
            (City::Vienna, City::Prague),
            (City::Prague, City::Bucharest),
            (City::Bucharest, City::Vienna),
        ];
        let total: f64 = legs.iter().map(|(a, b)| a.position().distance_km(b.position())).sum();
        assert!((total - 2419.0).abs() < 100.0, "got {total}");
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<_> = City::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), City::ALL.len());
    }
}
