//! Polyline routes over geographic waypoints.
//!
//! Figure 4 of the paper plots the geographic trace of a local service
//! request whose packets travel Klagenfurt → Vienna → Prague → Bucharest →
//! Vienna → Klagenfurt, "a total distance of 2544 km". This module
//! provides the polyline abstraction that the detour analysis in
//! `sixg-core` uses to compute such route lengths and detour ratios.

use crate::coord::GeoPoint;
use serde::{Deserialize, Serialize};

/// Multiplier converting great-circle distance into realistic fibre route
/// length. Long-haul European fibre follows highway/rail rights-of-way and
/// is typically 4–10 % longer than the geodesic.
pub const FIBRE_ROUTE_FACTOR: f64 = 1.05;

/// An ordered sequence of geographic waypoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    /// Waypoints in travel order.
    pub points: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline. At least one point is required.
    pub fn new(points: Vec<GeoPoint>) -> Self {
        assert!(!points.is_empty(), "polyline needs at least one point");
        Self { points }
    }

    /// Number of legs (segments).
    pub fn legs(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Great-circle length, kilometres.
    pub fn geodesic_km(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance_km(w[1])).sum()
    }

    /// Estimated physical fibre length ([`FIBRE_ROUTE_FACTOR`] × geodesic).
    pub fn fibre_km(&self) -> f64 {
        self.geodesic_km() * FIBRE_ROUTE_FACTOR
    }

    /// Straight-line (great-circle) distance between the endpoints, km.
    pub fn direct_km(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.points[0].distance_km(*self.points.last().unwrap())
    }

    /// Detour ratio: route length divided by direct endpoint distance.
    ///
    /// A ratio of 1.0 means a geodesic path; the paper's Figure 4 route has
    /// a detour ratio in the hundreds because the endpoints are < 5 km
    /// apart while packets travel ~2 544 km. Returns `f64::INFINITY` when
    /// the endpoints coincide but the route has positive length.
    pub fn detour_ratio(&self) -> f64 {
        let direct = self.direct_km();
        let route = self.geodesic_km();
        if direct < 1e-9 {
            if route < 1e-9 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        route / direct
    }

    /// Appends a waypoint.
    pub fn push(&mut self, p: GeoPoint) {
        self.points.push(p);
    }

    /// Point at fraction `frac` in `[0,1]` of the route length, walking
    /// leg by leg.
    pub fn point_at(&self, frac: f64) -> GeoPoint {
        let frac = frac.clamp(0.0, 1.0);
        let total = self.geodesic_km();
        if total < 1e-12 || self.points.len() == 1 {
            return self.points[0];
        }
        let mut remaining = frac * total;
        for w in self.points.windows(2) {
            let leg = w[0].distance_km(w[1]);
            if remaining <= leg {
                return w[0].interpolate(w[1], if leg < 1e-12 { 0.0 } else { remaining / leg });
            }
            remaining -= leg;
        }
        *self.points.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::City;

    fn detour_route() -> Polyline {
        Polyline::new(vec![
            City::Klagenfurt.position(),
            City::Vienna.position(),
            City::Prague.position(),
            City::Bucharest.position(),
            City::Vienna.position(),
        ])
    }

    #[test]
    fn figure4_route_fibre_length_near_2544_km() {
        let r = detour_route();
        let km = r.fibre_km();
        assert!((km - 2544.0).abs() < 120.0, "got {km}");
    }

    #[test]
    fn detour_ratio_large_for_figure4_route() {
        // Endpoints Klagenfurt -> Vienna: the full paper flow returns to
        // Klagenfurt; even the Vienna-terminated prefix has a big detour.
        let r = detour_route();
        assert!(r.detour_ratio() > 10.0);
    }

    #[test]
    fn single_point_is_degenerate() {
        let r = Polyline::new(vec![City::Vienna.position()]);
        assert_eq!(r.legs(), 0);
        assert_eq!(r.geodesic_km(), 0.0);
        assert_eq!(r.detour_ratio(), 1.0);
    }

    #[test]
    fn round_trip_has_infinite_detour_ratio() {
        let mut r = detour_route();
        r.push(City::Klagenfurt.position());
        assert!(r.detour_ratio().is_infinite());
    }

    #[test]
    fn point_at_endpoints() {
        let r = detour_route();
        assert!(r.point_at(0.0).distance_km(City::Klagenfurt.position()) < 1e-6);
        assert!(r.point_at(1.0).distance_km(City::Vienna.position()) < 1e-6);
    }

    #[test]
    fn point_at_midway_lies_on_route() {
        let r = detour_route();
        let mid = r.point_at(0.5);
        // Midpoint must be between Prague and Bucharest for this route.
        let to_prague = mid.distance_km(City::Prague.position());
        let to_buch = mid.distance_km(City::Bucharest.position());
        assert!(to_prague < 800.0 && to_buch < 800.0, "prg {to_prague} buh {to_buch}");
    }

    #[test]
    fn geodesic_is_sum_of_legs() {
        let r = detour_route();
        let legs: f64 = r.points.windows(2).map(|w| w[0].distance_km(w[1])).sum();
        assert!((r.geodesic_km() - legs).abs() < 1e-9);
    }
}
