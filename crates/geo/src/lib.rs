//! # sixg-geo — geographic substrate for the `sixg` simulator
//!
//! The measurement campaign in the paper (Section IV) is organised around a
//! *geographical partitioning methodology*: an urban sector is divided into
//! 1 km × 1 km cells labelled by column letter and row number (`A1` … `F7`),
//! a mobile node traverses the cells along the street grid, and all latency
//! samples are aggregated per cell.
//!
//! This crate provides everything geographic the rest of the workspace
//! needs:
//!
//! * [`coord`] — WGS-84 points, haversine distances, bearings and
//!   destination points;
//! * [`grid`] — the sector/cell partition ([`grid::GridSpec`],
//!   [`grid::CellId`]) with point↔cell mapping;
//! * [`population`] — a synthetic population-density raster standing in for
//!   the Statistik Austria data the paper uses, including the
//!   "< 1000 inhabitants/km² ⇒ border cell" rule;
//! * [`mobility`] — Manhattan-grid mobility with per-cell dwell times plus a
//!   random-waypoint baseline;
//! * [`cities`] — coordinates of the cities appearing in the paper's data
//!   trace (Klagenfurt, Vienna, Prague, Bucharest, …);
//! * [`route`] — polyline routes and their total length (used to reproduce
//!   the 2 544 km detour of Figure 4).
//!
//! Everything here is deterministic and `no_std`-adjacent plain math; all
//! randomness is injected by callers through explicit seeds.

pub mod cities;
pub mod coord;
pub mod grid;
pub mod mobility;
pub mod population;
pub mod route;

pub use cities::City;
pub use coord::GeoPoint;
pub use grid::{CellId, GridSpec};
pub use population::DensityRaster;
pub use route::Polyline;
