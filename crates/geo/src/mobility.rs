//! Mobility models for the measurement campaign.
//!
//! The campaign drives a mobile node through the sector "influenced by
//! adherence to traffic flow dynamics and local traffic regulations", which
//! makes per-cell dwell time — and hence per-cell sample count — uneven.
//! We model this with a Manhattan-grid traversal (the standard urban
//! mobility abstraction of Maeda et al., which the paper cites for its
//! partitioning methodology) plus a random-waypoint baseline.
//!
//! Randomness is injected via a caller-provided deterministic hash seed so
//! identical scenarios produce identical routes.

use crate::grid::{CellId, GridSpec};
use serde::{Deserialize, Serialize};

/// One leg of a traversal: the cell visited and the dwell time spent in it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Visit {
    /// Cell being traversed.
    pub cell: CellId,
    /// Dwell time in seconds.
    pub dwell_s: f64,
}

/// A full traversal of the sector by one mobile node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Traversal {
    /// Ordered list of visits. Cells may repeat (streets re-enter cells).
    pub visits: Vec<Visit>,
}

impl Traversal {
    /// Total dwell time of the traversal, seconds.
    pub fn duration_s(&self) -> f64 {
        self.visits.iter().map(|v| v.dwell_s).sum()
    }

    /// Distinct cells visited, in first-visit order.
    pub fn distinct_cells(&self) -> Vec<CellId> {
        let mut seen = Vec::new();
        for v in &self.visits {
            if !seen.contains(&v.cell) {
                seen.push(v.cell);
            }
        }
        seen
    }

    /// Total dwell time per cell, summed over repeated visits.
    pub fn dwell_per_cell(&self) -> Vec<(CellId, f64)> {
        let mut out: Vec<(CellId, f64)> = Vec::new();
        for v in &self.visits {
            match out.iter_mut().find(|(c, _)| *c == v.cell) {
                Some((_, d)) => *d += v.dwell_s,
                None => out.push((v.cell, v.dwell_s)),
            }
        }
        out
    }
}

/// Deterministic 64-bit mix (splitmix64) used to derive per-cell factors.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0,1)` from a hash state.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Manhattan-grid mobility: the node sweeps the grid in a boustrophedon
/// (lawn-mower) pattern — the deterministic idealisation of a street
/// traversal that covers every reachable cell once.
#[derive(Debug, Clone)]
pub struct ManhattanMobility {
    /// Mean dwell time per cell, seconds (cell size / mean urban speed).
    pub mean_dwell_s: f64,
    /// Relative dwell variability caused by traffic lights & congestion
    /// (0 = constant speed).
    pub dwell_jitter: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl ManhattanMobility {
    /// Default urban parameters: 1 km cells at ~30 km/h effective speed
    /// gives 120 s per cell; ±40 % congestion variability.
    pub fn urban(seed: u64) -> Self {
        Self { mean_dwell_s: 120.0, dwell_jitter: 0.4, seed }
    }

    /// Generates a traversal over `grid` restricted to `included` cells
    /// (cells not in `included` are skipped, emulating blocked or
    /// out-of-scope areas — the paper traverses 33 of 42 cells).
    pub fn traverse(&self, grid: &GridSpec, included: &[CellId]) -> Traversal {
        // Index inclusion by grid position up front: the naive
        // `included.contains(&cell)` scan is O(cells × included), which at
        // continental scale (10⁶ cells, 10⁶ included) is 10¹² comparisons.
        // The bitmap makes the sweep O(cells + included) with identical
        // output.
        let mut in_set = vec![false; grid.len()];
        for cell in included {
            if grid.contains(*cell) {
                in_set[cell.row as usize * grid.cols as usize + cell.col as usize] = true;
            }
        }
        let mut visits = Vec::with_capacity(included.len());
        for r in 0..grid.rows {
            let cols: Vec<u32> =
                if r % 2 == 0 { (0..grid.cols).collect() } else { (0..grid.cols).rev().collect() };
            for c in cols {
                let cell = CellId::new(c, r);
                if !in_set[r as usize * grid.cols as usize + c as usize] {
                    continue;
                }
                let h = mix64(self.seed ^ mix64((c as u64) << 32 | r as u64));
                let jitter = 1.0 + self.dwell_jitter * (2.0 * unit_f64(h) - 1.0);
                visits.push(Visit { cell, dwell_s: self.mean_dwell_s * jitter.max(0.05) });
            }
        }
        Traversal { visits }
    }
}

/// Random-waypoint mobility over cell centroids: the classical baseline
/// model. Produces `hops` legs between uniformly chosen included cells.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    /// Mean dwell per visited cell, seconds.
    pub mean_dwell_s: f64,
    /// Number of waypoints to draw.
    pub hops: usize,
    /// Scenario seed.
    pub seed: u64,
}

impl RandomWaypoint {
    /// Generates a traversal with `hops` uniformly random waypoints.
    pub fn traverse(&self, _grid: &GridSpec, included: &[CellId]) -> Traversal {
        assert!(!included.is_empty(), "need at least one included cell");
        let mut visits = Vec::with_capacity(self.hops);
        let mut state = mix64(self.seed);
        for _ in 0..self.hops {
            state = mix64(state);
            let idx = (state % included.len() as u64) as usize;
            state = mix64(state ^ 0xA5A5_5A5A_DEAD_BEEF);
            let dwell = self.mean_dwell_s * (0.5 + unit_f64(state));
            visits.push(Visit { cell: included[idx], dwell_s: dwell });
        }
        Traversal { visits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::GeoPoint;

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0)
    }

    fn all_cells(g: &GridSpec) -> Vec<CellId> {
        g.cells().collect()
    }

    #[test]
    fn lawnmower_visits_every_included_cell_once() {
        let g = grid();
        let included = all_cells(&g);
        let t = ManhattanMobility::urban(7).traverse(&g, &included);
        assert_eq!(t.visits.len(), 42);
        assert_eq!(t.distinct_cells().len(), 42);
    }

    #[test]
    fn exclusion_skips_cells() {
        let g = grid();
        let mut included = all_cells(&g);
        included.retain(|c| c.label() != "A1" && c.label() != "F7");
        let t = ManhattanMobility::urban(7).traverse(&g, &included);
        assert_eq!(t.visits.len(), 40);
        assert!(!t.distinct_cells().iter().any(|c| c.label() == "A1"));
    }

    #[test]
    fn traversal_is_deterministic_in_seed() {
        let g = grid();
        let included = all_cells(&g);
        let a = ManhattanMobility::urban(42).traverse(&g, &included);
        let b = ManhattanMobility::urban(42).traverse(&g, &included);
        let c = ManhattanMobility::urban(43).traverse(&g, &included);
        assert_eq!(a.visits, b.visits);
        assert_ne!(
            a.visits.iter().map(|v| v.dwell_s).collect::<Vec<_>>(),
            c.visits.iter().map(|v| v.dwell_s).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dwell_stays_within_jitter_band() {
        let g = grid();
        let m = ManhattanMobility { mean_dwell_s: 100.0, dwell_jitter: 0.4, seed: 3 };
        let t = m.traverse(&g, &all_cells(&g));
        for v in &t.visits {
            assert!(v.dwell_s >= 60.0 - 1e-9 && v.dwell_s <= 140.0 + 1e-9, "dwell {}", v.dwell_s);
        }
    }

    #[test]
    fn duration_is_sum_of_dwells() {
        let g = grid();
        let t = ManhattanMobility::urban(1).traverse(&g, &all_cells(&g));
        let sum: f64 = t.visits.iter().map(|v| v.dwell_s).sum();
        assert!((t.duration_s() - sum).abs() < 1e-9);
    }

    #[test]
    fn random_waypoint_dwell_positive_and_deterministic() {
        let g = grid();
        let included = all_cells(&g);
        let rw = RandomWaypoint { mean_dwell_s: 60.0, hops: 100, seed: 11 };
        let a = rw.traverse(&g, &included);
        let b = rw.traverse(&g, &included);
        assert_eq!(a.visits, b.visits);
        assert_eq!(a.visits.len(), 100);
        assert!(a.visits.iter().all(|v| v.dwell_s > 0.0));
    }

    #[test]
    fn dwell_per_cell_merges_repeats() {
        let g = grid();
        let rw = RandomWaypoint { mean_dwell_s: 60.0, hops: 500, seed: 5 };
        let t = rw.traverse(&g, &all_cells(&g));
        let per = t.dwell_per_cell();
        let total: f64 = per.iter().map(|(_, d)| d).sum();
        assert!((total - t.duration_s()).abs() < 1e-6);
        assert!(per.len() <= 42);
    }
}
