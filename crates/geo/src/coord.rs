//! WGS-84 coordinates and great-circle geometry.
//!
//! The simulator only needs city-scale to continent-scale distances, so the
//! spherical-earth (haversine) model is accurate to well under 0.5 % — far
//! below the jitter of any latency measurement the paper reports.

use serde::{Deserialize, Serialize};

/// Mean earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Speed of light in vacuum, km/s.
pub const C_VACUUM_KM_S: f64 = 299_792.458;

/// Effective propagation speed in optical fibre (≈ 2/3 c), km/s.
///
/// This is the constant used throughout the workspace to convert route
/// length into propagation delay; 5 µs/km is the usual engineering figure
/// and corresponds to `1.0 / (C_VACUUM_KM_S * 2/3)`.
pub const C_FIBRE_KM_S: f64 = C_VACUUM_KM_S * 2.0 / 3.0;

/// A point on the WGS-84 sphere, in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Valid range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east. Valid range `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, normalising longitude into `[-180, 180)` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        Self { lat, lon }
    }

    /// Latitude/longitude in radians.
    #[inline]
    pub fn to_radians(self) -> (f64, f64) {
        (self.lat.to_radians(), self.lon.to_radians())
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (la1, lo1) = self.to_radians();
        let (la2, lo2) = other.to_radians();
        let dlat = la2 - la1;
        let dlon = lo2 - lo1;
        let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// Initial bearing from `self` towards `other`, degrees in `[0, 360)`.
    pub fn bearing_deg(self, other: GeoPoint) -> f64 {
        let (la1, lo1) = self.to_radians();
        let (la2, lo2) = other.to_radians();
        let dlon = lo2 - lo1;
        let y = dlon.sin() * la2.cos();
        let x = la1.cos() * la2.sin() - la1.sin() * la2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// Destination point after travelling `distance_km` along the initial
    /// `bearing_deg` great circle.
    pub fn destination(self, bearing_deg: f64, distance_km: f64) -> GeoPoint {
        let (la1, lo1) = self.to_radians();
        let brg = bearing_deg.to_radians();
        let ang = distance_km / EARTH_RADIUS_KM;
        let la2 = (la1.sin() * ang.cos() + la1.cos() * ang.sin() * brg.cos()).asin();
        let lo2 =
            lo1 + (brg.sin() * ang.sin() * la1.cos()).atan2(ang.cos() - la1.sin() * la2.sin());
        GeoPoint::new(la2.to_degrees(), lo2.to_degrees())
    }

    /// Point `frac` of the way from `self` to `other` along the great
    /// circle (`frac` in `[0, 1]`).
    pub fn interpolate(self, other: GeoPoint, frac: f64) -> GeoPoint {
        let d = self.distance_km(other);
        if d < 1e-9 {
            return self;
        }
        self.destination(self.bearing_deg(other), d * frac.clamp(0.0, 1.0))
    }

    /// One-way light-in-fibre propagation delay to `other`, in seconds.
    pub fn fibre_delay_s(self, other: GeoPoint) -> f64 {
        self.distance_km(other) / C_FIBRE_KM_S
    }
}

/// One-way fibre propagation delay for a given route length, seconds.
#[inline]
pub fn fibre_delay_for_km(km: f64) -> f64 {
    km / C_FIBRE_KM_S
}

#[cfg(test)]
mod tests {
    use super::*;

    fn klagenfurt() -> GeoPoint {
        GeoPoint::new(46.6247, 14.3050)
    }
    fn vienna() -> GeoPoint {
        GeoPoint::new(48.2082, 16.3738)
    }

    #[test]
    fn distance_klagenfurt_vienna_is_about_234_km() {
        let d = klagenfurt().distance_km(vienna());
        assert!((d - 234.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = klagenfurt();
        let b = vienna();
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        assert!(a.distance_km(a) < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let a = klagenfurt();
        let brg = a.bearing_deg(vienna());
        let d = a.distance_km(vienna());
        let reached = a.destination(brg, d);
        assert!(
            reached.distance_km(vienna()) < 0.5,
            "missed by {} km",
            reached.distance_km(vienna())
        );
    }

    #[test]
    fn interpolate_midpoint_is_halfway() {
        let a = klagenfurt();
        let b = vienna();
        let m = a.interpolate(b, 0.5);
        let d_am = a.distance_km(m);
        let d_mb = m.distance_km(b);
        assert!((d_am - d_mb).abs() < 0.5);
    }

    #[test]
    fn fibre_delay_is_about_5_us_per_km() {
        // 1000 km should be ~5 ms one-way.
        let s = fibre_delay_for_km(1000.0);
        assert!((s - 0.005).abs() < 0.0003, "got {s}");
    }

    #[test]
    fn longitude_normalisation() {
        let p = GeoPoint::new(0.0, 190.0);
        assert!((p.lon - (-170.0)).abs() < 1e-9);
        let q = GeoPoint::new(95.0, 0.0);
        assert_eq!(q.lat, 90.0);
    }

    #[test]
    fn bearing_north_is_zero() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 0.0);
        assert!(a.bearing_deg(b).abs() < 1e-6);
    }
}
