//! Grid segmentation of an urban sector into labelled cells.
//!
//! The paper divides each sector `S` into cells `SC ∈ S` of 1 km side
//! length, labelled by column letter (A, B, C, …) and row number (1, 2, …).
//! The Klagenfurt scenario of Figure 1 uses a 6 × 7 grid (A–F × 1–7) of
//! which 33 cells were traversed.
//!
//! Cells are laid out with `A1` at the *north-west* corner: columns advance
//! eastwards, rows advance southwards, matching the reading order of the
//! paper's heatmaps.
//!
//! Since the continental-grid work, indices are 32-bit: grids up to
//! 2³²−1 cells per side are representable, and columns beyond `Z` use
//! spreadsheet-style multi-letter labels (`AA`, `AB`, …). Labels for the
//! first 26 columns are byte-identical to the historical single-letter
//! form, so every committed report and golden fixture is unaffected.

use crate::coord::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Identifier of a grid cell: column letter(s) + 1-based row number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Zero-based column index (0 = `A`).
    pub col: u32,
    /// Zero-based row index (0 = row `1`).
    pub row: u32,
}

impl CellId {
    /// Creates a cell id from zero-based column and row indices.
    pub const fn new(col: u32, row: u32) -> Self {
        Self { col, row }
    }

    /// Parses labels such as `"C2"` or `"AB17"`: one or more column
    /// letters (spreadsheet order: `A`–`Z`, `AA`, `AB`, …) followed by a
    /// 1-based row number.
    pub fn parse(label: &str) -> Option<Self> {
        let letters: String = label.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
        if letters.is_empty() {
            return None;
        }
        let rest = &label[letters.len()..];
        // Spreadsheet (bijective base-26) decoding: A=1 … Z=26, AA=27.
        let mut col: u64 = 0;
        for c in letters.chars() {
            let c = c.to_ascii_uppercase();
            col = col.checked_mul(26)?.checked_add((c as u8 - b'A') as u64 + 1)?;
            if col > u32::MAX as u64 {
                return None;
            }
        }
        let row: u32 = rest.parse().ok()?;
        if row == 0 {
            return None;
        }
        Some(Self::new((col - 1) as u32, row - 1))
    }

    /// Human-readable label, e.g. `C2` or `AB17`. Columns 0–25 render as
    /// the historical single letter `A`–`Z`; larger columns extend in
    /// spreadsheet order (`AA`, `AB`, …).
    pub fn label(&self) -> String {
        let mut letters = Vec::new();
        // Bijective base-26 encoding of col+1.
        let mut n = self.col as u64 + 1;
        while n > 0 {
            let rem = ((n - 1) % 26) as u8;
            letters.push(b'A' + rem);
            n = (n - 1) / 26;
        }
        letters.reverse();
        format!("{}{}", String::from_utf8(letters).unwrap(), self.row + 1)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl FromStr for CellId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("invalid cell label: {s:?}"))
    }
}

/// A rectangular grid of square cells anchored at a geographic origin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSpec {
    /// North-west corner of cell `A1`.
    pub origin: GeoPoint,
    /// Number of columns (west→east).
    pub cols: u32,
    /// Number of rows (north→south).
    pub rows: u32,
    /// Cell side length in kilometres (1.0 in the paper).
    pub cell_km: f64,
}

impl GridSpec {
    /// Creates a grid. Panics if dimensions are zero or the cell size is
    /// non-positive.
    pub fn new(origin: GeoPoint, cols: u32, rows: u32, cell_km: f64) -> Self {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        assert!(cell_km > 0.0, "cell size must be positive");
        Self { origin, cols, rows, cell_km }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// True when the grid contains no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all cells in row-major order (`A1, B1, …, A2, …`).
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| CellId::new(c, r)))
    }

    /// True when the cell lies inside the grid.
    pub fn contains(&self, cell: CellId) -> bool {
        cell.col < self.cols && cell.row < self.rows
    }

    /// Geographic centre of a cell. Panics when the cell is outside the
    /// grid.
    pub fn centroid(&self, cell: CellId) -> GeoPoint {
        assert!(self.contains(cell), "cell {cell} outside grid");
        let east_km = (cell.col as f64 + 0.5) * self.cell_km;
        let south_km = (cell.row as f64 + 0.5) * self.cell_km;
        self.origin.destination(90.0, east_km).destination(180.0, south_km)
    }

    /// Maps a point to the cell containing it, or `None` if outside the
    /// grid footprint.
    ///
    /// Uses a local equirectangular projection around the origin — exact to
    /// centimetres at the ≤ 10 km extents the scenarios use.
    pub fn locate(&self, p: GeoPoint) -> Option<CellId> {
        let (east_km, south_km) = self.offsets_km(p);
        if east_km < 0.0 || south_km < 0.0 {
            return None;
        }
        let col = (east_km / self.cell_km) as u64;
        let row = (south_km / self.cell_km) as u64;
        if col >= self.cols as u64 || row >= self.rows as u64 {
            return None;
        }
        Some(CellId::new(col as u32, row as u32))
    }

    /// Kilometre offsets (east, south) of `p` relative to the grid origin.
    pub fn offsets_km(&self, p: GeoPoint) -> (f64, f64) {
        let lat_mid = (self.origin.lat + p.lat) / 2.0;
        let km_per_deg_lat = 111.1949; // 2πR/360
        let km_per_deg_lon = km_per_deg_lat * lat_mid.to_radians().cos();
        let east = (p.lon - self.origin.lon) * km_per_deg_lon;
        let south = (self.origin.lat - p.lat) * km_per_deg_lat;
        (east, south)
    }

    /// Chebyshev (king-move) distance between two cells, in cells.
    pub fn cell_distance(&self, a: CellId, b: CellId) -> u32 {
        let dc = a.col.abs_diff(b.col);
        let dr = a.row.abs_diff(b.row);
        dc.max(dr)
    }

    /// The 4-neighbourhood of a cell, clipped to the grid.
    pub fn neighbours4(&self, cell: CellId) -> Vec<CellId> {
        let mut out = Vec::with_capacity(4);
        if cell.col > 0 {
            out.push(CellId::new(cell.col - 1, cell.row));
        }
        if cell.col + 1 < self.cols {
            out.push(CellId::new(cell.col + 1, cell.row));
        }
        if cell.row > 0 {
            out.push(CellId::new(cell.col, cell.row - 1));
        }
        if cell.row + 1 < self.rows {
            out.push(CellId::new(cell.col, cell.row + 1));
        }
        out
    }

    /// True when the cell touches the grid boundary. Border cells are where
    /// the paper observes "< 10 measurements" (Figure 2's `0.0` markers).
    pub fn is_border(&self, cell: CellId) -> bool {
        cell.col == 0 || cell.row == 0 || cell.col + 1 == self.cols || cell.row + 1 == self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0)
    }

    #[test]
    fn parse_and_label_round_trip() {
        for label in ["A1", "C2", "E3", "F7", "B3", "E5"] {
            let c = CellId::parse(label).unwrap();
            assert_eq!(c.label(), label);
        }
        assert_eq!(CellId::parse("C2"), Some(CellId::new(2, 1)));
        assert!(CellId::parse("").is_none());
        assert!(CellId::parse("7C").is_none());
        assert!(CellId::parse("C0").is_none());
    }

    #[test]
    fn multi_letter_labels_follow_spreadsheet_order() {
        assert_eq!(CellId::new(25, 0).label(), "Z1");
        assert_eq!(CellId::new(26, 0).label(), "AA1");
        assert_eq!(CellId::new(27, 4).label(), "AB5");
        assert_eq!(CellId::new(26 + 26 * 26, 0).label(), "AAA1");
        assert_eq!(CellId::parse("AA1"), Some(CellId::new(26, 0)));
        assert_eq!(CellId::parse("AB5"), Some(CellId::new(27, 4)));
        // Round-trips across the single→multi letter boundary and beyond.
        for col in [0, 25, 26, 51, 52, 701, 702, 999, 18_277, 18_278] {
            for row in [0, 8, 999] {
                let c = CellId::new(col, row);
                assert_eq!(CellId::parse(&c.label()), Some(c), "col {col} row {row}");
            }
        }
    }

    #[test]
    fn single_letter_labels_unchanged_by_widening() {
        // The historical single-letter form must stay byte-identical:
        // committed reports and golden fixtures embed these labels.
        for col in 0..26u32 {
            let want = format!("{}{}", (b'A' + col as u8) as char, 4);
            assert_eq!(CellId::new(col, 3).label(), want);
        }
    }

    #[test]
    fn grid_has_42_cells_in_paper_layout() {
        let g = grid();
        assert_eq!(g.len(), 42);
        let all: Vec<_> = g.cells().collect();
        assert_eq!(all.len(), 42);
        assert_eq!(all[0].label(), "A1");
        assert_eq!(all[41].label(), "F7");
    }

    #[test]
    fn centroid_locates_back_to_same_cell() {
        let g = grid();
        for cell in g.cells() {
            let c = g.centroid(cell);
            assert_eq!(g.locate(c), Some(cell), "cell {cell}");
        }
    }

    #[test]
    fn locate_outside_grid_is_none() {
        let g = grid();
        assert_eq!(g.locate(GeoPoint::new(46.80, 14.25)), None); // far north
        assert_eq!(g.locate(GeoPoint::new(46.65, 14.10)), None); // far west
        assert_eq!(g.locate(GeoPoint::new(46.40, 14.25)), None); // far south
    }

    #[test]
    fn neighbours_clip_at_borders() {
        let g = grid();
        assert_eq!(g.neighbours4(CellId::parse("A1").unwrap()).len(), 2);
        assert_eq!(g.neighbours4(CellId::parse("C3").unwrap()).len(), 4);
        assert_eq!(g.neighbours4(CellId::parse("F7").unwrap()).len(), 2);
    }

    #[test]
    fn border_detection() {
        let g = grid();
        assert!(g.is_border(CellId::parse("A1").unwrap()));
        assert!(g.is_border(CellId::parse("F4").unwrap()));
        assert!(g.is_border(CellId::parse("C7").unwrap()));
        assert!(!g.is_border(CellId::parse("C3").unwrap()));
        assert!(!g.is_border(CellId::parse("B2").unwrap()));
    }

    #[test]
    fn cell_distance_is_chebyshev() {
        let g = grid();
        let a = CellId::parse("C2").unwrap();
        let b = CellId::parse("E3").unwrap();
        assert_eq!(g.cell_distance(a, b), 2);
        assert_eq!(g.cell_distance(a, a), 0);
    }

    #[test]
    fn centroids_are_about_cell_km_apart() {
        let g = grid();
        let a = g.centroid(CellId::parse("C3").unwrap());
        let b = g.centroid(CellId::parse("D3").unwrap());
        let d = a.distance_km(b);
        assert!((d - 1.0).abs() < 0.02, "got {d}");
    }

    #[test]
    fn c2_to_e3_under_5km_as_in_table1() {
        // The paper notes the Table I endpoints (C2 mobile node, E3 anchor)
        // are separated by less than 5 km.
        let g = grid();
        let a = g.centroid(CellId::parse("C2").unwrap());
        let b = g.centroid(CellId::parse("E3").unwrap());
        assert!(a.distance_km(b) < 5.0);
    }

    #[test]
    fn continental_scale_grid_is_representable() {
        let g = GridSpec::new(GeoPoint::new(46.65, 14.25), 1000, 1000, 1.0);
        assert_eq!(g.len(), 1_000_000);
        let far = CellId::new(999, 999);
        assert!(g.contains(far));
        assert_eq!(far.label(), "ALL1000");
        assert!(g.is_border(far));
    }
}
