//! Synthetic population-density raster.
//!
//! The paper aligns its measurements with the Statistik Austria absolute
//! population-density raster and observes that cells with fewer than ten
//! measurements "occur primarily in border regions, where population
//! density falls below 1000 inhabitants per km²".
//!
//! We cannot redistribute the Statistik Austria raster, so this module
//! generates a deterministic synthetic density field with the same
//! *structure*: a dense urban core that decays towards the sector border,
//! with a river/greenbelt corridor of suppressed density. The substitution
//! preserves the property the campaign logic depends on — which cells fall
//! below the 1000 /km² threshold.

use crate::grid::{CellId, GridSpec};
use serde::{Deserialize, Serialize};

/// Density threshold below which the paper marks a cell as sparsely
/// populated (inhabitants per km²).
pub const SPARSE_THRESHOLD: f64 = 1000.0;

/// A per-cell population-density field (inhabitants per km²).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityRaster {
    cols: u32,
    rows: u32,
    /// Row-major densities.
    density: Vec<f64>,
}

impl DensityRaster {
    /// Builds a raster from an explicit row-major density vector.
    pub fn from_rows(cols: u32, rows: u32, density: Vec<f64>) -> Self {
        assert_eq!(density.len(), cols as usize * rows as usize, "density len mismatch");
        assert!(density.iter().all(|d| *d >= 0.0), "densities must be non-negative");
        Self { cols, rows, density }
    }

    /// Synthesises an urban density field over `grid`.
    ///
    /// The model is a radially decaying core centred on `(core_col,
    /// core_row)` with peak density `peak` and exponential decay length
    /// `decay_cells`, deterministic in the grid dimensions. This mirrors the
    /// monocentric-city density profile classically fitted to European
    /// mid-size cities.
    pub fn synth_urban(
        grid: &GridSpec,
        core_col: f64,
        core_row: f64,
        peak: f64,
        decay_cells: f64,
    ) -> Self {
        let mut density = Vec::with_capacity(grid.len());
        for r in 0..grid.rows {
            for c in 0..grid.cols {
                let dc = c as f64 - core_col;
                let dr = r as f64 - core_row;
                let dist = (dc * dc + dr * dr).sqrt();
                density.push(peak * (-dist / decay_cells).exp());
            }
        }
        Self { cols: grid.cols, rows: grid.rows, density }
    }

    /// Density of `cell`, inhabitants per km².
    pub fn density(&self, cell: CellId) -> f64 {
        assert!(cell.col < self.cols && cell.row < self.rows, "cell {cell} outside raster");
        self.density[cell.row as usize * self.cols as usize + cell.col as usize]
    }

    /// Mutable access, for scenario calibration.
    pub fn set_density(&mut self, cell: CellId, value: f64) {
        assert!(value >= 0.0);
        assert!(cell.col < self.cols && cell.row < self.rows, "cell {cell} outside raster");
        self.density[cell.row as usize * self.cols as usize + cell.col as usize] = value;
    }

    /// True when the cell is below [`SPARSE_THRESHOLD`].
    pub fn is_sparse(&self, cell: CellId) -> bool {
        self.density(cell) < SPARSE_THRESHOLD
    }

    /// All sparse cells, row-major.
    pub fn sparse_cells(&self) -> Vec<CellId> {
        let mut out = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let cell = CellId::new(c, r);
                if self.is_sparse(cell) {
                    out.push(cell);
                }
            }
        }
        out
    }

    /// Total population over the raster assuming `cell_km²` cells.
    pub fn total_population(&self, cell_km: f64) -> f64 {
        self.density.iter().sum::<f64>() * cell_km * cell_km
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::GeoPoint;

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0)
    }

    #[test]
    fn synth_core_is_densest() {
        let g = grid();
        let r = DensityRaster::synth_urban(&g, 2.0, 2.0, 4200.0, 2.2);
        let core = r.density(CellId::new(2, 2));
        for cell in g.cells() {
            assert!(r.density(cell) <= core + 1e-9, "cell {cell}");
        }
    }

    #[test]
    fn far_corners_are_sparse() {
        let g = grid();
        let r = DensityRaster::synth_urban(&g, 2.0, 2.0, 4200.0, 1.5);
        assert!(r.is_sparse(CellId::parse("F7").unwrap()));
        assert!(!r.is_sparse(CellId::parse("C3").unwrap()));
    }

    #[test]
    fn sparse_cells_lie_on_border_for_steep_decay() {
        let g = grid();
        let r = DensityRaster::synth_urban(&g, 2.5, 3.0, 4200.0, 1.6);
        for cell in r.sparse_cells() {
            // With a centred core and steep decay, all sparse cells must be
            // at Chebyshev distance >= 2 from the core.
            let d = ((cell.col as f64 - 2.5).powi(2) + (cell.row as f64 - 3.0).powi(2)).sqrt();
            assert!(d >= 2.0, "sparse cell {cell} too close to core (d={d})");
        }
    }

    #[test]
    fn set_density_overrides() {
        let g = grid();
        let mut r = DensityRaster::synth_urban(&g, 2.0, 2.0, 4200.0, 2.2);
        let cell = CellId::parse("A7").unwrap();
        r.set_density(cell, 50.0);
        assert!(r.is_sparse(cell));
        r.set_density(cell, 5000.0);
        assert!(!r.is_sparse(cell));
    }

    #[test]
    fn total_population_scales_with_cell_area() {
        let g = grid();
        let r = DensityRaster::synth_urban(&g, 2.0, 2.0, 1000.0, 2.0);
        let p1 = r.total_population(1.0);
        let p2 = r.total_population(2.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside raster")]
    fn density_outside_panics() {
        let g = grid();
        let r = DensityRaster::synth_urban(&g, 2.0, 2.0, 1000.0, 2.0);
        let _ = r.density(CellId::new(10, 10));
    }
}
