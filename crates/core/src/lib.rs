//! # sixg-core — the paper's analytical contribution, executable
//!
//! *6G Infrastructures for Edge AI* makes three moves: it derives
//! **requirements** for edge-AI applications (Section III), quantifies the
//! **gap** between those requirements and measured 5G performance
//! (Section IV), and proposes three **6G infrastructure strategies** to
//! close it (Section V). This crate implements all three on top of the
//! `sixg-netsim` / `sixg-measure` substrate so every number in the paper's
//! argument is *recomputed*, not quoted:
//!
//! * [`requirements`] — application classes and their latency / bandwidth /
//!   scalability envelopes;
//! * [`gap`] — requirement-vs-measurement analysis (the ≈270 % exceedance,
//!   per-cell compliance maps);
//! * [`detour`] — geographic routing-detour analysis (Figure 4's 2 544 km);
//! * [`recommend::peering`] — local peering optimisation (Section V-A);
//! * [`recommend::upf`] — User Plane Function integration, placement, and
//!   SmartNIC offload (Section V-B);
//! * [`recommend::cpf`] — control-plane enhancement: RIC consolidation,
//!   context-aware QoS rule stores, hybrid control (Section V-C);
//! * [`slicing`] — end-to-end network slicing with admission control and
//!   hypervisor placement (reactive vs predictive);
//! * [`orchestrator`] — the evaluation pipeline: baseline 5G → apply
//!   strategy → re-measure → report.
//!
//! The paper's future-work directions (Section VI) are implemented as
//! extensions:
//!
//! * [`autoscale`] — intelligent (forecast-driven) network slicing;
//! * [`energy`] — energy-efficient network management (transport energy
//!   per deployment layout, diurnal sleep scheduling).

pub mod autoscale;
pub mod detour;
pub mod energy;
pub mod gap;
pub mod orchestrator;
pub mod recommend;
pub mod requirements;
pub mod slicing;

pub use gap::GapReport;
pub use orchestrator::StrategyReport;
pub use requirements::{ApplicationClass, RequirementProfile};
