//! Intelligent (predictive) network slicing — the paper's future-work
//! direction made concrete.
//!
//! Section VI: "we plan to explore emerging technologies, such as
//! intelligent network slicing". Static reservations either waste
//! capacity (over-provisioned) or violate bounds (under-provisioned)
//! when demand drifts. The autoscaler forecasts each slice's demand with
//! double exponential smoothing (Holt) and resizes reservations one epoch
//! ahead, subject to the link's admission headroom.

use crate::slicing::{SliceManager, SliceSpec};
use serde::{Deserialize, Serialize};

/// Holt's linear (double-exponential) smoothing forecaster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HoltForecaster {
    /// Level smoothing factor α ∈ (0,1).
    pub alpha: f64,
    /// Trend smoothing factor β ∈ (0,1).
    pub beta: f64,
    level: f64,
    trend: f64,
    initialised: bool,
}

impl HoltForecaster {
    /// Creates a forecaster.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && (0.0..1.0).contains(&beta));
        Self { alpha, beta, level: 0.0, trend: 0.0, initialised: false }
    }

    /// Feeds an observation and returns the one-step-ahead forecast.
    pub fn observe(&mut self, x: f64) -> f64 {
        if !self.initialised {
            self.level = x;
            self.trend = 0.0;
            self.initialised = true;
            return x;
        }
        let prev_level = self.level;
        self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.level + self.trend
    }

    /// Current one-step forecast without a new observation.
    pub fn forecast(&self) -> f64 {
        self.level + self.trend
    }
}

/// Autoscaling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalePolicy {
    /// Fixed reservations (today's static slicing).
    Static,
    /// Resize each epoch to `forecast × headroom`.
    Predictive,
}

/// Result of an autoscaling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleStats {
    /// Epochs where a slice's latency bound was violated.
    pub violations: u32,
    /// Mean reserved-but-unused capacity, bits per second.
    pub mean_waste_bps: f64,
    /// Resize operations performed.
    pub resizes: u32,
}

/// Drifting demand of a slice at `epoch`: a ramp plus a seasonal swing
/// (deterministic so tests are exact).
pub fn demand_bps(epoch: u32, base_bps: f64) -> f64 {
    let t = epoch as f64;
    let seasonal = 0.35 * (t / 24.0 * std::f64::consts::TAU).sin();
    let ramp = 0.01 * t;
    base_bps * (1.0 + seasonal + ramp).max(0.05)
}

/// Runs `epochs` of one slice on a link under a scaling policy.
///
/// The slice starts with `initial_bps` reserved; demand follows
/// [`demand_bps`]. A violation is an epoch whose offered load exceeds
/// 95 % of the reservation (the policer clamps, so latency blows past the
/// bound — see [`SliceManager::slice_latency_ms`]).
pub fn run_autoscale(
    policy: ScalePolicy,
    epochs: u32,
    link_bps: f64,
    initial_bps: f64,
    base_demand_bps: f64,
    bound_ms: f64,
) -> AutoscaleStats {
    let mut manager = SliceManager::new(link_bps);
    manager
        .admit(SliceSpec {
            name: "auto".into(),
            class: sixg_netsim::packet::TrafficClass::Interactive,
            reserved_bps: initial_bps,
            max_latency_ms: bound_ms,
        })
        .expect("initial admission");

    let mut forecaster = HoltForecaster::new(0.5, 0.3);
    let mut reserved = initial_bps;
    let mut violations = 0u32;
    let mut resizes = 0u32;
    let mut waste = 0.0f64;

    for epoch in 0..epochs {
        let demand = demand_bps(epoch, base_demand_bps);
        let forecast = forecaster.observe(demand);

        if policy == ScalePolicy::Predictive {
            let want = (forecast * 1.25).min(link_bps * 0.9).max(base_demand_bps * 0.2);
            if (want - reserved).abs() / reserved > 0.05 {
                reserved = want;
                resizes += 1;
            }
        }

        if demand > reserved * 0.95 {
            violations += 1;
        }
        waste += (reserved - demand).max(0.0);
    }

    AutoscaleStats { violations, mean_waste_bps: waste / epochs as f64, resizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holt_tracks_linear_trends() {
        let mut f = HoltForecaster::new(0.5, 0.3);
        let mut last = 0.0;
        for t in 0..50 {
            last = f.observe(10.0 + 2.0 * t as f64);
        }
        // Forecast for t=50 should be near 110.
        assert!((last - 110.0).abs() < 3.0, "forecast {last}");
    }

    #[test]
    fn predictive_cuts_violations_against_drift() {
        let epochs = 96;
        let static_run = run_autoscale(ScalePolicy::Static, epochs, 10e9, 1.1e9, 1e9, 5.0);
        let predictive = run_autoscale(ScalePolicy::Predictive, epochs, 10e9, 1.1e9, 1e9, 5.0);
        // The ramp (+1%/epoch) walks demand past the static reservation.
        assert!(static_run.violations > 10, "static violations {}", static_run.violations);
        assert!(
            predictive.violations < static_run.violations / 3,
            "predictive {} vs static {}",
            predictive.violations,
            static_run.violations
        );
        assert!(predictive.resizes > 0);
    }

    #[test]
    fn predictive_wastes_less_when_overprovisioned() {
        // Static reservation 4x the base demand: huge waste.
        let epochs = 96;
        let static_run = run_autoscale(ScalePolicy::Static, epochs, 10e9, 4e9, 1e9, 5.0);
        let predictive = run_autoscale(ScalePolicy::Predictive, epochs, 10e9, 4e9, 1e9, 5.0);
        assert!(predictive.mean_waste_bps < static_run.mean_waste_bps / 2.0);
    }

    #[test]
    fn demand_curve_is_positive_and_seasonal() {
        for epoch in 0..200 {
            assert!(demand_bps(epoch, 1e9) > 0.0);
        }
        // Seasonal swing: epoch 6 (peak) vs epoch 18 (trough).
        assert!(demand_bps(6, 1e9) > demand_bps(18, 1e9));
    }

    #[test]
    fn forecaster_first_observation_passthrough() {
        let mut f = HoltForecaster::new(0.3, 0.3);
        assert_eq!(f.observe(42.0), 42.0);
        assert_eq!(f.forecast(), 42.0);
    }
}
