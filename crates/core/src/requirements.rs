//! Application requirement profiles (Section III).
//!
//! The paper's requirements analysis distils, per application family, the
//! network envelope that 6G must provide: round-trip latency, sustained
//! throughput, daily data volume, and device density. The constants below
//! carry the paper's citations: AR motion-to-photon < 20 ms \[12\]\[13\],
//! 60 FPS ⇒ 16.6 ms frame interval, IoT protocol overhead 5–8 ms \[14\],
//! autonomous vehicles at 4 TB/day, telemedicine above 10 GB/day, 125
//! billion devices by 2030 \[11\].

use serde::{Deserialize, Serialize};

/// The 6G latency target the paper cites (100 µs class), ms.
pub const SIXG_LATENCY_TARGET_MS: f64 = 0.1;
/// The 5G specification latency claim, ms.
pub const FIVEG_SPEC_LATENCY_MS: f64 = 1.0;
/// Frame interval at 60 FPS, ms.
pub const FRAME_INTERVAL_60FPS_MS: f64 = 1000.0 / 60.0;
/// User-perceived latency bound for interactive applications, ms \[13\].
pub const USER_PERCEIVED_BOUND_MS: f64 = 16.0;
/// IoT protocol overhead band, ms \[14\].
pub const IOT_OVERHEAD_MS: (f64, f64) = (5.0, 8.0);
/// Global connected-device forecast for 2030 \[11\].
pub const DEVICES_BY_2030: f64 = 125e9;

/// Application families the paper analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApplicationClass {
    /// The AR dodgeball use case (Section IV-A).
    ArGaming,
    /// Interactive 60 FPS video.
    VideoStreaming,
    /// Autonomous-vehicle coordination (V2X).
    AutonomousVehicle,
    /// Remote surgery / telemedicine.
    RemoteSurgery,
    /// General IoT telemetry over MQTT/AMQP/CoAP.
    IotTelemetry,
    /// Smart-factory closed loops.
    IndustrialAutomation,
    /// City-scale sensing and control.
    SmartCity,
}

/// A quantified requirement envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequirementProfile {
    /// Application family.
    pub class: ApplicationClass,
    /// Maximum acceptable round-trip latency, ms.
    pub max_rtl_ms: f64,
    /// Sustained per-session throughput, bits per second.
    pub min_throughput_bps: f64,
    /// Data volume per day per entity, gigabytes.
    pub data_per_day_gb: f64,
    /// Device density the deployment must support, devices per km².
    pub device_density_per_km2: f64,
    /// Source note (paper section / citation).
    pub note: &'static str,
}

impl ApplicationClass {
    /// All classes in presentation order.
    pub const ALL: [ApplicationClass; 7] = [
        ApplicationClass::ArGaming,
        ApplicationClass::VideoStreaming,
        ApplicationClass::AutonomousVehicle,
        ApplicationClass::RemoteSurgery,
        ApplicationClass::IotTelemetry,
        ApplicationClass::IndustrialAutomation,
        ApplicationClass::SmartCity,
    ];

    /// The Section III envelope for this class.
    pub fn profile(self) -> RequirementProfile {
        match self {
            ApplicationClass::ArGaming => RequirementProfile {
                class: self,
                max_rtl_ms: 20.0,
                min_throughput_bps: 25e6,
                data_per_day_gb: 50.0,
                device_density_per_km2: 10_000.0,
                note: "motion-to-photon <20 ms [12][15]",
            },
            ApplicationClass::VideoStreaming => RequirementProfile {
                class: self,
                max_rtl_ms: FRAME_INTERVAL_60FPS_MS,
                min_throughput_bps: 25e6,
                data_per_day_gb: 30.0,
                device_density_per_km2: 10_000.0,
                note: "60 FPS => 16.6 ms frame interval [13]",
            },
            ApplicationClass::AutonomousVehicle => RequirementProfile {
                class: self,
                max_rtl_ms: 20.0,
                min_throughput_bps: 100e6,
                data_per_day_gb: 4_000.0,
                device_density_per_km2: 50_000.0,
                note: "4 TB/day sensor load (Section III-B)",
            },
            ApplicationClass::RemoteSurgery => RequirementProfile {
                class: self,
                max_rtl_ms: 10.0,
                min_throughput_bps: 45e6,
                data_per_day_gb: 100.0,
                device_density_per_km2: 1_000.0,
                note: "haptic stability bound; >10 GB/day (Section III-B)",
            },
            ApplicationClass::IotTelemetry => RequirementProfile {
                class: self,
                // User-perceived bound minus the protocol's own overhead.
                max_rtl_ms: USER_PERCEIVED_BOUND_MS - IOT_OVERHEAD_MS.0,
                min_throughput_bps: 1e6,
                data_per_day_gb: 1.0,
                device_density_per_km2: 1_000_000.0,
                note: "16 ms user-perceived minus 5-8 ms protocol overhead [13][14]",
            },
            ApplicationClass::IndustrialAutomation => RequirementProfile {
                class: self,
                max_rtl_ms: 10.0,
                min_throughput_bps: 10e6,
                data_per_day_gb: 5_000.0,
                device_density_per_km2: 100_000.0,
                note: "5 TB/day per line (Section III-C)",
            },
            ApplicationClass::SmartCity => RequirementProfile {
                class: self,
                max_rtl_ms: 100.0,
                min_throughput_bps: 1e6,
                data_per_day_gb: 10.0,
                device_density_per_km2: 1_000_000.0,
                note: "50k intersections, Tokyo scenario (Section III-C)",
            },
        }
    }

    /// The strictest (smallest) RTL requirement across all classes, ms.
    pub fn strictest_rtl_ms() -> f64 {
        Self::ALL.iter().map(|c| c.profile().max_rtl_ms).fold(f64::INFINITY, f64::min)
    }
}

/// The requirement the paper measures the campaign against: the AR use
/// case's 20 ms round-trip budget.
pub fn campaign_reference_requirement() -> RequirementProfile {
    ApplicationClass::ArGaming.profile()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_budget_is_20ms() {
        assert_eq!(campaign_reference_requirement().max_rtl_ms, 20.0);
    }

    #[test]
    fn all_profiles_positive_and_consistent() {
        for c in ApplicationClass::ALL {
            let p = c.profile();
            assert!(p.max_rtl_ms > 0.0, "{c:?}");
            assert!(p.min_throughput_bps > 0.0, "{c:?}");
            assert!(p.data_per_day_gb > 0.0, "{c:?}");
            assert!(p.device_density_per_km2 > 0.0, "{c:?}");
            assert_eq!(p.class, c);
        }
    }

    #[test]
    fn surgery_is_strictest() {
        assert_eq!(ApplicationClass::strictest_rtl_ms(), 10.0);
    }

    #[test]
    fn video_requirement_matches_frame_interval() {
        let p = ApplicationClass::VideoStreaming.profile();
        assert!((p.max_rtl_ms - 16.6667).abs() < 0.01);
    }

    #[test]
    fn iot_budget_subtracts_protocol_overhead() {
        let p = ApplicationClass::IotTelemetry.profile();
        assert_eq!(p.max_rtl_ms, 11.0);
    }

    #[test]
    fn av_data_volume_is_4tb() {
        let p = ApplicationClass::AutonomousVehicle.profile();
        assert_eq!(p.data_per_day_gb, 4_000.0);
    }

    #[test]
    fn sixg_target_is_100us() {
        assert_eq!(SIXG_LATENCY_TARGET_MS, 0.1);
        // "ten times lower than 5G's 1-millisecond latency" (Section II-A).
        let ratio = FIVEG_SPEC_LATENCY_MS / SIXG_LATENCY_TARGET_MS;
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }
}
