//! Energy-efficient network management (the paper's future-work
//! direction).
//!
//! Section VI: "we plan to explore … energy-efficient network
//! management". This module quantifies two energy questions the
//! recommendation engines raise:
//!
//! 1. **Transport energy** — joules per byte across deployment layouts:
//!    the detoured baseline burns router-hops and long-haul amplifiers; a
//!    peered/edge layout does not;
//! 2. **Sleep scheduling** — putting under-utilised cell sites into sleep
//!    states over a diurnal load curve, trading wake-up latency for
//!    energy.

use serde::{Deserialize, Serialize};
use sixg_measure::klagenfurt::KlagenfurtScenario;
use sixg_netsim::routing::PathComputer;
use sixg_netsim::topology::NodeId;

/// Per-hop forwarding energy, nanojoules per byte (router ASIC class).
pub const ROUTER_NJ_PER_BYTE: f64 = 15.0;
/// Long-haul transport energy (amplifiers/regeneration), nJ per byte·km.
pub const LONGHAUL_NJ_PER_BYTE_KM: f64 = 0.9;
/// 5G radio energy per byte at the air interface, nJ per byte.
pub const RADIO_5G_NJ_PER_BYTE: f64 = 600.0;
/// 6G target radio energy per byte (10× efficiency target), nJ per byte.
pub const RADIO_6G_NJ_PER_BYTE: f64 = 60.0;

/// Energy accounting for moving one byte along a routed path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportEnergy {
    /// Router forwarding share, nJ/byte.
    pub forwarding_nj: f64,
    /// Long-haul distance share, nJ/byte.
    pub longhaul_nj: f64,
    /// Radio access share, nJ/byte.
    pub radio_nj: f64,
}

impl TransportEnergy {
    /// Total energy, nJ per byte.
    pub fn total_nj(&self) -> f64 {
        self.forwarding_nj + self.longhaul_nj + self.radio_nj
    }

    /// Joules to move `bytes` along this path.
    pub fn joules_for(&self, bytes: f64) -> f64 {
        self.total_nj() * bytes * 1e-9
    }
}

/// Energy per byte of a flow in the scenario, with a radio constant for
/// the access technology (`RADIO_5G_NJ_PER_BYTE` / `RADIO_6G_NJ_PER_BYTE`
/// / 0.0 for wired).
pub fn flow_energy(
    scenario: &KlagenfurtScenario,
    src: NodeId,
    dst: NodeId,
    radio_nj_per_byte: f64,
) -> Option<TransportEnergy> {
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let path = pc.route(src, dst)?;
    let forwarding_nj = path.hop_count() as f64 * ROUTER_NJ_PER_BYTE;
    let longhaul_nj = path.route_km(&scenario.topo) * LONGHAUL_NJ_PER_BYTE_KM;
    Some(TransportEnergy { forwarding_nj, longhaul_nj, radio_nj: radio_nj_per_byte })
}

// ---------------------------------------------------------------------
// Sleep scheduling
// ---------------------------------------------------------------------

/// A cell site's power profile, watts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SitePower {
    /// Power while serving traffic.
    pub active_w: f64,
    /// Power while idle-but-on.
    pub idle_w: f64,
    /// Power in sleep state.
    pub sleep_w: f64,
    /// Wake-up latency penalty added to the first request, ms.
    pub wake_ms: f64,
}

impl Default for SitePower {
    fn default() -> Self {
        // Representative small-cell figures.
        Self { active_w: 220.0, idle_w: 95.0, sleep_w: 12.0, wake_ms: 80.0 }
    }
}

/// Sleep-management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SleepPolicy {
    /// Sites never sleep (today's default).
    AlwaysOn,
    /// Sites sleep whenever hourly utilisation is below the threshold.
    ThresholdSleep,
}

/// Outcome of a diurnal sleep simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepStats {
    /// Energy over the simulated day, kilowatt-hours (whole fleet).
    pub energy_kwh: f64,
    /// Savings vs always-on, percent.
    pub saving_pct: f64,
    /// Mean extra latency imposed by wake-ups, ms per request.
    pub mean_wake_penalty_ms: f64,
}

/// Diurnal utilisation (0..1) of site `i` of `n` at `hour` — offices peak
/// at noon, residential cells in the evening.
pub fn diurnal_utilisation(i: usize, n: usize, hour: u32) -> f64 {
    let phase = if i < n / 2 { 13.0 } else { 20.0 };
    let h = hour as f64;
    let day = (-((h - phase) * (h - phase)) / 18.0).exp();
    (0.08 + 0.9 * day).min(1.0)
}

/// Simulates one day over `n_sites` sites, `requests_per_hour` per site
/// at full utilisation.
pub fn simulate_sleep(
    policy: SleepPolicy,
    n_sites: usize,
    power: SitePower,
    sleep_threshold: f64,
    requests_per_hour: f64,
) -> SleepStats {
    let mut energy_wh = 0.0;
    let mut always_on_wh = 0.0;
    let mut wake_penalty_ms = 0.0;
    let mut requests = 0.0;

    for hour in 0..24u32 {
        for i in 0..n_sites {
            let u = diurnal_utilisation(i, n_sites, hour);
            let active_share = u;
            let base = power.active_w * active_share + power.idle_w * (1.0 - active_share);
            always_on_wh += base;
            let reqs = requests_per_hour * u;
            requests += reqs;
            match policy {
                SleepPolicy::AlwaysOn => energy_wh += base,
                SleepPolicy::ThresholdSleep => {
                    if u < sleep_threshold {
                        // Site sleeps; each request pays a wake-up.
                        energy_wh +=
                            power.sleep_w * (1.0 - active_share) + power.active_w * active_share;
                        wake_penalty_ms += reqs * power.wake_ms;
                    } else {
                        energy_wh += base;
                    }
                }
            }
        }
    }

    SleepStats {
        energy_kwh: energy_wh / 1e3,
        saving_pct: (always_on_wh - energy_wh) / always_on_wh * 100.0,
        mean_wake_penalty_ms: if requests > 0.0 { wake_penalty_ms / requests } else { 0.0 },
    }
}

/// Convenience: energy comparison of the three deployment layouts for the
/// Table-I flow (baseline detour, after local peering, edge UPF).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentEnergy {
    /// Layout name.
    pub layout: String,
    /// nJ per byte moved.
    pub nj_per_byte: f64,
    /// Joules per gigabyte.
    pub joules_per_gb: f64,
}

/// Evaluates transport energy for the baseline and peered layouts.
pub fn evaluate_deployments(seed: u64) -> Vec<DeploymentEnergy> {
    use crate::recommend::peering::{apply_local_peering, PeeringDepth};

    let mut out = Vec::new();
    let scenario = KlagenfurtScenario::paper(seed);
    let (ue, anchor) = scenario.table1_endpoints();
    let base = flow_energy(&scenario, ue, anchor, RADIO_5G_NJ_PER_BYTE).expect("routable");
    out.push(DeploymentEnergy {
        layout: "baseline detour (5G)".into(),
        nj_per_byte: base.total_nj(),
        joules_per_gb: base.joules_for(1e9),
    });

    let mut peered = KlagenfurtScenario::paper(seed);
    apply_local_peering(&mut peered, PeeringDepth::LocalIsp);
    let p = flow_energy(&peered, ue, anchor, RADIO_5G_NJ_PER_BYTE).expect("routable");
    out.push(DeploymentEnergy {
        layout: "local peering (5G)".into(),
        nj_per_byte: p.total_nj(),
        joules_per_gb: p.joules_for(1e9),
    });

    let p6 = flow_energy(&peered, ue, anchor, RADIO_6G_NJ_PER_BYTE).expect("routable");
    out.push(DeploymentEnergy {
        layout: "local peering (6G radio)".into(),
        nj_per_byte: p6.total_nj(),
        joules_per_gb: p6.joules_for(1e9),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detour_burns_more_transport_energy() {
        let layouts = evaluate_deployments(1);
        assert_eq!(layouts.len(), 3);
        let baseline = &layouts[0];
        let peered = &layouts[1];
        // The 2 791 km round adds ~2.5 µJ/byte of long-haul energy.
        assert!(
            baseline.nj_per_byte > peered.nj_per_byte + 1000.0,
            "baseline {} vs peered {}",
            baseline.nj_per_byte,
            peered.nj_per_byte
        );
    }

    #[test]
    fn radio_dominates_after_peering() {
        let layouts = evaluate_deployments(1);
        let peered_5g = &layouts[1];
        let peered_6g = &layouts[2];
        // 5G radio is the dominant share once the path is local; the 6G
        // radio target cuts the total by a large factor.
        assert!(peered_5g.nj_per_byte > 3.0 * peered_6g.nj_per_byte);
    }

    #[test]
    fn sleep_saves_energy_with_bounded_penalty() {
        let on = simulate_sleep(SleepPolicy::AlwaysOn, 100, SitePower::default(), 0.2, 1000.0);
        let sleep =
            simulate_sleep(SleepPolicy::ThresholdSleep, 100, SitePower::default(), 0.2, 1000.0);
        assert_eq!(on.saving_pct, 0.0);
        assert!(sleep.saving_pct > 10.0, "saving {}", sleep.saving_pct);
        assert!(sleep.energy_kwh < on.energy_kwh);
        // Wake-ups only hit low-traffic hours ⇒ small mean penalty.
        assert!(sleep.mean_wake_penalty_ms < 30.0, "penalty {}", sleep.mean_wake_penalty_ms);
    }

    #[test]
    fn higher_threshold_saves_more_costs_more_latency() {
        let mild =
            simulate_sleep(SleepPolicy::ThresholdSleep, 50, SitePower::default(), 0.15, 1000.0);
        let aggressive =
            simulate_sleep(SleepPolicy::ThresholdSleep, 50, SitePower::default(), 0.5, 1000.0);
        assert!(aggressive.saving_pct > mild.saving_pct);
        assert!(aggressive.mean_wake_penalty_ms >= mild.mean_wake_penalty_ms);
    }

    #[test]
    fn diurnal_curve_is_bounded_and_peaked() {
        for hour in 0..24 {
            for i in [0usize, 9] {
                let u = diurnal_utilisation(i, 10, hour);
                assert!((0.0..=1.0).contains(&u));
            }
        }
        assert!(diurnal_utilisation(0, 10, 13) > diurnal_utilisation(0, 10, 3));
        assert!(diurnal_utilisation(9, 10, 20) > diurnal_utilisation(9, 10, 8));
    }

    #[test]
    fn energy_units_consistent() {
        let e = TransportEnergy { forwarding_nj: 100.0, longhaul_nj: 400.0, radio_nj: 500.0 };
        assert_eq!(e.total_nj(), 1000.0);
        assert!((e.joules_for(1e9) - 1000.0).abs() < 1e-9); // 1000 nJ/B × 1 GB = 1 kJ
    }
}
