//! The evaluation pipeline: baseline 5G → apply strategy → re-measure.
//!
//! This is the glue the paper's Section V argument rests on: each
//! recommendation is applied to the *same* measured Klagenfurt scenario
//! and its effect re-measured, producing one [`StrategyReport`] per
//! strategy. The benchmark binaries print these as the "what 6G buys"
//! table.

use crate::recommend::cpf::ControlPlaneLayout;
use crate::recommend::peering::{self, PeeringDepth};
use crate::recommend::upf;
use serde::{Deserialize, Serialize};
use sixg_netsim::rng::{SimRng, StreamKey};

/// One strategy's before/after summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyReport {
    /// Strategy name.
    pub strategy: String,
    /// Metric name (what was measured).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Value after applying the strategy.
    pub improved: f64,
    /// Relative reduction, percent.
    pub reduction_pct: f64,
    /// One-line interpretation.
    pub note: String,
}

impl StrategyReport {
    fn new(
        strategy: &str,
        metric: &str,
        baseline: f64,
        improved: f64,
        note: impl Into<String>,
    ) -> Self {
        Self {
            strategy: strategy.into(),
            metric: metric.into(),
            baseline,
            improved,
            reduction_pct: (baseline - improved) / baseline * 100.0,
            note: note.into(),
        }
    }
}

/// Section V-A: local peering.
pub fn evaluate_peering(seed: u64) -> StrategyReport {
    let r = peering::evaluate(seed, PeeringDepth::LocalIsp);
    StrategyReport::new(
        "local-peering",
        "network RTT C2→anchor (ms)",
        r.before.wire_rtt_ms,
        r.after.wire_rtt_ms,
        format!(
            "hops {}→{}, route {:.0} km→{:.0} km; wired endpoints reach {:.1} ms",
            r.before.hops, r.after.hops, r.before.route_km, r.after.route_km, r.wired_rtt_after_ms
        ),
    )
}

/// Section V-B: UPF integration.
pub fn evaluate_upf(seed: u64) -> StrategyReport {
    let r = upf::evaluate(seed);
    StrategyReport::new(
        "upf-integration",
        "service RTT C2 (ms)",
        r.baseline_ms,
        r.edge_upf_ms,
        format!(
            "edge breakout {:.1} ms (lit.: 5-6.2 ms); bulk via central UPF {:.1} ms",
            r.edge_upf_ms, r.bulk_ms
        ),
    )
}

/// Section V-C: control-plane enhancement (RIC consolidation).
pub fn evaluate_cpf(seed: u64) -> StrategyReport {
    let core = ControlPlaneLayout::core_hosted();
    let ric = ControlPlaneLayout::ric_consolidated();
    let mut rng = SimRng::for_stream(StreamKey::root(seed).with_label("cpf-eval"));
    let n = 5000;
    let mean = |layout: &ControlPlaneLayout, rng: &mut SimRng| -> f64 {
        (0..n).map(|_| layout.session_setup_ms(rng)).sum::<f64>() / n as f64
    };
    let baseline = mean(&core, &mut rng);
    let improved = mean(&ric, &mut rng);
    StrategyReport::new(
        "cpf-enhancement",
        "session setup latency (ms)",
        baseline,
        improved,
        "session & mobility management consolidated in the Near-RT RIC at the edge",
    )
}

/// All three strategies, in the paper's order.
pub fn evaluate_all(seed: u64) -> Vec<StrategyReport> {
    vec![evaluate_peering(seed), evaluate_upf(seed), evaluate_cpf(seed)]
}

/// Renders reports as an aligned text table.
pub fn render_reports(reports: &[StrategyReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<32} {:>10} {:>10} {:>8}\n",
        "strategy", "metric", "baseline", "improved", "cut%"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:<32} {:>10.2} {:>10.2} {:>8.1}\n",
            r.strategy, r.metric, r.baseline, r.improved, r.reduction_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn reports() -> &'static Vec<StrategyReport> {
        static R: OnceLock<Vec<StrategyReport>> = OnceLock::new();
        R.get_or_init(|| evaluate_all(1))
    }

    #[test]
    fn all_three_strategies_reported() {
        let r = reports();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].strategy, "local-peering");
        assert_eq!(r[1].strategy, "upf-integration");
        assert_eq!(r[2].strategy, "cpf-enhancement");
    }

    #[test]
    fn every_strategy_improves() {
        for r in reports() {
            assert!(r.improved < r.baseline, "{}: {} -> {}", r.strategy, r.baseline, r.improved);
            assert!(r.reduction_pct > 30.0, "{}: only {}%", r.strategy, r.reduction_pct);
        }
    }

    #[test]
    fn upf_reduction_band_matches_paper() {
        let r = &reports()[1];
        assert!((88.0..=95.0).contains(&r.reduction_pct), "UPF cut {}%", r.reduction_pct);
    }

    #[test]
    fn peering_removes_most_wire_latency() {
        let r = &reports()[0];
        assert!(r.reduction_pct > 85.0, "peering cut {}%", r.reduction_pct);
    }

    #[test]
    fn rendering_is_tabular() {
        let table = render_reports(reports());
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("local-peering"));
        assert!(table.contains("upf-integration"));
        assert!(table.contains("cpf-enhancement"));
    }
}
