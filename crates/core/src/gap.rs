//! Requirement-vs-measurement gap analysis (Section IV-C / Conclusion).
//!
//! The paper's headline: measured RTL "exceeds the requirements defined in
//! Section III by approximately 270 %". That number is the relative
//! exceedance of the campaign's grand-mean RTL over the AR use case's
//! 20 ms budget. This module computes it — and the per-cell compliance
//! map behind it — from any campaign result.

use crate::requirements::RequirementProfile;
use serde::{Deserialize, Serialize};
use sixg_measure::aggregate::CellField;

/// Per-cell compliance entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellCompliance {
    /// Cell label (`"C3"`).
    pub cell: String,
    /// Measured mean RTL, ms.
    pub mean_ms: f64,
    /// Measured-over-required ratio (1.0 = exactly at requirement).
    pub ratio: f64,
    /// True when the cell meets the requirement.
    pub compliant: bool,
}

/// The full gap report for one requirement profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapReport {
    /// Requirement analysed against.
    pub requirement_ms: f64,
    /// Campaign grand mean, ms.
    pub measured_mean_ms: f64,
    /// Relative exceedance in percent: `(measured − required) / required × 100`.
    pub exceedance_pct: f64,
    /// Best (lowest-RTL) cell's exceedance, percent.
    pub best_cell_exceedance_pct: f64,
    /// Number of compliant cells.
    pub compliant_cells: usize,
    /// Number of reported cells.
    pub reported_cells: usize,
    /// Per-cell detail.
    pub cells: Vec<CellCompliance>,
}

impl GapReport {
    /// Analyses a campaign field against a requirement profile.
    pub fn analyse(field: &CellField, profile: &RequirementProfile) -> Self {
        let req = profile.max_rtl_ms;
        assert!(req > 0.0, "requirement must be positive");
        let reported = field.reported();
        let cells: Vec<CellCompliance> = reported
            .iter()
            .map(|s| CellCompliance {
                cell: s.cell.label(),
                mean_ms: s.mean_ms,
                ratio: s.mean_ms / req,
                compliant: s.mean_ms <= req,
            })
            .collect();
        let measured = field.grand_mean_ms();
        let best = reported.iter().map(|s| s.mean_ms).fold(f64::INFINITY, f64::min);
        Self {
            requirement_ms: req,
            measured_mean_ms: measured,
            exceedance_pct: (measured - req) / req * 100.0,
            best_cell_exceedance_pct: (best - req) / req * 100.0,
            compliant_cells: cells.iter().filter(|c| c.compliant).count(),
            reported_cells: cells.len(),
            cells,
        }
    }

    /// Fraction of reported cells meeting the requirement.
    pub fn compliance_ratio(&self) -> f64 {
        if self.reported_cells == 0 {
            return 0.0;
        }
        self.compliant_cells as f64 / self.reported_cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::campaign_reference_requirement;
    use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
    use sixg_measure::klagenfurt::KlagenfurtScenario;
    use std::sync::OnceLock;

    fn field() -> &'static CellField {
        static FIELD: OnceLock<CellField> = OnceLock::new();
        FIELD.get_or_init(|| {
            let s = KlagenfurtScenario::paper(0x6B6C_7531);
            MobileCampaign::new(&s, CampaignConfig::dense(3)).run()
        })
    }

    #[test]
    fn exceedance_is_about_270_percent() {
        let report = GapReport::analyse(field(), &campaign_reference_requirement());
        assert!(
            (report.exceedance_pct - 270.0).abs() < 12.0,
            "exceedance {}",
            report.exceedance_pct
        );
    }

    #[test]
    fn no_cell_is_compliant_on_measured_5g() {
        let report = GapReport::analyse(field(), &campaign_reference_requirement());
        assert_eq!(report.compliant_cells, 0);
        assert_eq!(report.reported_cells, 33);
        assert_eq!(report.compliance_ratio(), 0.0);
    }

    #[test]
    fn best_cell_still_exceeds_by_about_200_percent() {
        // The paper: even the 61 ms minimum exceeds 20 ms by 205 %.
        let report = GapReport::analyse(field(), &campaign_reference_requirement());
        assert!(
            (report.best_cell_exceedance_pct - 205.0).abs() < 15.0,
            "best-cell exceedance {}",
            report.best_cell_exceedance_pct
        );
    }

    #[test]
    fn per_cell_ratios_ordered_with_means() {
        let report = GapReport::analyse(field(), &campaign_reference_requirement());
        for c in &report.cells {
            assert!((c.ratio - c.mean_ms / 20.0).abs() < 1e-12);
            assert!(!c.compliant);
        }
    }

    #[test]
    fn generous_requirement_is_met() {
        let mut profile = campaign_reference_requirement();
        profile.max_rtl_ms = 200.0;
        let report = GapReport::analyse(field(), &profile);
        assert_eq!(report.compliant_cells, report.reported_cells);
        assert!(report.exceedance_pct < 0.0);
    }
}
