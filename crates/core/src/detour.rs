//! Geographic routing-detour analysis (Figure 4, Table I discussion).
//!
//! The paper's data trace shows a local (< 5 km) request travelling
//! Klagenfurt → Vienna → Prague → Bucharest → Vienna — "a total distance
//! of 2544 km" — before descending back to Klagenfurt. This module takes
//! any [`FlowTrace`] and quantifies that inefficiency: the city-level
//! route, its outbound length (the paper's 2 544 km figure), the full
//! round length, and the detour ratio against the direct geodesic.

use serde::{Deserialize, Serialize};
use sixg_geo::{GeoPoint, Polyline};
use sixg_netsim::trace::FlowTrace;

/// Cluster radius used to merge consecutive same-city hops, km.
pub const CITY_CLUSTER_KM: f64 = 30.0;

/// Result of the detour analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetourAnalysis {
    /// City-level waypoints (consecutive hops within
    /// [`CITY_CLUSTER_KM`] merged), source first.
    pub city_waypoints: Vec<GeoPoint>,
    /// Fibre length of the outbound route — up to (and including) the
    /// last waypoint *before* re-entering the source cluster, km. This is
    /// the paper's "total distance of 2544 km".
    pub outbound_km: f64,
    /// Fibre length of the complete route, km.
    pub total_km: f64,
    /// Direct geodesic source → destination, km.
    pub direct_km: f64,
    /// `total_km / direct_km` (how many times longer than needed).
    pub detour_ratio: f64,
    /// Router hops observed.
    pub hop_count: usize,
    /// Farthest point from the source along the route, km.
    pub farthest_km: f64,
}

impl DetourAnalysis {
    /// Analyses a flow trace.
    pub fn from_trace(trace: &FlowTrace) -> Self {
        let src = trace.src_pos;
        // City-level merge: keep a waypoint only when it leaves the
        // current cluster.
        let mut waypoints: Vec<GeoPoint> = vec![src];
        for hop in &trace.hops {
            let last = *waypoints.last().expect("non-empty");
            if hop.pos.distance_km(last) > CITY_CLUSTER_KM {
                waypoints.push(hop.pos);
            }
        }

        let full = Polyline::new(waypoints.clone());
        let total_km = full.fibre_km();

        // Outbound: stop before the route re-enters the source cluster.
        let mut outbound_points: Vec<GeoPoint> = vec![src];
        for &p in waypoints.iter().skip(1) {
            if p.distance_km(src) <= CITY_CLUSTER_KM {
                break;
            }
            outbound_points.push(p);
        }
        let outbound_km =
            if outbound_points.len() > 1 { Polyline::new(outbound_points).fibre_km() } else { 0.0 };

        let dst = trace.hops.last().map(|h| h.pos).unwrap_or(src);
        let direct_km = src.distance_km(dst);
        let farthest_km = trace.hops.iter().map(|h| h.pos.distance_km(src)).fold(0.0, f64::max);

        Self {
            city_waypoints: waypoints,
            outbound_km,
            total_km,
            direct_km,
            detour_ratio: if direct_km > 1e-9 { total_km / direct_km } else { f64::INFINITY },
            hop_count: trace.hop_count(),
            farthest_km,
        }
    }

    /// True when the route is "inefficient" in the paper's sense: more
    /// hops than `hop_budget` or a detour ratio above `ratio_budget`.
    pub fn is_inefficient(&self, hop_budget: usize, ratio_budget: f64) -> bool {
        self.hop_count > hop_budget || self.detour_ratio > ratio_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
    use sixg_measure::klagenfurt::KlagenfurtScenario;
    use std::sync::OnceLock;

    fn scenario() -> &'static KlagenfurtScenario {
        static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
        S.get_or_init(|| KlagenfurtScenario::paper(0x6B6C_7531))
    }

    fn analysis() -> DetourAnalysis {
        let c = MobileCampaign::new(scenario(), CampaignConfig::default());
        DetourAnalysis::from_trace(&c.table1_traceroute(0))
    }

    #[test]
    fn outbound_distance_is_about_2544_km() {
        let a = analysis();
        assert!(
            (a.outbound_km - 2544.0).abs() < 60.0,
            "outbound {} km (paper: 2544 km)",
            a.outbound_km
        );
    }

    #[test]
    fn city_route_is_klu_vie_prg_buh_vie_klu() {
        let a = analysis();
        // Klagenfurt, Vienna, Prague, Bucharest, Vienna, Klagenfurt-area.
        assert_eq!(a.city_waypoints.len(), 6, "waypoints: {:?}", a.city_waypoints);
    }

    #[test]
    fn detour_ratio_is_extreme() {
        let a = analysis();
        assert!(a.direct_km < 5.0, "direct {}", a.direct_km);
        assert!(a.detour_ratio > 400.0, "ratio {}", a.detour_ratio);
        assert!(a.is_inefficient(10, 2.0));
    }

    #[test]
    fn farthest_point_is_bucharest() {
        let a = analysis();
        // Klagenfurt → Bucharest ≈ 1000 km.
        assert!((a.farthest_km - 1000.0).abs() < 100.0, "farthest {}", a.farthest_km);
    }

    #[test]
    fn ten_hops_observed() {
        let a = analysis();
        assert_eq!(a.hop_count, 10);
    }

    #[test]
    fn local_trace_is_efficient() {
        use sixg_netsim::topology::NodeId;
        use sixg_netsim::trace::HopRecord;
        let klu = GeoPoint::new(46.62, 14.30);
        let near = GeoPoint::new(46.63, 14.31);
        let trace = FlowTrace {
            src_pos: klu,
            hops: vec![
                HopRecord {
                    hop: 1,
                    node: NodeId(0),
                    name: "gw".into(),
                    ip: "10.0.0.1".into(),
                    rtt_ms: 1.0,
                    pos: klu,
                },
                HopRecord {
                    hop: 2,
                    node: NodeId(1),
                    name: "dst".into(),
                    ip: "10.0.0.2".into(),
                    rtt_ms: 2.0,
                    pos: near,
                },
            ],
        };
        let a = DetourAnalysis::from_trace(&trace);
        assert_eq!(a.city_waypoints.len(), 1); // never leaves the cluster
        assert_eq!(a.outbound_km, 0.0);
        assert!(!a.is_inefficient(10, 100.0));
    }
}
