//! End-to-end network slicing and hypervisor placement (Section V-C).
//!
//! "End-to-end network slicing is critical for allocating dedicated
//! resources to specific applications. … Current hypervisor placement
//! strategies focus on latency reduction, resilience, and load balancing,
//! yet they typically operate in a reactive rather than predictive
//! manner."
//!
//! Two models live here:
//!
//! * [`SliceManager`] — admission-controlled capacity partitioning of a
//!   shared link; per-slice M/G/1 latency shows isolation (a bulk
//!   overload cannot hurt the critical slice), in contrast to a
//!   best-effort shared queue;
//! * [`HypervisorPlanner`] + [`simulate_reconfig`] — placement of
//!   network-hypervisor instances under the three literature objectives,
//!   and the reactive-vs-predictive reconfiguration comparison the paper
//!   calls for.

use serde::{Deserialize, Serialize};
use sixg_netsim::packet::TrafficClass;
use sixg_netsim::queueing::{mg1_wait, Load};

// ---------------------------------------------------------------------
// Slices
// ---------------------------------------------------------------------

/// A slice request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceSpec {
    /// Slice name.
    pub name: String,
    /// Traffic class served.
    pub class: TrafficClass,
    /// Reserved capacity, bits per second.
    pub reserved_bps: f64,
    /// Latency bound the tenant contracted, ms.
    pub max_latency_ms: f64,
}

/// An admitted slice with its current offered load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceState {
    /// The admitted spec.
    pub spec: SliceSpec,
    /// Current offered load, bits per second.
    pub offered_bps: f64,
}

/// Why admission failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// Not enough unreserved capacity on the link.
    InsufficientCapacity,
    /// The requested latency bound is impossible even unloaded.
    BoundUnachievable,
}

/// Admission-controlled slicing of one link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceManager {
    /// Total link capacity, bps.
    pub link_capacity_bps: f64,
    /// Admission headroom: at most this fraction of capacity is ever
    /// reserved (default 0.9).
    pub max_reservation: f64,
    slices: Vec<SliceState>,
}

/// Mean packet size used for slice queueing conversions, bytes.
const SLICE_PKT_BYTES: f64 = 1250.0;

impl SliceManager {
    /// Manager over a link of the given capacity.
    pub fn new(link_capacity_bps: f64) -> Self {
        assert!(link_capacity_bps > 0.0);
        Self { link_capacity_bps, max_reservation: 0.9, slices: Vec::new() }
    }

    /// Currently reserved capacity, bps.
    pub fn reserved_bps(&self) -> f64 {
        self.slices.iter().map(|s| s.spec.reserved_bps).sum()
    }

    /// Admits a slice or explains why not.
    pub fn admit(&mut self, spec: SliceSpec) -> Result<(), AdmissionError> {
        assert!(spec.reserved_bps > 0.0, "reservation must be positive");
        if self.reserved_bps() + spec.reserved_bps > self.link_capacity_bps * self.max_reservation {
            return Err(AdmissionError::InsufficientCapacity);
        }
        // Even an empty slice pays one serialisation time.
        let service_ms = SLICE_PKT_BYTES * 8.0 / spec.reserved_bps * 1e3;
        if service_ms > spec.max_latency_ms {
            return Err(AdmissionError::BoundUnachievable);
        }
        self.slices.push(SliceState { spec, offered_bps: 0.0 });
        Ok(())
    }

    /// Sets a slice's offered load (clamped at its reservation for the
    /// isolation computation; excess is dropped at ingress policing).
    pub fn set_load(&mut self, name: &str, offered_bps: f64) {
        let s = self
            .slices
            .iter_mut()
            .find(|s| s.spec.name == name)
            .unwrap_or_else(|| panic!("unknown slice {name}"));
        s.offered_bps = offered_bps.max(0.0);
    }

    /// Mean in-slice latency (queueing + serialisation) of a slice, ms.
    ///
    /// Each slice owns its reservation: a dedicated M/G/1 queue at rate
    /// `reserved_bps`, with ingress policing capping utilisation at 0.95.
    pub fn slice_latency_ms(&self, name: &str) -> f64 {
        let s = self
            .slices
            .iter()
            .find(|s| s.spec.name == name)
            .unwrap_or_else(|| panic!("unknown slice {name}"));
        let mu = s.spec.reserved_bps / (SLICE_PKT_BYTES * 8.0);
        let lambda = (s.offered_bps / (SLICE_PKT_BYTES * 8.0)).min(mu * 0.95);
        (mg1_wait(Load::new(lambda, mu), 1.0) + 1.0 / mu) * 1e3
    }

    /// Mean latency of a best-effort *shared* queue carrying all slices'
    /// load together (the no-slicing baseline).
    pub fn shared_latency_ms(&self) -> f64 {
        let mu = self.link_capacity_bps / (SLICE_PKT_BYTES * 8.0);
        let lambda_raw: f64 =
            self.slices.iter().map(|s| s.offered_bps).sum::<f64>() / (SLICE_PKT_BYTES * 8.0);
        let lambda = lambda_raw.min(mu * 0.999);
        (mg1_wait(Load::new(lambda, mu), 1.0) + 1.0 / mu) * 1e3
    }

    /// Whether every admitted slice currently meets its bound.
    pub fn all_bounds_met(&self) -> bool {
        self.slices.iter().all(|s| self.slice_latency_ms(&s.spec.name) <= s.spec.max_latency_ms)
    }

    /// Admitted slice names.
    pub fn slice_names(&self) -> Vec<String> {
        self.slices.iter().map(|s| s.spec.name.clone()).collect()
    }
}

// ---------------------------------------------------------------------
// Hypervisor placement
// ---------------------------------------------------------------------

/// Placement objective from the literature the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise mean switch→hypervisor latency (Killi & Rao).
    Latency,
    /// Minimise the worst-case latency after any single hypervisor
    /// failure (Babarczi).
    Resilience,
    /// Minimise the maximum number of switches per hypervisor (Amjad).
    LoadBalance,
}

/// A placement problem over an abstract latency matrix.
#[derive(Debug, Clone)]
pub struct HypervisorPlanner {
    /// `lat[s][c]`: latency from switch `s` to candidate site `c`, ms.
    pub lat: Vec<Vec<f64>>,
}

/// A computed placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Chosen candidate indices.
    pub sites: Vec<usize>,
    /// Mean switch→nearest-site latency, ms.
    pub mean_latency_ms: f64,
    /// Worst switch latency after the worst single-site failure, ms.
    pub worst_failover_ms: f64,
    /// Maximum switches assigned to one site.
    pub max_load: usize,
}

impl HypervisorPlanner {
    /// Creates a planner; `lat` must be rectangular and non-empty.
    pub fn new(lat: Vec<Vec<f64>>) -> Self {
        assert!(!lat.is_empty() && !lat[0].is_empty(), "empty problem");
        let w = lat[0].len();
        assert!(lat.iter().all(|r| r.len() == w), "ragged latency matrix");
        Self { lat }
    }

    fn evaluate(&self, sites: &[usize]) -> Placement {
        let n = self.lat.len();
        let nearest = |s: usize, exclude: Option<usize>| -> f64 {
            sites
                .iter()
                .filter(|&&c| Some(c) != exclude)
                .map(|&c| self.lat[s][c])
                .fold(f64::INFINITY, f64::min)
        };
        let mean = (0..n).map(|s| nearest(s, None)).sum::<f64>() / n as f64;
        // Worst-case after the single most damaging site failure.
        let worst_failover = if sites.len() <= 1 {
            f64::INFINITY
        } else {
            sites
                .iter()
                .map(|&dead| (0..n).map(|s| nearest(s, Some(dead))).fold(0.0, f64::max))
                .fold(0.0, f64::max)
        };
        // Assignment load.
        let mut load = vec![0usize; self.lat[0].len()];
        for s in 0..n {
            let best = sites
                .iter()
                .copied()
                .min_by(|&a, &b| self.lat[s][a].total_cmp(&self.lat[s][b]))
                .expect("non-empty sites");
            load[best] += 1;
        }
        let max_load = sites.iter().map(|&c| load[c]).max().unwrap_or(0);
        Placement {
            sites: sites.to_vec(),
            mean_latency_ms: mean,
            worst_failover_ms: worst_failover,
            max_load,
        }
    }

    /// Greedy placement of `k` sites under an objective.
    pub fn place(&self, k: usize, objective: Objective) -> Placement {
        let m = self.lat[0].len();
        assert!(k >= 1 && k <= m, "invalid k");
        let mut sites: Vec<usize> = Vec::new();
        for _ in 0..k {
            let mut best: Option<(usize, f64)> = None;
            for c in 0..m {
                if sites.contains(&c) {
                    continue;
                }
                let mut trial = sites.clone();
                trial.push(c);
                let p = self.evaluate(&trial);
                let score = match objective {
                    Objective::Latency => p.mean_latency_ms,
                    Objective::Resilience => {
                        if p.worst_failover_ms.is_finite() {
                            p.worst_failover_ms
                        } else {
                            // With one site resilience is undefined; fall
                            // back to mean latency to seed the greedy.
                            p.mean_latency_ms * 1e3
                        }
                    }
                    Objective::LoadBalance => p.max_load as f64 * 1e3 + p.mean_latency_ms,
                };
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((c, score));
                }
            }
            sites.push(best.expect("candidates remain").0);
        }
        self.evaluate(&sites)
    }
}

// ---------------------------------------------------------------------
// Reactive vs predictive reconfiguration
// ---------------------------------------------------------------------

/// Strategy for triggering hypervisor re-placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigStrategy {
    /// Re-place after a violation is observed (one-step lag).
    Reactive,
    /// Re-place when the forecast predicts a violation next step.
    Predictive,
}

/// Result of a reconfiguration simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigStats {
    /// Steps where the latency bound was violated.
    pub violations: u32,
    /// Re-placements performed.
    pub reconfigurations: u32,
}

/// Simulates `steps` of a drifting regional load pattern.
///
/// Two regions alternate as hotspots following a deterministic seasonal
/// pattern; hosting the hypervisor in the hot region inflates its control
/// latency past `bound_ms`. The reactive strategy migrates only after
/// observing a violation; the predictive one extrapolates the load trend
/// (per the paper: placement today "operate\[s\] in a reactive rather than
/// predictive manner" — this quantifies what prediction buys).
pub fn simulate_reconfig(strategy: ReconfigStrategy, steps: u32, bound_ms: f64) -> ReconfigStats {
    let load = |t: f64, region: usize| -> f64 {
        // Smooth alternating load, period 50 steps, phase-shifted.
        let phase = t / 50.0 * std::f64::consts::TAU;
        0.5 + 0.45 * (phase + region as f64 * std::f64::consts::PI).sin()
    };
    let latency = |site: usize, t: f64| -> f64 {
        // Control latency grows super-linearly with the hosting region's
        // load.
        let l = load(t, site);
        1.0 + 8.0 * l * l
    };

    let mut site = 0usize;
    let mut violations = 0u32;
    let mut reconfigs = 0u32;
    for step in 0..steps {
        let t = step as f64;
        let now = latency(site, t);
        if now > bound_ms {
            violations += 1;
        }
        let other = 1 - site;
        let should_move = match strategy {
            ReconfigStrategy::Reactive => now > bound_ms,
            ReconfigStrategy::Predictive => {
                // One-step linear extrapolation of this site's latency.
                let next = latency(site, t + 1.0);
                next > bound_ms && latency(other, t + 1.0) < next
            }
        };
        if should_move && latency(other, t) < now {
            site = other;
            reconfigs += 1;
        }
    }
    ReconfigStats { violations, reconfigurations: reconfigs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn critical_slice() -> SliceSpec {
        SliceSpec {
            name: "ar-critical".into(),
            class: TrafficClass::Critical,
            reserved_bps: 100e6,
            max_latency_ms: 1.5,
        }
    }

    fn bulk_slice() -> SliceSpec {
        SliceSpec {
            name: "bulk".into(),
            class: TrafficClass::Bulk,
            reserved_bps: 700e6,
            max_latency_ms: 100.0,
        }
    }

    #[test]
    fn admission_respects_capacity() {
        let mut m = SliceManager::new(1e9);
        assert!(m.admit(critical_slice()).is_ok());
        assert!(m.admit(bulk_slice()).is_ok());
        // 0.8 Gbit reserved; another 200 Mbit exceeds the 0.9 headroom.
        let extra = SliceSpec {
            name: "extra".into(),
            class: TrafficClass::Interactive,
            reserved_bps: 200e6,
            max_latency_ms: 10.0,
        };
        assert_eq!(m.admit(extra), Err(AdmissionError::InsufficientCapacity));
    }

    #[test]
    fn impossible_bound_rejected() {
        let mut m = SliceManager::new(1e9);
        let spec = SliceSpec {
            name: "tiny".into(),
            class: TrafficClass::Critical,
            reserved_bps: 1e5, // 100 kbit/s: one packet takes 100 ms
            max_latency_ms: 1.0,
        };
        assert_eq!(m.admit(spec), Err(AdmissionError::BoundUnachievable));
    }

    #[test]
    fn slicing_isolates_critical_from_bulk_overload() {
        let mut m = SliceManager::new(1e9);
        m.admit(critical_slice()).unwrap();
        m.admit(bulk_slice()).unwrap();
        m.set_load("ar-critical", 30e6);
        m.set_load("bulk", 2e9); // way past its reservation
        let critical = m.slice_latency_ms("ar-critical");
        assert!(critical < 2.0, "critical latency {critical}");
        assert!(m.slice_latency_ms("bulk") > critical);
        // Without slicing, the shared queue saturates and everyone hurts.
        let shared = m.shared_latency_ms();
        assert!(shared > 10.0 * critical, "shared {shared} vs critical {critical}");
    }

    #[test]
    fn bounds_checked_across_slices() {
        let mut m = SliceManager::new(1e9);
        m.admit(critical_slice()).unwrap();
        m.set_load("ar-critical", 30e6);
        assert!(m.all_bounds_met());
        m.set_load("ar-critical", 98e6); // 98% of reservation: deep queue
        assert!(!m.all_bounds_met());
    }

    fn planner() -> HypervisorPlanner {
        // 4 switches × 3 candidate sites; site 2 is a mediocre middle
        // option so the greedy finds the good {0, 1} pair.
        HypervisorPlanner::new(vec![
            vec![1.0, 8.0, 6.0],
            vec![2.0, 7.0, 6.0],
            vec![9.0, 1.0, 6.0],
            vec![8.0, 2.0, 6.0],
        ])
    }

    #[test]
    fn latency_objective_picks_closest_pair() {
        let p = planner().place(2, Objective::Latency);
        let mut sites = p.sites.clone();
        sites.sort_unstable();
        assert_eq!(sites, vec![0, 1]);
        assert!((p.mean_latency_ms - 1.5).abs() < 1e-9);
    }

    #[test]
    fn resilience_objective_considers_failover() {
        let lat = planner().place(2, Objective::Latency);
        let res = planner().place(2, Objective::Resilience);
        assert!(res.worst_failover_ms <= lat.worst_failover_ms);
    }

    #[test]
    fn load_balance_objective_spreads_switches() {
        let p = planner().place(2, Objective::LoadBalance);
        assert!(p.max_load <= 2, "max load {}", p.max_load);
    }

    #[test]
    fn single_site_has_infinite_failover() {
        let p = planner().place(1, Objective::Latency);
        assert!(p.worst_failover_ms.is_infinite());
    }

    #[test]
    fn predictive_beats_reactive() {
        let reactive = simulate_reconfig(ReconfigStrategy::Reactive, 500, 6.0);
        let predictive = simulate_reconfig(ReconfigStrategy::Predictive, 500, 6.0);
        assert!(
            predictive.violations < reactive.violations / 2,
            "predictive {} vs reactive {}",
            predictive.violations,
            reactive.violations
        );
        // Prediction should not need wildly more moves.
        assert!(predictive.reconfigurations <= reactive.reconfigurations + 25);
    }

    #[test]
    fn loose_bound_never_violated() {
        let s = simulate_reconfig(ReconfigStrategy::Reactive, 500, 100.0);
        assert_eq!(s.violations, 0);
        assert_eq!(s.reconfigurations, 0);
    }
}
