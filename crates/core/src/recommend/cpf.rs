//! Control Plane Functionality enhancement (Section V-C).
//!
//! Three executable pieces:
//!
//! 1. **Near-RT RIC consolidation** — "integrating subscriber policies
//!    into the Near-Real-Time RAN Intelligent Controller … consolidate\[s\]
//!    session and mobility management at the network edge": a 5G
//!    session-establishment procedure is modelled as its actual message
//!    sequence over NF hosts; moving the NFs from the Vienna core to the
//!    Klagenfurt edge shortens every round trip.
//! 2. **Context-aware QoS rule stores** — "dynamically prioritizes Packet
//!    Detection Rules and QoS Enforcement Rules, reducing lookup and
//!    update latencies while enabling the simultaneous prioritization of
//!    multiple flows per UE": a linear PDR table vs an indexed,
//!    priority-ordered store, compared by actual probe counts.
//! 3. **Hybrid control** — "constraints imposed by real-time scheduling
//!    require a hybrid approach": per-slot decisions against the slot
//!    deadline under centralized, local, and hybrid control.

use serde::{Deserialize, Serialize};
use sixg_netsim::dist::{LogNormal, Sample};
use sixg_netsim::rng::SimRng;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// 1. Session establishment & RIC consolidation
// ---------------------------------------------------------------------

/// 5G core network functions involved in session establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NfKind {
    /// Access & mobility management.
    Amf,
    /// Session management.
    Smf,
    /// Policy control.
    Pcf,
    /// Subscriber data.
    Udm,
    /// User plane anchor (N4 interface).
    Upf,
}

/// One deployed control-plane layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlPlaneLayout {
    /// Name for reports.
    pub name: String,
    /// RTT from the RAN/edge to each NF, ms (service-based interface).
    pub nf_rtt_ms: Vec<(NfKind, f64)>,
    /// Mean per-NF processing, ms.
    pub nf_proc_ms: f64,
}

impl ControlPlaneLayout {
    /// Traditional layout: all NFs in the operator's Vienna core, ≈5 ms
    /// away from the Klagenfurt RAN.
    pub fn core_hosted() -> Self {
        Self {
            name: "core-hosted".into(),
            nf_rtt_ms: vec![
                (NfKind::Amf, 5.0),
                (NfKind::Smf, 5.0),
                (NfKind::Pcf, 5.2),
                (NfKind::Udm, 5.2),
                (NfKind::Upf, 5.0),
            ],
            nf_proc_ms: 0.8,
        }
    }

    /// RIC-consolidated layout: session & mobility management plus
    /// subscriber policy run in the Near-RT RIC at the edge (sub-ms SBI),
    /// only the subscriber database stays central.
    pub fn ric_consolidated() -> Self {
        Self {
            name: "ric-consolidated".into(),
            nf_rtt_ms: vec![
                (NfKind::Amf, 0.3),
                (NfKind::Smf, 0.3),
                (NfKind::Pcf, 0.3),
                (NfKind::Udm, 5.2), // UDM stays in the core
                (NfKind::Upf, 0.3),
            ],
            nf_proc_ms: 0.8,
        }
    }

    fn rtt(&self, nf: NfKind) -> f64 {
        self.nf_rtt_ms
            .iter()
            .find(|(k, _)| *k == nf)
            .map(|(_, v)| *v)
            .expect("NF present in layout")
    }

    /// Samples one PDU-session establishment, ms.
    ///
    /// Message sequence (3GPP TS 23.502 §4.3.2 abstracted):
    /// UE→AMF registration, AMF→UDM fetch, AMF→SMF create, SMF→PCF
    /// policy, SMF→UPF N4 setup, responses riding the same RTTs.
    pub fn session_setup_ms(&self, rng: &mut SimRng) -> f64 {
        let steps = [NfKind::Amf, NfKind::Udm, NfKind::Smf, NfKind::Pcf, NfKind::Upf];
        steps
            .iter()
            .map(|&nf| self.rtt(nf) + LogNormal::from_mean_cv(self.nf_proc_ms, 0.3).sample(rng))
            .sum()
    }

    /// Analytic mean setup latency, ms.
    pub fn mean_setup_ms(&self) -> f64 {
        let steps = [NfKind::Amf, NfKind::Udm, NfKind::Smf, NfKind::Pcf, NfKind::Upf];
        steps.iter().map(|&nf| self.rtt(nf) + self.nf_proc_ms).sum()
    }
}

// ---------------------------------------------------------------------
// 2. Context-aware QoS rule stores
// ---------------------------------------------------------------------

/// A packet detection / QoS enforcement rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosRule {
    /// Subscriber id.
    pub ue: u32,
    /// Flow id within the subscriber.
    pub flow: u32,
    /// Priority (lower = more important), multiple per UE allowed.
    pub priority: u8,
    /// Guaranteed bitrate, bps.
    pub gbr_bps: f64,
}

/// Lookup outcome with the cost actually paid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupResult {
    /// The matched rule, if any.
    pub rule: Option<QosRule>,
    /// Entries probed to find it.
    pub probes: u64,
}

/// A linear PDR table — what a naïve UPF implementation scans.
#[derive(Debug, Clone, Default)]
pub struct LinearRuleStore {
    rules: Vec<QosRule>,
}

impl LinearRuleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule (appended; priority order is *not* maintained).
    pub fn install(&mut self, rule: QosRule) {
        self.rules.push(rule);
    }

    /// Scans for the highest-priority rule matching `(ue, flow)`.
    pub fn lookup(&self, ue: u32, flow: u32) -> LookupResult {
        let mut probes = 0;
        let mut best: Option<QosRule> = None;
        for r in &self.rules {
            probes += 1;
            if r.ue == ue && r.flow == flow {
                match best {
                    Some(b) if b.priority <= r.priority => {}
                    _ => best = Some(*r),
                }
            }
        }
        LookupResult { rule: best, probes }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The context-aware store of Jain et al.: rules indexed by `(ue, flow)`
/// and kept priority-ordered, so a lookup is a tree descent and the best
/// rule for a flow is the first entry — supporting many prioritized flows
/// per UE at once.
#[derive(Debug, Clone, Default)]
pub struct ContextAwareRuleStore {
    by_flow: BTreeMap<(u32, u32), Vec<QosRule>>,
    size: usize,
}

impl ContextAwareRuleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule, keeping the per-flow list priority-sorted.
    pub fn install(&mut self, rule: QosRule) {
        let list = self.by_flow.entry((rule.ue, rule.flow)).or_default();
        let pos = list.partition_point(|r| r.priority <= rule.priority);
        list.insert(pos, rule);
        self.size += 1;
    }

    /// Looks up the best rule for `(ue, flow)`; the probe count is the
    /// tree-descent depth (log₂ of the map size) plus one list read.
    pub fn lookup(&self, ue: u32, flow: u32) -> LookupResult {
        let depth = (self.by_flow.len().max(1) as f64).log2().ceil() as u64 + 1;
        let rule = self.by_flow.get(&(ue, flow)).and_then(|l| l.first()).copied();
        LookupResult { rule, probes: depth }
    }

    /// All rules of one UE in priority order (the "simultaneous
    /// prioritization of multiple flows per UE").
    pub fn ue_rules(&self, ue: u32) -> Vec<QosRule> {
        let mut out: Vec<QosRule> = self
            .by_flow
            .range((ue, 0)..=(ue, u32::MAX))
            .flat_map(|(_, l)| l.iter().copied())
            .collect();
        out.sort_by_key(|r| r.priority);
        out
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// Compares mean probes per lookup of both stores over a workload of
/// `n_rules` rules and `lookups` random flow touches.
pub fn rule_store_comparison(n_rules: u32, lookups: u32, seed: u64) -> (f64, f64) {
    let mut rng = SimRng::from_seed(seed);
    let mut linear = LinearRuleStore::new();
    let mut ctx = ContextAwareRuleStore::new();
    for i in 0..n_rules {
        let rule = QosRule {
            ue: i % (n_rules / 4).max(1),
            flow: i % 8,
            priority: (rng.below(8)) as u8,
            gbr_bps: 1e6,
        };
        linear.install(rule);
        ctx.install(rule);
    }
    let mut lp = 0u64;
    let mut cp = 0u64;
    for _ in 0..lookups {
        let ue = rng.below((n_rules / 4).max(1) as u64) as u32;
        let flow = rng.below(8) as u32;
        lp += linear.lookup(ue, flow).probes;
        cp += ctx.lookup(ue, flow).probes;
    }
    (lp as f64 / lookups as f64, cp as f64 / lookups as f64)
}

// ---------------------------------------------------------------------
// 3. Hybrid centralized/decentralized control
// ---------------------------------------------------------------------

/// Who takes per-slot scheduling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMode {
    /// Every decision round-trips to the (edge) RIC.
    Centralized,
    /// Every decision is taken locally with possibly stale policy.
    Local,
    /// Decisions local, policy updates centralized (the paper's hybrid).
    Hybrid,
}

/// Result of a control-loop simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlStats {
    /// Fraction of slots whose decision met the slot deadline.
    pub on_time_ratio: f64,
    /// Fraction of decisions taken on stale policy (> policy_ttl old).
    pub stale_ratio: f64,
}

/// Simulates `slots` scheduling decisions with a `slot_ms` deadline.
/// The RIC RTT applies to centralized decisions and to policy refreshes;
/// local decisions cost `local_proc_ms` but see policy as old as the
/// refresh period.
pub fn simulate_control(
    mode: ControlMode,
    slots: u32,
    slot_ms: f64,
    ric_rtt_ms: f64,
    local_proc_ms: f64,
    policy_refresh_slots: u32,
    rng: &mut SimRng,
) -> ControlStats {
    let mut on_time = 0u32;
    let mut stale = 0u32;
    for slot in 0..slots {
        let (latency, is_stale) = match mode {
            ControlMode::Centralized => {
                let l = ric_rtt_ms * LogNormal::from_mean_cv(1.0, 0.2).sample(rng);
                (l, false)
            }
            ControlMode::Local => {
                let l = local_proc_ms * LogNormal::from_mean_cv(1.0, 0.2).sample(rng);
                // Policy never refreshed in pure local mode.
                (l, slot > policy_refresh_slots)
            }
            ControlMode::Hybrid => {
                let l = local_proc_ms * LogNormal::from_mean_cv(1.0, 0.2).sample(rng);
                (l, slot % policy_refresh_slots.max(1) == policy_refresh_slots.max(1) - 1)
            }
        };
        if latency <= slot_ms {
            on_time += 1;
        }
        if is_stale {
            stale += 1;
        }
    }
    ControlStats {
        on_time_ratio: on_time as f64 / slots.max(1) as f64,
        stale_ratio: stale as f64 / slots.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ric_consolidation_cuts_setup_latency() {
        let core = ControlPlaneLayout::core_hosted();
        let ric = ControlPlaneLayout::ric_consolidated();
        let core_ms = core.mean_setup_ms();
        let ric_ms = ric.mean_setup_ms();
        assert!(core_ms > 25.0, "core {core_ms}");
        assert!(ric_ms < core_ms / 2.0, "ric {ric_ms} vs core {core_ms}");
        // UDM leg keeps it from collapsing entirely.
        assert!(ric_ms > 5.0);
    }

    #[test]
    fn sampled_setup_matches_analytic() {
        let layout = ControlPlaneLayout::core_hosted();
        let mut rng = SimRng::from_seed(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| layout.session_setup_ms(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - layout.mean_setup_ms()).abs() < 0.2, "{mean}");
    }

    #[test]
    fn stores_agree_on_matches() {
        let mut linear = LinearRuleStore::new();
        let mut ctx = ContextAwareRuleStore::new();
        let rules = [
            QosRule { ue: 1, flow: 1, priority: 5, gbr_bps: 1e6 },
            QosRule { ue: 1, flow: 1, priority: 2, gbr_bps: 5e6 },
            QosRule { ue: 1, flow: 2, priority: 1, gbr_bps: 2e6 },
            QosRule { ue: 2, flow: 1, priority: 3, gbr_bps: 3e6 },
        ];
        for r in rules {
            linear.install(r);
            ctx.install(r);
        }
        for (ue, flow) in [(1, 1), (1, 2), (2, 1), (9, 9)] {
            let a = linear.lookup(ue, flow).rule;
            let b = ctx.lookup(ue, flow).rule;
            assert_eq!(a, b, "({ue},{flow})");
        }
        // Highest priority rule wins for (1,1).
        assert_eq!(linear.lookup(1, 1).rule.unwrap().priority, 2);
    }

    #[test]
    fn multiple_flows_per_ue_prioritized() {
        let mut ctx = ContextAwareRuleStore::new();
        for (flow, prio) in [(1u32, 4u8), (2, 1), (3, 2)] {
            ctx.install(QosRule { ue: 7, flow, priority: prio, gbr_bps: 1e6 });
        }
        let rules = ctx.ue_rules(7);
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].flow, 2);
        assert_eq!(rules[1].flow, 3);
        assert_eq!(rules[2].flow, 1);
    }

    #[test]
    fn context_store_orders_of_magnitude_fewer_probes() {
        let (linear, ctx) = rule_store_comparison(10_000, 2_000, 3);
        assert!(linear > 9_000.0, "linear probes {linear}");
        assert!(ctx < 20.0, "ctx probes {ctx}");
        assert!(linear / ctx > 100.0, "speedup {}", linear / ctx);
    }

    #[test]
    fn centralized_control_misses_slot_deadline() {
        let mut rng = SimRng::from_seed(4);
        // 0.5 ms slots, RIC 1.2 ms away even at the edge.
        let c = simulate_control(ControlMode::Centralized, 5000, 0.5, 1.2, 0.05, 100, &mut rng);
        assert!(c.on_time_ratio < 0.05, "on-time {}", c.on_time_ratio);
    }

    #[test]
    fn hybrid_meets_deadline_with_bounded_staleness() {
        let mut rng = SimRng::from_seed(5);
        let h = simulate_control(ControlMode::Hybrid, 5000, 0.5, 1.2, 0.05, 100, &mut rng);
        assert!(h.on_time_ratio > 0.99, "on-time {}", h.on_time_ratio);
        assert!(h.stale_ratio < 0.02, "stale {}", h.stale_ratio);
        // Pure local control is fast but unboundedly stale.
        let l = simulate_control(ControlMode::Local, 5000, 0.5, 1.2, 0.05, 100, &mut rng);
        assert!(l.on_time_ratio > 0.99);
        assert!(l.stale_ratio > 0.9, "stale {}", l.stale_ratio);
    }
}
