//! User Plane Function integration (Section V-B).
//!
//! Three executable claims from the paper:
//!
//! 1. "UPF integration can achieve latencies between 5 and 6.2 ms — a
//!    reduction of up to 90 % compared to our evaluation results exceeding
//!    62 ms" (Barrachina, Goshi) — reproduced by placing a UPF with local
//!    breakout at the Klagenfurt edge and re-measuring;
//! 2. "dynamic UPF selection can facilitate adaptive routing —
//!    prioritizing latency-sensitive tasks at the edge while offloading
//!    less critical workloads to centralized cloud UPFs";
//! 3. "a Smart NIC-based UPF … can double throughput and reduce packet
//!    processing latency by a factor of 3.75" (Jain, Panda).

use serde::{Deserialize, Serialize};
use sixg_geo::GeoPoint;
use sixg_measure::klagenfurt::{KlagenfurtScenario, OP_AS};
use sixg_netsim::dist::{LogNormal, Sample};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::packet::TrafficClass;
use sixg_netsim::queueing::{mm1_wait, Load};
use sixg_netsim::radio::{AccessModel, FiveGAccess};
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::PathComputer;
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{LinkParams, NodeId, NodeKind, Topology};

/// Where a UPF instance sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpfTier {
    /// Colocated with the RAN aggregation in Klagenfurt (MEC breakout).
    Edge,
    /// Operator regional core (Vienna).
    Regional,
    /// Central cloud (Vienna cloud DC, N6 via peering).
    Central,
}

/// A deployed UPF instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UpfInstance {
    /// Node hosting the UPF.
    pub node: NodeId,
    /// Deployment tier.
    pub tier: UpfTier,
    /// Data-plane implementation.
    pub dataplane: Dataplane,
}

/// UPF data-plane implementation (the SmartNIC claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataplane {
    /// Kernel/host-CPU path through host memory and the PCIe bus.
    HostCpu,
    /// SmartNIC offload bypassing host memory (Jain et al.).
    SmartNic,
}

impl Dataplane {
    /// Mean per-packet processing latency, ms.
    pub fn proc_ms(self) -> f64 {
        match self {
            Dataplane::HostCpu => 0.015,
            // "reduce packet processing latency by a factor of 3.75".
            Dataplane::SmartNic => 0.015 / 3.75,
        }
    }

    /// Saturation throughput, packets per second.
    pub fn capacity_pps(self) -> f64 {
        match self {
            Dataplane::HostCpu => 1.2e6,
            // "double throughput".
            Dataplane::SmartNic => 2.4e6,
        }
    }

    /// One processing sample including queueing at the given offered
    /// load, ms. Returns `f64::INFINITY` beyond saturation.
    pub fn sample_proc_ms(self, offered_pps: f64, rng: &mut SimRng) -> f64 {
        let cap = self.capacity_pps();
        if offered_pps >= cap {
            return f64::INFINITY;
        }
        let base = LogNormal::from_mean_cv(self.proc_ms(), 0.3).sample(rng);
        let wait_s = mm1_wait(Load::new(offered_pps, cap));
        // Exponential queueing sample around the analytic mean.
        let q = if wait_s > 0.0 { -(1.0 - rng.unit()).ln() * wait_s * 1e3 } else { 0.0 };
        base + q
    }

    /// Achieved throughput for an offered load, pps.
    pub fn throughput_pps(self, offered_pps: f64) -> f64 {
        offered_pps.min(self.capacity_pps())
    }
}

/// Extends the scenario with UPF instances at all three tiers and returns
/// them. The edge UPF gets a colocated application server (local
/// breakout), matching the MEC deployments of the cited studies.
pub fn deploy_upfs(scenario: &mut KlagenfurtScenario, dataplane: Dataplane) -> Vec<UpfInstance> {
    let topo = &mut scenario.topo;
    let edge = topo.add_node(NodeKind::Upf, "upf-edge-klu", GeoPoint::new(46.623, 14.301), OP_AS);
    let regional =
        topo.add_node(NodeKind::Upf, "upf-reg-vie", GeoPoint::new(48.209, 16.365), OP_AS);
    let central =
        topo.add_node(NodeKind::Upf, "upf-central-vie", GeoPoint::new(48.231, 16.412), OP_AS);

    let gw = scenario.gw;
    topo.add_link(gw, edge, LinkParams { bandwidth_bps: 100e9, utilisation: 0.10, extra_ms: 0.02 });
    // Regional UPF sits next to the operator's Vienna backhaul landing.
    topo.add_link(
        gw,
        regional,
        LinkParams { bandwidth_bps: 100e9, utilisation: 0.30, extra_ms: 0.1 },
    );
    topo.add_link(
        gw,
        central,
        LinkParams { bandwidth_bps: 100e9, utilisation: 0.40, extra_ms: 0.5 },
    );

    // Local breakout server at the edge UPF.
    let app =
        topo.add_node(NodeKind::EdgeServer, "mec-app-klu", GeoPoint::new(46.6235, 14.3015), OP_AS);
    topo.add_link(edge, app, LinkParams { bandwidth_bps: 100e9, utilisation: 0.05, extra_ms: 0.0 });

    scenario.refresh_routes();
    vec![
        UpfInstance { node: edge, tier: UpfTier::Edge, dataplane },
        UpfInstance { node: regional, tier: UpfTier::Regional, dataplane },
        UpfInstance { node: central, tier: UpfTier::Central, dataplane },
    ]
}

/// Measured service RTT through a UPF: radio access + wire to the UPF +
/// UPF processing, both directions.
pub fn service_rtt_ms(
    topo: &Topology,
    pc: &PathComputer<'_>,
    ue: NodeId,
    upf: &UpfInstance,
    access: &FiveGAccess,
    offered_pps: f64,
    rng: &mut SimRng,
) -> Option<f64> {
    let path = pc.route(ue, upf.node)?;
    let sampler = DelaySampler::new(topo);
    let wire = sampler.rtt_ms(&path.hops, 256, rng);
    let proc = upf.dataplane.sample_proc_ms(offered_pps, rng) * 2.0;
    Some(access.sample_rtt_ms(rng) + wire + proc)
}

/// Greedy k-median UPF placement: chooses `k` of `candidates` minimising
/// the demand-weighted mean expected latency from `clients`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementSolution {
    /// Chosen sites in selection order.
    pub chosen: Vec<NodeId>,
    /// Demand-weighted mean client→nearest-site latency, ms.
    pub mean_latency_ms: f64,
}

/// Solves the placement greedily (classic 1−1/e approximation shape).
pub fn place_upfs(
    pc: &PathComputer<'_>,
    candidates: &[NodeId],
    clients: &[(NodeId, f64)],
    k: usize,
) -> PlacementSolution {
    assert!(k >= 1 && k <= candidates.len(), "invalid k");
    let lat = |client: NodeId, site: NodeId| -> f64 {
        pc.expected_one_way_ms(client, site).unwrap_or(f64::INFINITY)
    };
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    let mut best_to_chosen: Vec<f64> = vec![f64::INFINITY; clients.len()];
    for _ in 0..k {
        let mut best_site: Option<(NodeId, f64)> = None;
        for &cand in candidates {
            if chosen.contains(&cand) {
                continue;
            }
            let total: f64 = clients
                .iter()
                .enumerate()
                .map(|(i, &(c, w))| w * best_to_chosen[i].min(lat(c, cand)))
                .sum();
            if best_site.map(|(_, t)| total < t).unwrap_or(true) {
                best_site = Some((cand, total));
            }
        }
        let (site, _) = best_site.expect("candidates remain");
        chosen.push(site);
        for (i, &(c, _)) in clients.iter().enumerate() {
            best_to_chosen[i] = best_to_chosen[i].min(lat(c, site));
        }
    }
    let weight: f64 = clients.iter().map(|(_, w)| w).sum();
    let mean = clients.iter().enumerate().map(|(i, &(_, w))| w * best_to_chosen[i]).sum::<f64>()
        / weight.max(1e-12);
    PlacementSolution { chosen, mean_latency_ms: mean }
}

/// Dynamic UPF selection: latency-critical classes break out at the edge,
/// bulk rides to the central UPF.
pub fn select_upf(class: TrafficClass, upfs: &[UpfInstance]) -> &UpfInstance {
    let want = match class {
        TrafficClass::Critical | TrafficClass::Interactive => UpfTier::Edge,
        TrafficClass::Bulk => UpfTier::Central,
        TrafficClass::Management => UpfTier::Regional,
    };
    upfs.iter()
        .find(|u| u.tier == want)
        .or_else(|| upfs.first())
        .expect("at least one UPF deployed")
}

/// The headline UPF evaluation: baseline (detour to the anchor) vs edge
/// UPF breakout under a lightly loaded cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpfReport {
    /// Baseline mean RTT (C2 campaign value), ms.
    pub baseline_ms: f64,
    /// Edge-UPF mean service RTT under the ideal cell, ms.
    pub edge_upf_ms: f64,
    /// Relative reduction, percent.
    pub reduction_pct: f64,
    /// Per-class mean RTT with dynamic selection (critical, bulk), ms.
    pub critical_ms: f64,
    /// Bulk class RTT via the central UPF, ms.
    pub bulk_ms: f64,
}

/// Runs the full UPF evaluation.
pub fn evaluate(seed: u64) -> UpfReport {
    let mut scenario = KlagenfurtScenario::paper(seed);
    let c2 = sixg_geo::CellId::parse("C2").expect("static label");
    let (ue, anchor) = scenario.table1_endpoints();

    // Baseline: the measured C2 flow to the anchor (Table I / Figure 2).
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let base_path = pc.route(ue, anchor).expect("routable");
    let sampler = DelaySampler::new(&scenario.topo);
    let c2_access = *scenario.access_for(c2);
    let mut rng = SimRng::for_stream(StreamKey::root(seed).with_label("upf-eval"));
    let mut w_base = Welford::new();
    for _ in 0..4000 {
        w_base.push(
            sampler.rtt_ms(&base_path.hops, 256, &mut rng) + c2_access.sample_rtt_ms(&mut rng),
        );
    }
    let _ = pc;

    // Deploy UPFs and re-measure through the edge breakout. The cited
    // 5-6.2 ms studies measure unloaded testbeds, so the cell is ideal.
    let upfs = deploy_upfs(&mut scenario, Dataplane::HostCpu);
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let ideal = FiveGAccess::ideal();
    let offered = 0.4e6; // 33% of host-CPU capacity

    let edge = select_upf(TrafficClass::Critical, &upfs);
    let central = select_upf(TrafficClass::Bulk, &upfs);
    let mut w_edge = Welford::new();
    let mut w_bulk = Welford::new();
    for _ in 0..4000 {
        w_edge.push(
            service_rtt_ms(&scenario.topo, &pc, ue, edge, &ideal, offered, &mut rng)
                .expect("edge routable"),
        );
        w_bulk.push(
            service_rtt_ms(&scenario.topo, &pc, ue, central, &ideal, offered, &mut rng)
                .expect("central routable"),
        );
    }

    UpfReport {
        baseline_ms: w_base.mean(),
        edge_upf_ms: w_edge.mean(),
        reduction_pct: (w_base.mean() - w_edge.mean()) / w_base.mean() * 100.0,
        critical_ms: w_edge.mean(),
        bulk_ms: w_bulk.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static UpfReport {
        static R: OnceLock<UpfReport> = OnceLock::new();
        R.get_or_init(|| evaluate(1))
    }

    #[test]
    fn edge_upf_hits_5_to_6_2ms_band() {
        let r = report();
        assert!(
            (5.0..=6.2).contains(&r.edge_upf_ms),
            "edge UPF RTT {} (paper band: 5-6.2 ms)",
            r.edge_upf_ms
        );
    }

    #[test]
    fn reduction_is_about_90_percent() {
        let r = report();
        assert!(r.baseline_ms > 62.0, "baseline {}", r.baseline_ms);
        assert!((88.0..=95.0).contains(&r.reduction_pct), "reduction {}%", r.reduction_pct);
    }

    #[test]
    fn dynamic_selection_separates_classes() {
        let r = report();
        assert!(r.bulk_ms > r.critical_ms + 2.0, "bulk {} critical {}", r.bulk_ms, r.critical_ms);
    }

    #[test]
    fn smartnic_doubles_throughput() {
        let host = Dataplane::HostCpu;
        let nic = Dataplane::SmartNic;
        assert_eq!(nic.capacity_pps(), 2.0 * host.capacity_pps());
        // Beyond host saturation the NIC still forwards.
        let offered = 1.5e6;
        assert_eq!(host.throughput_pps(offered), 1.2e6);
        assert_eq!(nic.throughput_pps(offered), 1.5e6);
    }

    #[test]
    fn smartnic_processing_3_75x_faster() {
        let ratio = Dataplane::HostCpu.proc_ms() / Dataplane::SmartNic.proc_ms();
        assert!((ratio - 3.75).abs() < 1e-9);
        // And the sampled means preserve the factor at light load.
        let mut rng = SimRng::from_seed(2);
        let n = 50_000;
        let h: f64 = (0..n).map(|_| Dataplane::HostCpu.sample_proc_ms(1e5, &mut rng)).sum::<f64>()
            / n as f64;
        let s: f64 = (0..n).map(|_| Dataplane::SmartNic.sample_proc_ms(1e5, &mut rng)).sum::<f64>()
            / n as f64;
        assert!((h / s - 3.75).abs() < 0.4, "sampled ratio {}", h / s);
    }

    #[test]
    fn saturated_dataplane_is_infinite() {
        let mut rng = SimRng::from_seed(3);
        assert!(Dataplane::HostCpu.sample_proc_ms(1.3e6, &mut rng).is_infinite());
    }

    #[test]
    fn greedy_placement_prefers_edge_for_local_demand() {
        let mut scenario = KlagenfurtScenario::paper(1);
        let upfs = deploy_upfs(&mut scenario, Dataplane::HostCpu);
        let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
        let candidates: Vec<NodeId> = upfs.iter().map(|u| u.node).collect();
        let clients: Vec<(NodeId, f64)> = scenario.ue.values().map(|&n| (n, 1.0)).collect();
        let sol = place_upfs(&pc, &candidates, &clients, 1);
        assert_eq!(sol.chosen[0], upfs[0].node, "edge site must win for local demand");
        // More sites never hurt.
        let sol2 = place_upfs(&pc, &candidates, &clients, 2);
        assert!(sol2.mean_latency_ms <= sol.mean_latency_ms + 1e-9);
    }
}
