//! The paper's three 6G infrastructure strategies (Section V), executable.
//!
//! * [`peering`] — local peering optimisation: detect policy-induced
//!   detours, add local interconnects, re-run routing (Section V-A);
//! * [`upf`] — User Plane Function integration: placement optimisation,
//!   dynamic per-class selection, SmartNIC offload (Section V-B);
//! * [`cpf`] — control-plane functionality enhancement: Near-RT RIC
//!   consolidation, context-aware QoS rule stores, hybrid control
//!   (Section V-C).

pub mod cpf;
pub mod peering;
pub mod upf;
