//! Local peering optimisation (Section V-A).
//!
//! The paper: "Local peering methods eliminate these redundant paths,
//! creating a shorter and more optimized route between the source and
//! destination … Horvath \[3\] has demonstrated that such optimization can
//! achieve round-trip latencies as low as 1 ms."
//!
//! The optimizer detects policy-induced detours on given flows, then adds
//! a local interconnect (an IXP-style link plus the business agreement to
//! use it) and lets BGP re-converge. Nothing about the original detour is
//! special-cased: removing the peering restores it.

use serde::{Deserialize, Serialize};
use sixg_measure::klagenfurt::{KlagenfurtScenario, ASCUS_AS, CAMPUS_AS, OP_AS};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::radio::{AccessModel, WiredAccess};
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::PathComputer;
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{LinkParams, NodeId};

/// How deep the local interconnect goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeeringDepth {
    /// Operator peers with the local access ISP at a Klagenfurt IXP.
    LocalIsp,
    /// Operator peers directly with the campus network (on-site
    /// interconnect) — the deepest, lowest-latency option.
    DirectCampus,
}

/// Summary of one flow's path before or after a change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Router hops.
    pub hops: usize,
    /// Route length, km.
    pub route_km: f64,
    /// Expected network-only RTT, ms.
    pub wire_rtt_ms: f64,
}

/// Outcome of applying local peering to the Klagenfurt scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeeringReport {
    /// Interconnect depth applied.
    pub depth: PeeringDepth,
    /// Table-I flow before the change.
    pub before: PathSummary,
    /// Table-I flow after the change.
    pub after: PathSummary,
    /// Mean *wired-access* RTT over the new path, ms — the configuration
    /// behind the literature's "as low as 1 ms" claim.
    pub wired_rtt_after_ms: f64,
    /// Minimum wired sample observed, ms.
    pub wired_rtt_min_ms: f64,
    /// Mean *mobile* (5G C2 cell) RTT after the change, ms — shows the
    /// radio access becoming the dominant residual (motivating V-B).
    pub mobile_rtt_after_ms: f64,
}

/// Summarises the current Table-I flow of a scenario.
pub fn summarise_flow(scenario: &KlagenfurtScenario, src: NodeId, dst: NodeId) -> PathSummary {
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let path = pc.route(src, dst).expect("flow must route");
    let wire = pc.expected_one_way_ms(src, dst).expect("routable") * 2.0;
    PathSummary {
        hops: path.hop_count(),
        route_km: path.route_km(&scenario.topo),
        wire_rtt_ms: wire,
    }
}

/// Counts campaign flows whose route is inefficient: more hops than
/// `hop_budget`, or an absolute geographic detour above 50 km (urban
/// flows should never leave the metro area).
pub fn detect_detours(scenario: &KlagenfurtScenario, hop_budget: usize) -> usize {
    scenario
        .routes
        .values()
        .filter(|path| {
            let km = path.route_km(&scenario.topo);
            let direct =
                scenario.topo.node(path.src).pos.distance_km(scenario.topo.node(path.dst()).pos);
            path.hop_count() > hop_budget || km - direct > 50.0
        })
        .count()
}

/// Applies local peering to the scenario: adds the interconnect link and
/// the peering agreement, then refreshes routing.
pub fn apply_local_peering(scenario: &mut KlagenfurtScenario, depth: PeeringDepth) {
    let gw = scenario.gw;
    match depth {
        PeeringDepth::LocalIsp => {
            let ascus_klu = scenario.topo.find_by_name("ascus-agg-klu").expect("scenario node");
            scenario.topo.add_link(
                gw,
                ascus_klu,
                LinkParams { bandwidth_bps: 100e9, utilisation: 0.15, extra_ms: 0.05 },
            );
            scenario.as_graph.add_peering(OP_AS, ASCUS_AS);
        }
        PeeringDepth::DirectCampus => {
            let anchor = scenario.anchor;
            scenario.topo.add_link(
                gw,
                anchor,
                LinkParams { bandwidth_bps: 100e9, utilisation: 0.10, extra_ms: 0.02 },
            );
            scenario.as_graph.add_peering(OP_AS, CAMPUS_AS);
        }
    }
    scenario.refresh_routes();
}

/// Full before/after evaluation on a fresh scenario.
pub fn evaluate(seed: u64, depth: PeeringDepth) -> PeeringReport {
    let mut scenario = KlagenfurtScenario::paper(seed);
    let (ue, anchor) = scenario.table1_endpoints();
    let before = summarise_flow(&scenario, ue, anchor);

    apply_local_peering(&mut scenario, depth);
    let after = summarise_flow(&scenario, ue, anchor);

    // Wired and mobile RTT sampling over the new path.
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let path = pc.route(ue, anchor).expect("routable");
    let sampler = DelaySampler::new(&scenario.topo);
    let wired = WiredAccess { mean_ms: 0.3, cv: 0.2 };
    let c2 = sixg_geo::CellId::parse("C2").expect("static label");
    let mobile = *scenario.access_for(c2);

    let mut rng = SimRng::for_stream(StreamKey::root(seed).with_label("peering-eval"));
    let mut w_wired = Welford::new();
    let mut w_mobile = Welford::new();
    for _ in 0..4000 {
        w_wired.push(sampler.rtt_ms(&path.hops, 64, &mut rng) + wired.sample_rtt_ms(&mut rng));
        w_mobile.push(sampler.rtt_ms(&path.hops, 64, &mut rng) + mobile.sample_rtt_ms(&mut rng));
    }

    PeeringReport {
        depth,
        before,
        after,
        wired_rtt_after_ms: w_wired.mean(),
        wired_rtt_min_ms: w_wired.min(),
        mobile_rtt_after_ms: w_mobile.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_flow_is_the_table1_detour() {
        let scenario = KlagenfurtScenario::paper(1);
        let (ue, anchor) = scenario.table1_endpoints();
        let s = summarise_flow(&scenario, ue, anchor);
        assert_eq!(s.hops, 10);
        assert!(s.route_km > 2500.0, "route {}", s.route_km);
        assert!((38.0..46.0).contains(&s.wire_rtt_ms), "wire rtt {}", s.wire_rtt_ms);
    }

    #[test]
    fn local_isp_peering_collapses_detour() {
        let r = evaluate(1, PeeringDepth::LocalIsp);
        assert_eq!(r.before.hops, 10);
        assert!(r.after.hops <= 3, "after hops {}", r.after.hops);
        assert!(r.after.route_km < 20.0, "after km {}", r.after.route_km);
        assert!(r.after.wire_rtt_ms < 5.0, "after wire {}", r.after.wire_rtt_ms);
    }

    #[test]
    fn direct_campus_peering_reaches_literature_band() {
        // Horvath [3]: wired RTT "as low as 1 ms" with local peering.
        let r = evaluate(1, PeeringDepth::DirectCampus);
        assert!(r.after.hops <= 2, "after hops {}", r.after.hops);
        assert!(r.wired_rtt_after_ms < 3.0, "wired mean {}", r.wired_rtt_after_ms);
        assert!(r.wired_rtt_min_ms < 1.6, "wired min {}", r.wired_rtt_min_ms);
    }

    #[test]
    fn radio_dominates_after_peering() {
        // Section V-B's motivation: after fixing the path, the 5G access
        // is the residual bottleneck.
        let r = evaluate(1, PeeringDepth::LocalIsp);
        assert!(r.mobile_rtt_after_ms > 5.0 * r.wired_rtt_after_ms);
        assert!(r.mobile_rtt_after_ms > 20.0, "mobile after {}", r.mobile_rtt_after_ms);
    }

    #[test]
    fn all_campaign_flows_are_detoured_before() {
        let scenario = KlagenfurtScenario::paper(1);
        let detours = detect_detours(&scenario, 9);
        assert_eq!(detours, scenario.routes.len());
    }

    #[test]
    fn peering_fixes_anchor_flows_only_partially_for_peers() {
        // Peers are behind the Vienna BRAS, so peering with the local ISP
        // still helps, but those flows keep a Vienna leg.
        let mut scenario = KlagenfurtScenario::paper(1);
        apply_local_peering(&mut scenario, PeeringDepth::LocalIsp);
        let detours = detect_detours(&scenario, 9);
        assert!(detours < scenario.routes.len());
    }
}
