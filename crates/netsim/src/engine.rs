//! Deterministic discrete-event engine.
//!
//! A classic event-calendar simulator: closures scheduled at simulation
//! times, executed in (time, insertion-sequence) order so that ties are
//! broken deterministically. The engine is generic over a *world* type `W`
//! owned by the caller; events receive `&mut Engine` (to schedule more
//! events) and `&mut W` (to mutate state). This split keeps the borrow
//! checker happy without interior mutability.
//!
//! The workload crates drive everything per-packet through this engine;
//! measurement campaigns use the analytic sampler instead (see
//! [`crate::latency`]) because they need millions of independent samples,
//! not packet interleavings.

use crate::time::{SimDuration, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Boxed event action.
type Action<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The event-driven simulation engine.
pub struct Engine<W> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    seq: u64,
    executed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO, queue: BinaryHeap::new(), seq: 0, executed: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run after `delay`.
    pub fn schedule(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules `action` at an absolute time. Panics if the time is in
    /// the past (events may be scheduled *at* `now`).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, action: Box::new(action) }));
    }

    /// Executes the next event. Returns `false` when the calendar is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            None => false,
            Some(Reverse(ev)) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(self, world);
                true
            }
        }
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the calendar drains or simulated time exceeds `until`
    /// (events scheduled later stay queued; `now` is clamped to `until`).
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.queue.peek() {
                None => break,
                Some(Reverse(ev)) if ev.at > until => break,
                _ => {
                    self.step(world);
                }
            }
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        eng.schedule(SimDuration::from_millis(30), |_, w: &mut Vec<u32>| w.push(3));
        eng.schedule(SimDuration::from_millis(10), |_, w: &mut Vec<u32>| w.push(1));
        eng.schedule(SimDuration::from_millis(20), |_, w: &mut Vec<u32>| w.push(2));
        eng.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(eng.executed(), 3);
        assert_eq!(eng.now(), SimTime::from_secs_f64(0.030));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        for i in 0..10 {
            eng.schedule(SimDuration::from_millis(5), move |_, w: &mut Vec<u32>| w.push(i));
        }
        eng.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut world = Vec::new();
        fn tick(eng: &mut Engine<Vec<u64>>, w: &mut Vec<u64>) {
            w.push(eng.now().0);
            if w.len() < 5 {
                eng.schedule(SimDuration::from_millis(1), tick);
            }
        }
        eng.schedule(SimDuration::ZERO, tick);
        eng.run(&mut world);
        assert_eq!(world.len(), 5);
        assert_eq!(world[4], 4_000_000); // 4 ms in ns
    }

    #[test]
    fn run_until_stops_and_clamps() {
        let mut eng: Engine<u32> = Engine::new();
        let mut world = 0u32;
        eng.schedule(SimDuration::from_millis(5), |_, w| *w += 1);
        eng.schedule(SimDuration::from_millis(50), |_, w| *w += 100);
        eng.run_until(&mut world, SimTime::from_secs_f64(0.010));
        assert_eq!(world, 1);
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now(), SimTime::from_secs_f64(0.010));
        // Continue to completion.
        eng.run(&mut world);
        assert_eq!(world, 101);
    }

    #[test]
    fn zero_delay_event_runs_at_now() {
        let mut eng: Engine<bool> = Engine::new();
        let mut fired = false;
        eng.schedule(SimDuration::ZERO, |e, w| {
            *w = true;
            assert_eq!(e.now(), SimTime::ZERO);
        });
        eng.run(&mut fired);
        assert!(fired);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule(SimDuration::from_millis(10), |e, _| {
            e.schedule_at(SimTime::from_secs_f64(0.001), |_, _| {});
        });
        eng.run(&mut ());
    }

    #[test]
    fn empty_engine_steps_false() {
        let mut eng: Engine<()> = Engine::new();
        assert!(!eng.step(&mut ()));
        assert_eq!(eng.executed(), 0);
    }
}
