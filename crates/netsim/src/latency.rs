//! Per-hop latency decomposition and end-to-end path sampling.
//!
//! Every hop contributes four delay components, mirroring the textbook
//! decomposition the paper's analysis uses:
//!
//! 1. **Propagation** — geodesic link length × fibre-route factor at
//!    ~5 µs/km (deterministic);
//! 2. **Transmission** — packet size / link bandwidth (deterministic);
//! 3. **Queueing** — sampled exponential with the M/G/1 mean wait for the
//!    link's background utilisation (stochastic);
//! 4. **Processing** — lognormal around the node-class base figure
//!    (stochastic).
//!
//! The *expected* values of the same components provide the routing metric
//! ([`expected_link_ms`]) so that paths are chosen by the delays packets
//! will actually experience.

use crate::dist::{LogNormal, Sample};
use crate::packet::MEAN_PACKET_BYTES;
use crate::queueing::{mg1_wait, Load};
use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::topology::{LinkId, NodeId, Topology};
use sixg_geo::coord::C_FIBRE_KM_S;
use sixg_geo::route::FIBRE_ROUTE_FACTOR;

/// Squared coefficient of variation of per-packet service time used for
/// the M/G/1 queueing model (mixed packet sizes ⇒ slightly sub-exponential).
pub const SERVICE_CS2: f64 = 0.8;

/// Coefficient of variation of node processing time.
pub const PROCESSING_CV: f64 = 0.35;

/// Deterministic propagation delay of a link, milliseconds.
pub fn propagation_ms(topo: &Topology, link: LinkId) -> f64 {
    topo.link_km(link) * FIBRE_ROUTE_FACTOR / C_FIBRE_KM_S * 1e3
}

/// Deterministic transmission delay for `size_bytes` on a link, ms.
pub fn transmission_ms(topo: &Topology, link: LinkId, size_bytes: u32) -> f64 {
    size_bytes as f64 * 8.0 / topo.link(link).params.bandwidth_bps * 1e3
}

/// The link's M/G/1 queueing [`Load`] given its background utilisation.
fn link_load(topo: &Topology, link: LinkId) -> Load {
    let p = topo.link(link).params;
    // Service rate in packets/s for MTU-sized cross traffic.
    let mu = p.bandwidth_bps / (MEAN_PACKET_BYTES * 8.0);
    Load::new(p.utilisation * mu, mu)
}

/// Mean queueing wait on a link, milliseconds.
pub fn mean_queue_ms(topo: &Topology, link: LinkId) -> f64 {
    mg1_wait(link_load(topo, link), SERVICE_CS2) * 1e3
}

/// Expected one-way latency of traversing `link` and being processed by
/// the node entered (`into`), milliseconds. This is the IGP metric.
pub fn expected_link_ms(topo: &Topology, link: LinkId, into: NodeId) -> f64 {
    let p = topo.link(link).params;
    propagation_ms(topo, link)
        + transmission_ms(topo, link, MEAN_PACKET_BYTES as u32)
        + mean_queue_ms(topo, link)
        + p.extra_ms
        + topo.node(into).kind.base_processing_ms()
}

/// Stochastic sampler for path delays.
#[derive(Debug, Clone)]
pub struct DelaySampler<'a> {
    topo: &'a Topology,
}

impl<'a> DelaySampler<'a> {
    /// Creates a sampler over a topology.
    pub fn new(topo: &'a Topology) -> Self {
        Self { topo }
    }

    /// Samples the one-way delay of a single hop (traverse `link`, be
    /// processed by `into`), milliseconds.
    pub fn hop_ms(&self, link: LinkId, into: NodeId, size_bytes: u32, rng: &mut SimRng) -> f64 {
        let p = self.topo.link(link).params;
        let fixed = propagation_ms(self.topo, link)
            + transmission_ms(self.topo, link, size_bytes)
            + p.extra_ms;
        let qmean = mean_queue_ms(self.topo, link);
        // Waiting time in M/G/1 is approximately exponential at moderate
        // load; sampling it exponential with the P-K mean is the standard
        // fast abstraction.
        let queue = if qmean > 0.0 { -(1.0 - rng.unit()).ln() * qmean } else { 0.0 };
        let proc_mean = self.topo.node(into).kind.base_processing_ms();
        let proc = LogNormal::from_mean_cv(proc_mean, PROCESSING_CV).sample(rng);
        fixed + queue + proc
    }

    /// Samples the one-way delay along a path (list of `(node_entered,
    /// via_link)` hops), milliseconds.
    pub fn one_way_ms(&self, hops: &[(NodeId, LinkId)], size_bytes: u32, rng: &mut SimRng) -> f64 {
        hops.iter().map(|&(into, link)| self.hop_ms(link, into, size_bytes, rng)).sum()
    }

    /// Samples a full round trip (forward and reverse sampled
    /// independently over the same hops), milliseconds.
    pub fn rtt_ms(&self, hops: &[(NodeId, LinkId)], size_bytes: u32, rng: &mut SimRng) -> f64 {
        self.one_way_ms(hops, size_bytes, rng) + self.one_way_ms(hops, size_bytes, rng)
    }

    /// Samples the one-way delay as a [`SimDuration`].
    pub fn one_way(
        &self,
        hops: &[(NodeId, LinkId)],
        size_bytes: u32,
        rng: &mut SimRng,
    ) -> SimDuration {
        SimDuration::from_millis_f64(self.one_way_ms(hops, size_bytes, rng))
    }

    /// Expected (mean) one-way latency along a path, milliseconds.
    pub fn expected_one_way_ms(&self, hops: &[(NodeId, LinkId)]) -> f64 {
        hops.iter().map(|&(into, link)| expected_link_ms(self.topo, link, into)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;
    use crate::topology::{Asn, LinkParams, NodeKind};
    use sixg_geo::GeoPoint;

    fn two_node() -> (Topology, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a", GeoPoint::new(46.6, 14.3), Asn(1));
        let b = t.add_node(NodeKind::Server, "b", GeoPoint::new(48.2, 16.4), Asn(1));
        let l = t.add_link(a, b, LinkParams::backbone());
        (t, a, b, l)
    }

    #[test]
    fn propagation_matches_distance() {
        let (t, _, _, l) = two_node();
        let km = t.link_km(l);
        let ms = propagation_ms(&t, l);
        // ~5 µs/km with the route factor.
        let expect = km * 1.05 / C_FIBRE_KM_S * 1e3;
        assert!((ms - expect).abs() < 1e-9);
        assert!(ms > 1.0 && ms < 2.0, "Klagenfurt-Vienna leg ≈1.2ms, got {ms}");
    }

    #[test]
    fn transmission_scales_with_size() {
        let (t, _, _, l) = two_node();
        let t1 = transmission_ms(&t, l, 1250);
        let t2 = transmission_ms(&t, l, 2500);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn sampled_mean_tracks_expected() {
        let (t, b, _, l) = two_node();
        let sampler = DelaySampler::new(&t);
        let mut rng = SimRng::from_seed(3);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            w.push(sampler.hop_ms(l, b, 1250, &mut rng));
        }
        let expect = expected_link_ms(&t, l, b);
        assert!(
            (w.mean() - expect).abs() / expect < 0.03,
            "sampled {} vs expected {expect}",
            w.mean()
        );
    }

    #[test]
    fn rtt_is_about_twice_one_way() {
        let (t, b, _a, l) = two_node();
        let sampler = DelaySampler::new(&t);
        let hops = vec![(b, l)];
        let mut rng = SimRng::from_seed(4);
        let mut ow = Welford::new();
        let mut rt = Welford::new();
        for _ in 0..20_000 {
            ow.push(sampler.one_way_ms(&hops, 100, &mut rng));
            rt.push(sampler.rtt_ms(&hops, 100, &mut rng));
        }
        assert!((rt.mean() - 2.0 * ow.mean()).abs() / rt.mean() < 0.03);
    }

    #[test]
    fn higher_utilisation_means_higher_delay() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a", GeoPoint::new(46.6, 14.3), Asn(1));
        let b = t.add_node(NodeKind::Server, "b", GeoPoint::new(46.7, 14.4), Asn(1));
        let quiet =
            t.add_link(a, b, LinkParams { bandwidth_bps: 1e9, utilisation: 0.1, extra_ms: 0.0 });
        let busy =
            t.add_link(a, b, LinkParams { bandwidth_bps: 1e9, utilisation: 0.9, extra_ms: 0.0 });
        assert!(mean_queue_ms(&t, busy) > 10.0 * mean_queue_ms(&t, quiet));
        assert!(expected_link_ms(&t, busy, b) > expected_link_ms(&t, quiet, b));
    }

    #[test]
    fn empty_path_has_zero_delay() {
        let (t, _, _, _) = two_node();
        let sampler = DelaySampler::new(&t);
        let mut rng = SimRng::from_seed(5);
        assert_eq!(sampler.one_way_ms(&[], 100, &mut rng), 0.0);
        assert_eq!(sampler.expected_one_way_ms(&[]), 0.0);
    }
}
