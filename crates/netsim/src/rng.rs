//! Deterministic, splittable randomness.
//!
//! Every stochastic quantity in the workspace is drawn from a [`SimRng`]
//! derived from a scenario seed plus a *stream key* describing what the
//! numbers are for (cell, peer, repetition, …). This gives two properties
//! the reproduction depends on:
//!
//! * **Reproducibility** — the same scenario seed always produces the same
//!   campaign, bit for bit.
//! * **Order independence** — each (cell × peer × repetition) gets its own
//!   stream, so running cells in parallel with rayon yields *identical*
//!   numbers to running them sequentially.
//!
//! The generator is `rand`'s SplitMix-seeded xoshiro-class `SmallRng`; the
//! key derivation is SplitMix64 over the hashed stream key.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 mixing step — a high-quality 64→64 bit finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A hierarchical stream key: fold in components one by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey(u64);

impl StreamKey {
    /// Root key from a scenario seed.
    pub fn root(seed: u64) -> Self {
        StreamKey(splitmix64(seed ^ 0x5158_6367_6B65_7953)) // "SyKecgXQ"-ish tag
    }

    /// Derives a child key from an integer component.
    #[must_use]
    pub fn with(self, component: u64) -> Self {
        StreamKey(splitmix64(self.0.rotate_left(17) ^ component))
    }

    /// Derives a child key from a string label (campaign phase names etc.).
    #[must_use]
    pub fn with_label(self, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.with(h)
    }

    /// Raw key value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// The simulator RNG: a seedable small PRNG plus convenience draws.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// RNG for a given stream key.
    pub fn for_stream(key: StreamKey) -> Self {
        Self { inner: SmallRng::seed_from_u64(key.value()) }
    }

    /// RNG directly from a seed (tests, quick scripts).
    pub fn from_seed(seed: u64) -> Self {
        Self::for_stream(StreamKey::root(seed))
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.unit() < p
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn bits(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Chooses one element uniformly. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_same_numbers() {
        let key = StreamKey::root(99).with(3).with_label("ping");
        let mut a = SimRng::for_stream(key);
        let mut b = SimRng::for_stream(key);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_components_different_streams() {
        let root = StreamKey::root(99);
        let mut a = SimRng::for_stream(root.with(1));
        let mut b = SimRng::for_stream(root.with(2));
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn label_and_int_components_are_independent() {
        let root = StreamKey::root(7);
        assert_ne!(root.with_label("a").value(), root.with_label("b").value());
        assert_ne!(root.with(0).value(), root.with_label("0").value());
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut r = SimRng::from_seed(5);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::from_seed(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::from_seed(13);
        let hits = (0..50_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn key_order_matters() {
        let root = StreamKey::root(1);
        assert_ne!(root.with(1).with(2).value(), root.with(2).with(1).value());
    }
}
