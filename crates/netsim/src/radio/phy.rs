//! 5G mmWave PHY-layer latency distribution.
//!
//! Section IV-C of the paper cites Fezeu et al. (PAM 2023), who measured
//! ISO/OSI layer-1 latency on a commercial 5G mmWave deployment: **4.4 %**
//! of packets complete in under 1 ms and **22.36 %** in under 3 ms, with
//! the application layer adding ≈35 ms on average.
//!
//! [`MmWavePhy`] is a three-component mixture calibrated to those CDF
//! anchors: a fast-path mass (beam aligned, first HARQ attempt), a mid
//! mass (short scheduling waits), and a lognormal bulk.

use crate::dist::{Component, LogNormal, Mixture, Sample, Uniform};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Fraction of packets under 1 ms reported by Fezeu et al.
pub const FRAC_UNDER_1MS: f64 = 0.044;
/// Fraction of packets under 3 ms reported by Fezeu et al.
pub const FRAC_UNDER_3MS: f64 = 0.2236;
/// Mean application-layer addition reported by Fezeu et al., ms.
pub const APP_LAYER_MEAN_MS: f64 = 35.0;

/// One-way mmWave PHY latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MmWavePhy {
    mixture: Mixture,
}

impl Default for MmWavePhy {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl MmWavePhy {
    /// The mixture calibrated to the published CDF anchors.
    ///
    /// * weight 0.0440 — fast path, `U(0.3, 1.0)` ms;
    /// * weight 0.1766 — mid path, `U(1, 3)` ms (chosen so that together
    ///   with the bulk's ~0.3 % mass below 3 ms the CDF hits 22.36 %);
    /// * weight 0.7794 — bulk, `LogNormal(mean 9 ms, cv 0.4)`.
    pub fn calibrated() -> Self {
        let mixture = Mixture::new(vec![
            (0.0440, Component::Uniform(Uniform::new(0.3, 1.0))),
            (0.1766, Component::Uniform(Uniform::new(1.0, 3.0))),
            (0.7794, Component::LogNormal(LogNormal::from_mean_cv(9.0, 0.4))),
        ]);
        Self { mixture }
    }

    /// One PHY latency sample, ms.
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        self.mixture.sample(rng)
    }

    /// Analytic mean, ms.
    pub fn mean_ms(&self) -> f64 {
        self.mixture.mean()
    }

    /// Application-layer overhead sample (Fezeu: ≈35 ms mean), ms.
    pub fn app_layer_sample_ms(rng: &mut SimRng) -> f64 {
        LogNormal::from_mean_cv(APP_LAYER_MEAN_MS, 0.35).sample(rng)
    }

    /// Empirical CDF at `x` over `n` samples (deterministic in `seed`).
    pub fn empirical_fraction_below(&self, x: f64, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        let hits = (0..n).filter(|_| self.sample_ms(&mut rng) < x).count();
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_anchor_under_1ms() {
        let phy = MmWavePhy::calibrated();
        let f = phy.empirical_fraction_below(1.0, 400_000, 3);
        assert!((f - FRAC_UNDER_1MS).abs() < 0.004, "got {f}, want {FRAC_UNDER_1MS}");
    }

    #[test]
    fn cdf_anchor_under_3ms() {
        let phy = MmWavePhy::calibrated();
        let f = phy.empirical_fraction_below(3.0, 400_000, 4);
        assert!((f - FRAC_UNDER_3MS).abs() < 0.01, "got {f}, want {FRAC_UNDER_3MS}");
    }

    #[test]
    fn bulk_dominates_mean() {
        let phy = MmWavePhy::calibrated();
        // Mean ≈ 0.044·0.65 + 0.1766·2 + 0.7794·9 ≈ 7.4 ms.
        assert!((phy.mean_ms() - 7.4).abs() < 0.3, "got {}", phy.mean_ms());
    }

    #[test]
    fn samples_positive() {
        let phy = MmWavePhy::calibrated();
        let mut rng = SimRng::from_seed(5);
        assert!((0..10_000).all(|_| phy.sample_ms(&mut rng) > 0.0));
    }

    #[test]
    fn app_layer_adds_about_35ms() {
        let mut rng = SimRng::from_seed(6);
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| MmWavePhy::app_layer_sample_ms(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - APP_LAYER_MEAN_MS).abs() < 0.5, "got {mean}");
    }
}
