//! Radio access network latency models.
//!
//! The campaign's mobile node reaches the Internet over a 5G NR air
//! interface; the wired baseline uses campus ethernet/FTTH. The paper's
//! analysis separates *access* latency from *core/transit* latency, so the
//! simulator does too: path sampling (see [`crate::latency`]) covers the
//! wired part and an [`AccessModel`] adds the air interface.
//!
//! The 5G model ([`FiveGAccess`]) decomposes a user-plane round trip into
//! slot alignment, scheduling-request/grant latency (grows with cell
//! *load*), fixed transmission + processing, HARQ retransmissions and RRC
//! state-transition spikes (both grow with cell *interference*), plus a
//! multiplicative fading jitter. Both the mean and the variance of the
//! resulting RTT are available **analytically**, which is what lets the
//! Klagenfurt scenario be calibrated to the paper's per-cell mean/σ maps
//! by simple inversion (see [`FiveGAccess::fit`]).
//!
//! Sub-modules:
//! * [`phy`] — the 5G mmWave PHY-layer latency mixture calibrated to the
//!   measurements of Fezeu et al. (4.4 % of packets under 1 ms, 22.36 %
//!   under 3 ms) that the paper cites in Section IV-C.

pub mod phy;

use crate::dist::{LogNormal, Sample};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Anything that can produce an access-network round-trip sample.
pub trait AccessModel {
    /// One RTT contribution sample, milliseconds.
    fn sample_rtt_ms(&self, rng: &mut SimRng) -> f64;
    /// Analytic mean RTT contribution, milliseconds.
    fn mean_rtt_ms(&self) -> f64;
    /// Analytic RTT variance, ms².
    fn var_rtt_ms2(&self) -> f64;
}

/// Wired access (campus ethernet / FTTH): sub-millisecond, light-tailed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WiredAccess {
    /// Mean RTT contribution, ms.
    pub mean_ms: f64,
    /// Coefficient of variation.
    pub cv: f64,
}

impl Default for WiredAccess {
    fn default() -> Self {
        Self { mean_ms: 0.6, cv: 0.25 }
    }
}

impl AccessModel for WiredAccess {
    fn sample_rtt_ms(&self, rng: &mut SimRng) -> f64 {
        LogNormal::from_mean_cv(self.mean_ms, self.cv).sample(rng)
    }
    fn mean_rtt_ms(&self) -> f64 {
        self.mean_ms
    }
    fn var_rtt_ms2(&self) -> f64 {
        (self.mean_ms * self.cv).powi(2)
    }
}

/// 6G air-interface target: the paper quotes 100 µs-class latency (She et
/// al.), i.e. an RTT contribution of a few hundred microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SixGAccess {
    /// Mean RTT contribution, ms (default 0.25 ms ⇒ 125 µs one-way).
    pub mean_ms: f64,
    /// Coefficient of variation.
    pub cv: f64,
}

impl Default for SixGAccess {
    fn default() -> Self {
        Self { mean_ms: 0.25, cv: 0.3 }
    }
}

impl AccessModel for SixGAccess {
    fn sample_rtt_ms(&self, rng: &mut SimRng) -> f64 {
        LogNormal::from_mean_cv(self.mean_ms, self.cv).sample(rng)
    }
    fn mean_rtt_ms(&self) -> f64 {
        self.mean_ms
    }
    fn var_rtt_ms2(&self) -> f64 {
        (self.mean_ms * self.cv).powi(2)
    }
}

/// Cell radio environment: both axes normalised to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CellEnv {
    /// Uplink scheduling contention (PRB occupancy). Drives grant latency.
    pub load: f64,
    /// Interference / coverage degradation. Drives HARQ retransmissions,
    /// RRC reconnection spikes and fading jitter.
    pub interference: f64,
}

impl CellEnv {
    /// Creates an environment; both axes are clamped to `[0, 1]`.
    pub fn new(load: f64, interference: f64) -> Self {
        Self { load: load.clamp(0.0, 1.0), interference: interference.clamp(0.0, 1.0) }
    }
}

// --- 5G NR model constants (milliseconds unless noted) -------------------

/// Slot-alignment delay bound (two half-slot alignments per RTT).
const ALIGN_MAX: f64 = 1.0;
/// Grant latency at zero load.
const SCHED_BASE: f64 = 1.6;
/// Extra grant latency at full load (includes gNB scheduler queueing under
/// congestion).
const SCHED_GAIN: f64 = 44.0;
/// Fixed UL+DL transmission + RAN processing.
const TXPROC: f64 = 2.2;
/// HARQ retransmission probability at zero / gain with interference.
const HARQ_P0: f64 = 0.02;
const HARQ_PG: f64 = 0.60;
/// Per-retransmission cost bounds (uniform).
const HARQ_LO: f64 = 8.0;
const HARQ_HI: f64 = 12.0;
/// RRC / beam-failure spike probability gain with interference.
const RRC_QG: f64 = 0.35;
/// Spike cost bounds (uniform) — idle→connected transition.
const RRC_LO: f64 = 30.0;
const RRC_HI: f64 = 100.0;
/// Fading jitter coefficient of variation: floor / interference gain.
const JIT_CV0: f64 = 0.03;
const JIT_CVG: f64 = 0.60;

/// 5G NR access model parameterised by the cell environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveGAccess {
    /// The cell environment driving all stochastic components.
    pub env: CellEnv,
}

impl FiveGAccess {
    /// Model for a given environment.
    pub fn new(env: CellEnv) -> Self {
        Self { env }
    }

    /// An unloaded, interference-free cell — the best case the standard
    /// permits for this deployment class (≈4.5 ms RTT contribution, so an
    /// edge-UPF deployment lands in the 5–6.2 ms end-to-end band the
    /// UPF-integration literature reports).
    pub fn ideal() -> Self {
        Self::new(CellEnv::new(0.0, 0.0))
    }

    fn harq_p(&self) -> f64 {
        HARQ_P0 + HARQ_PG * self.env.interference
    }

    fn rrc_q(&self) -> f64 {
        RRC_QG * self.env.interference
    }

    fn jitter_cv(&self) -> f64 {
        JIT_CV0 + JIT_CVG * self.env.interference
    }

    /// Mean of the jitter-scaled structural part (everything except RRC
    /// spikes), ms.
    fn core_mean(&self) -> f64 {
        let p = self.harq_p();
        let harq_mean = p / (1.0 - p) * (HARQ_LO + HARQ_HI) / 2.0;
        ALIGN_MAX / 2.0 + SCHED_BASE + SCHED_GAIN * self.env.load + TXPROC + harq_mean
    }

    /// Variance of the structural part before jitter scaling, ms².
    fn core_var(&self) -> f64 {
        let p = self.harq_p();
        let retx_mean = (HARQ_LO + HARQ_HI) / 2.0;
        let retx_var = (HARQ_HI - HARQ_LO).powi(2) / 12.0;
        let n_mean = p / (1.0 - p);
        let n_var = p / (1.0 - p).powi(2);
        let harq_var = n_mean * retx_var + n_var * retx_mean * retx_mean;
        ALIGN_MAX * ALIGN_MAX / 12.0 + harq_var
    }
}

impl AccessModel for FiveGAccess {
    fn sample_rtt_ms(&self, rng: &mut SimRng) -> f64 {
        let align = rng.uniform(0.0, ALIGN_MAX);
        let sched = SCHED_BASE + SCHED_GAIN * self.env.load;
        let mut harq = 0.0;
        let p = self.harq_p();
        while rng.chance(p) {
            harq += rng.uniform(HARQ_LO, HARQ_HI);
        }
        let core = align + sched + TXPROC + harq;
        let jitter = LogNormal::from_mean_cv(1.0, self.jitter_cv()).sample(rng);
        let rrc = if rng.chance(self.rrc_q()) { rng.uniform(RRC_LO, RRC_HI) } else { 0.0 };
        core * jitter + rrc
    }

    fn mean_rtt_ms(&self) -> f64 {
        self.core_mean() + self.rrc_q() * (RRC_LO + RRC_HI) / 2.0
    }

    fn var_rtt_ms2(&self) -> f64 {
        let m = self.core_mean();
        let v = self.core_var();
        let cv2 = self.jitter_cv().powi(2);
        // Var(X·J) with E[J]=1, independent: (v+m²)(1+cv²) − m².
        let jittered = (v + m * m) * (1.0 + cv2) - m * m;
        let q = self.rrc_q();
        let rrc_mean = (RRC_LO + RRC_HI) / 2.0;
        let rrc_var = (RRC_HI - RRC_LO).powi(2) / 12.0;
        let rrc = q * (rrc_var + rrc_mean * rrc_mean) - (q * rrc_mean).powi(2);
        jittered + rrc
    }
}

impl FiveGAccess {
    /// Smallest/largest achievable mean RTT contribution, ms.
    pub fn mean_range() -> (f64, f64) {
        (
            FiveGAccess::new(CellEnv::new(0.0, 0.0)).mean_rtt_ms(),
            FiveGAccess::new(CellEnv::new(1.0, 1.0)).mean_rtt_ms(),
        )
    }

    /// Calibrates a cell environment so the model's analytic mean and
    /// standard deviation match the targets as closely as the parameter
    /// box `[0,1]²` allows.
    ///
    /// Strategy: σ is monotonically increasing in `interference` (HARQ,
    /// RRC and jitter variance all grow with it), while for any fixed
    /// interference the mean is linear in `load`. So we bisect on
    /// interference, solving `load` exactly for the mean at each step.
    ///
    /// ```
    /// use sixg_netsim::radio::{AccessModel, FiveGAccess};
    ///
    /// // A cell whose access RTT should average 30 ms with σ = 8 ms.
    /// let cell = FiveGAccess::fit(30.0, 8.0);
    /// assert!((cell.mean_rtt_ms() - 30.0).abs() < 1.0);
    /// assert!((cell.var_rtt_ms2().sqrt() - 8.0).abs() < 1.5);
    /// ```
    pub fn fit(target_mean_ms: f64, target_std_ms: f64) -> Self {
        assert!(target_mean_ms > 0.0 && target_std_ms >= 0.0, "invalid targets");
        let load_for_mean = |intf: f64| -> f64 {
            let probe = FiveGAccess::new(CellEnv { load: 0.0, interference: intf });
            // mean = core_mean(load=0) + SCHED_GAIN·load + rrc
            let base = probe.mean_rtt_ms();
            ((target_mean_ms - base) / SCHED_GAIN).clamp(0.0, 1.0)
        };
        let std_at = |intf: f64| -> f64 {
            FiveGAccess::new(CellEnv { load: load_for_mean(intf), interference: intf })
                .var_rtt_ms2()
                .sqrt()
        };
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        if std_at(lo) >= target_std_ms {
            let load = load_for_mean(lo);
            return FiveGAccess::new(CellEnv { load, interference: lo });
        }
        if std_at(hi) <= target_std_ms {
            let load = load_for_mean(hi);
            return FiveGAccess::new(CellEnv { load, interference: hi });
        }
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if std_at(mid) < target_std_ms {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let intf = (lo + hi) / 2.0;
        FiveGAccess::new(CellEnv { load: load_for_mean(intf), interference: intf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    fn empirical(model: &impl AccessModel, n: usize, seed: u64) -> Welford {
        let mut rng = SimRng::from_seed(seed);
        let mut w = Welford::new();
        for _ in 0..n {
            w.push(model.sample_rtt_ms(&mut rng));
        }
        w
    }

    #[test]
    fn analytic_mean_matches_empirical_across_env() {
        for (l, i) in [(0.0, 0.0), (0.3, 0.2), (0.8, 0.6), (1.0, 1.0)] {
            let m = FiveGAccess::new(CellEnv::new(l, i));
            let w = empirical(&m, 200_000, 17);
            let rel = (w.mean() - m.mean_rtt_ms()).abs() / m.mean_rtt_ms();
            assert!(rel < 0.02, "env ({l},{i}): emp {} vs analytic {}", w.mean(), m.mean_rtt_ms());
        }
    }

    #[test]
    fn analytic_variance_matches_empirical() {
        for (l, i) in [(0.2, 0.1), (0.5, 0.5), (0.9, 0.9)] {
            let m = FiveGAccess::new(CellEnv::new(l, i));
            let w = empirical(&m, 400_000, 23);
            let rel = (w.variance() - m.var_rtt_ms2()).abs() / m.var_rtt_ms2();
            assert!(
                rel < 0.06,
                "env ({l},{i}): emp var {} vs analytic {}",
                w.variance(),
                m.var_rtt_ms2()
            );
        }
    }

    #[test]
    fn ideal_cell_leaves_room_for_upf_band() {
        // Barrachina/Goshi report 5–6.2 ms end-to-end with edge UPFs; the
        // breakout path adds ~1.4 ms, so best-case access must be ≈4.5 ms.
        let m = FiveGAccess::ideal().mean_rtt_ms();
        assert!((4.0..5.0).contains(&m), "got {m}");
    }

    #[test]
    fn mean_range_covers_campaign_needs() {
        let (lo, hi) = FiveGAccess::mean_range();
        assert!(lo < 6.0, "lo {lo}");
        assert!(hi > 68.0, "hi {hi}");
    }

    #[test]
    fn load_raises_mean_interference_raises_std() {
        let base = FiveGAccess::new(CellEnv::new(0.2, 0.2));
        let loaded = FiveGAccess::new(CellEnv::new(0.8, 0.2));
        let noisy = FiveGAccess::new(CellEnv::new(0.2, 0.8));
        assert!(loaded.mean_rtt_ms() > base.mean_rtt_ms() + 10.0);
        assert!(noisy.var_rtt_ms2() > 4.0 * base.var_rtt_ms2());
    }

    #[test]
    fn fit_recovers_targets() {
        for (mean, std) in [(21.0, 2.0), (35.0, 12.0), (55.0, 30.0), (68.0, 45.0)] {
            let m = FiveGAccess::fit(mean, std);
            assert!(
                (m.mean_rtt_ms() - mean).abs() < 0.8,
                "mean: want {mean} got {}",
                m.mean_rtt_ms()
            );
            assert!(
                (m.var_rtt_ms2().sqrt() - std).abs() < 1.5,
                "std: want {std} got {}",
                m.var_rtt_ms2().sqrt()
            );
        }
    }

    #[test]
    fn fit_clamps_out_of_range_targets() {
        // Unreachably low σ: clamps to interference 0, still hits mean.
        let m = FiveGAccess::fit(25.0, 0.1);
        assert_eq!(m.env.interference, 0.0);
        assert!((m.mean_rtt_ms() - 25.0).abs() < 0.5);
        // Unreachably high mean: clamps load to 1.
        let m = FiveGAccess::fit(500.0, 10.0);
        assert_eq!(m.env.load, 1.0);
    }

    #[test]
    fn wired_and_sixg_are_sub_ms() {
        let wired = WiredAccess::default();
        let sixg = SixGAccess::default();
        assert!(wired.mean_rtt_ms() < 1.0);
        assert!(sixg.mean_rtt_ms() < 0.5);
        let w = empirical(&sixg, 50_000, 31);
        assert!((w.mean() - sixg.mean_rtt_ms()).abs() < 0.01);
        assert!(w.min() > 0.0);
    }

    #[test]
    fn samples_deterministic_per_seed() {
        let m = FiveGAccess::new(CellEnv::new(0.5, 0.5));
        let mut a = SimRng::from_seed(77);
        let mut b = SimRng::from_seed(77);
        for _ in 0..100 {
            assert_eq!(m.sample_rtt_ms(&mut a), m.sample_rtt_ms(&mut b));
        }
    }

    #[test]
    fn env_clamps() {
        let e = CellEnv::new(2.0, -1.0);
        assert_eq!(e.load, 1.0);
        assert_eq!(e.interference, 0.0);
    }
}
