//! Simulation time.
//!
//! Time is a monotonically non-decreasing count of **nanoseconds** since
//! simulation start, stored in a `u64`. That gives ~584 years of range —
//! far beyond any campaign — while keeping ordering exact (no float
//! comparison hazards in the event queue).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Time from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "time cannot be negative: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }

    /// Saturating difference (zero when `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Duration from fractional seconds. Panics on negative/NaN input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Duration from fractional milliseconds. Panics on negative/NaN input.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0 && k.is_finite(), "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.1}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.0, 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_secs_f64(1.5));
        assert_eq!(t.since(SimTime::from_secs(1)), SimDuration::from_millis(500));
        assert_eq!(
            SimDuration::from_millis(3) - SimDuration::from_millis(1),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime(10);
        let b = SimTime(11);
        assert!(a < b);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_when_negative() {
        let _ = SimTime(5).since(SimTime(6));
    }

    #[test]
    fn mul_and_sum() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(25));
        let total: SimDuration =
            [SimDuration::from_millis(1), SimDuration::from_millis(2)].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(3));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(120)), "120.0us");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
