//! Router-level end-to-end path computation.
//!
//! Combines the AS-level BGP decision ([`super::bgp`]) with intra-AS SPF
//! ([`super::spf`]): the AS path fixes the sequence of domains, border
//! links are selected per crossing (hot-potato: cheapest egress from the
//! current position), and Dijkstra stitches the intra-domain segments.

use super::bgp::{AsGraph, AsPath};
use super::spf;
use crate::latency::expected_link_ms;
use crate::topology::{Asn, LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Egress hops to the border, the crossing link, and the ingress node.
type Crossing = (Vec<(NodeId, LinkId)>, LinkId, NodeId);

/// A fully resolved router-level route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// Source node (not part of `hops`).
    pub src: NodeId,
    /// Hops as `(node_entered, via_link)` pairs, destination last.
    pub hops: Vec<(NodeId, LinkId)>,
    /// The AS-level route this path realises.
    pub as_path: AsPath,
}

impl RoutedPath {
    /// Number of router-level hops (Table I counts these).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.hops.last().map(|(n, _)| *n).unwrap_or(self.src)
    }

    /// Full node sequence including the source.
    pub fn node_sequence(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.hops.len() + 1);
        v.push(self.src);
        v.extend(self.hops.iter().map(|(n, _)| *n));
        v
    }

    /// Total geodesic route length over the hop links, km.
    pub fn route_km(&self, topo: &Topology) -> f64 {
        self.hops.iter().map(|&(_, l)| topo.link_km(l)).sum()
    }
}

/// Computes policy-compliant router-level paths.
#[derive(Debug, Clone)]
pub struct PathComputer<'a> {
    topo: &'a Topology,
    as_graph: &'a AsGraph,
}

impl<'a> PathComputer<'a> {
    /// Creates a path computer over a topology and its AS relationships.
    pub fn new(topo: &'a Topology, as_graph: &'a AsGraph) -> Self {
        Self { topo, as_graph }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Routes `src → dst`, or `None` when unreachable under policy.
    ///
    /// The BGP decision is restricted to AS pairs that share a live
    /// physical link: an eBGP session cannot run over a relationship with
    /// no interconnect.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<RoutedPath> {
        let src_as = self.topo.node(src).asn;
        let dst_as = self.topo.node(dst).asn;
        let phys: std::collections::BTreeSet<(u32, u32)> = self
            .topo
            .inter_as_links()
            .into_iter()
            .map(|l| {
                let link = self.topo.link(l);
                let (a, b) = (self.topo.node(link.a).asn.0, self.topo.node(link.b).asn.0);
                (a.min(b), a.max(b))
            })
            .collect();
        let as_path = self
            .as_graph
            .as_path_where(src_as, dst_as, |a, b| phys.contains(&(a.0.min(b.0), a.0.max(b.0))))?;
        self.route_along(src, dst, &as_path)
    }

    /// Stitches a router-level path that realises a *given* AS-level route
    /// (hot-potato crossings plus intra-AS SPF), or `None` when the live
    /// topology cannot realise it. The dynamic control plane
    /// ([`super::dynamic`]) selects AS paths from its RIBs mid-convergence
    /// and resolves them to router hops through this.
    pub fn route_along(&self, src: NodeId, dst: NodeId, as_path: &AsPath) -> Option<RoutedPath> {
        let mut hops: Vec<(NodeId, LinkId)> = Vec::new();
        let mut current = src;

        for w in as_path.asns.windows(2) {
            let (here, next) = (w[0], w[1]);
            let (egress_hops, cross_link, ingress) = self.best_crossing(current, here, next)?;
            hops.extend(egress_hops);
            hops.push((ingress, cross_link));
            current = ingress;
        }

        // Final intra-AS segment to the destination.
        let dst_as = self.topo.node(dst).asn;
        let admit = |n: NodeId| self.topo.node(n).asn == dst_as;
        let (tail, _) = spf::shortest_path(self.topo, current, dst, admit)?;
        hops.extend(tail);

        Some(RoutedPath { src, hops, as_path: as_path.clone() })
    }

    /// Expected one-way latency of the routed path, ms (`None` if no route).
    pub fn expected_one_way_ms(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let path = self.route(src, dst)?;
        Some(path.hops.iter().map(|&(into, link)| expected_link_ms(self.topo, link, into)).sum())
    }

    /// Picks the cheapest egress crossing from `current` (inside `here`)
    /// into AS `next`: returns `(intra hops to the egress border router,
    /// crossing link, ingress node in next)`.
    fn best_crossing(&self, current: NodeId, here: Asn, next: Asn) -> Option<Crossing> {
        let admit = |n: NodeId| self.topo.node(n).asn == here;
        let (dist, prev) = spf::dijkstra(self.topo, current, admit);

        let mut best: Option<(f64, NodeId, LinkId, NodeId)> = None;
        for link in self.topo.inter_as_links() {
            let l = self.topo.link(link);
            let (near, far) = {
                let (a_as, b_as) = (self.topo.node(l.a).asn, self.topo.node(l.b).asn);
                if a_as == here && b_as == next {
                    (l.a, l.b)
                } else if b_as == here && a_as == next {
                    (l.b, l.a)
                } else {
                    continue;
                }
            };
            let to_near = dist[near.0 as usize];
            if !to_near.is_finite() {
                continue;
            }
            let cost = to_near + expected_link_ms(self.topo, link, far);
            let better = match &best {
                None => true,
                Some((c, ..)) => {
                    cost < *c - 1e-12 || ((cost - *c).abs() <= 1e-12 && link < best.unwrap().2)
                }
            };
            if better {
                best = Some((cost, near, link, far));
            }
        }
        let (_, near, link, far) = best?;

        // Reconstruct intra-AS hops current → near.
        let mut egress = Vec::new();
        let mut cur = near;
        while cur != current {
            let (p, l) = prev[cur.0 as usize]?;
            egress.push((cur, l));
            cur = p;
        }
        egress.reverse();
        Some((egress, link, far))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkParams, NodeKind, Topology};
    use sixg_geo::GeoPoint;

    /// Two stub ASes (100: campus, 200: mobile op) joined only through a
    /// transit chain 300 → 400 → 300-style hierarchy:
    ///   AS100 ← AS300 (provider), AS200 ← AS400 (provider),
    ///   AS300 ← AS500, AS400 ← AS500 (tier-1).
    fn internet() -> (Topology, AsGraph, NodeId, NodeId) {
        let mut t = Topology::new();
        let g = |lat: f64, lon: f64| GeoPoint::new(lat, lon);

        let campus_srv = t.add_node(NodeKind::Anchor, "anchor", g(46.62, 14.31), Asn(100));
        let campus_br = t.add_node(NodeKind::BorderRouter, "campus-br", g(46.63, 14.30), Asn(100));
        let ue = t.add_node(NodeKind::UserEquipment, "ue", g(46.61, 14.28), Asn(200));
        let op_core = t.add_node(NodeKind::CoreRouter, "op-core", g(48.20, 16.37), Asn(200));
        let op_br = t.add_node(NodeKind::BorderRouter, "op-br", g(48.21, 16.38), Asn(200));
        let t1 = t.add_node(NodeKind::CoreRouter, "transit1", g(50.07, 14.43), Asn(300));
        let t2 = t.add_node(NodeKind::CoreRouter, "transit2", g(44.42, 26.10), Asn(400));
        let tier1 = t.add_node(NodeKind::CoreRouter, "tier1", g(50.11, 8.68), Asn(500));

        t.add_link(campus_srv, campus_br, LinkParams::access_wired());
        t.add_link(ue, op_core, LinkParams::metro());
        t.add_link(op_core, op_br, LinkParams::metro());
        t.add_link(op_br, t2, LinkParams::transit_loaded());
        t.add_link(campus_br, t1, LinkParams::transit_loaded());
        t.add_link(t1, tier1, LinkParams::backbone());
        t.add_link(t2, tier1, LinkParams::backbone());

        let mut asg = AsGraph::new();
        asg.add_transit(Asn(300), Asn(100));
        asg.add_transit(Asn(400), Asn(200));
        asg.add_transit(Asn(500), Asn(300));
        asg.add_transit(Asn(500), Asn(400));

        (t, asg, ue, campus_srv)
    }

    #[test]
    fn detour_path_spans_all_transit_ases() {
        let (t, asg, ue, anchor) = internet();
        let pc = PathComputer::new(&t, &asg);
        let p = pc.route(ue, anchor).unwrap();
        assert_eq!(p.as_path.asns.len(), 5); // 200,400,500,300,100
        assert_eq!(p.dst(), anchor);
        // ue→op-core→op-br→t2→tier1→t1→campus-br→anchor = 7 hops
        assert_eq!(p.hop_count(), 7);
        // Route is massively longer than the 3-4 km direct distance.
        let direct = t.node(ue).pos.distance_km(t.node(anchor).pos);
        assert!(direct < 5.0);
        assert!(p.route_km(&t) > 1000.0, "route {} km", p.route_km(&t));
    }

    #[test]
    fn peering_collapses_path() {
        let (mut t, mut asg, ue, anchor) = internet();
        // Local IXP link between operator border and campus border, plus
        // the business agreement to use it.
        let campus_br = t.find_by_name("campus-br").unwrap();
        // Operator deploys a border router in Klagenfurt for local peering.
        let op_local =
            t.add_node(NodeKind::BorderRouter, "op-local", GeoPoint::new(46.62, 14.29), Asn(200));
        let op_core = t.find_by_name("op-core").unwrap();
        t.add_link(op_core, op_local, LinkParams::metro());
        t.add_link(op_local, campus_br, LinkParams::access_wired());
        asg.add_peering(Asn(200), Asn(100));

        let pc = PathComputer::new(&t, &asg);
        let p = pc.route(ue, anchor).unwrap();
        assert_eq!(p.as_path.asns.len(), 2);
        assert!(p.hop_count() <= 5, "got {}", p.hop_count());
        assert!(p.route_km(&t) < 600.0, "route {} km", p.route_km(&t));
    }

    #[test]
    fn same_as_uses_spf_only() {
        let (t, asg, ue, _) = internet();
        let op_br = t.find_by_name("op-br").unwrap();
        let pc = PathComputer::new(&t, &asg);
        let p = pc.route(ue, op_br).unwrap();
        assert_eq!(p.as_path.crossings(), 0);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn no_policy_no_path() {
        let (t, _asg, ue, anchor) = internet();
        let empty = AsGraph::new();
        let pc = PathComputer::new(&t, &empty);
        assert!(pc.route(ue, anchor).is_none());
    }

    #[test]
    fn expected_latency_drops_with_peering() {
        let (mut t, mut asg, ue, anchor) = internet();
        let pc = PathComputer::new(&t, &asg);
        let before = pc.expected_one_way_ms(ue, anchor).unwrap();
        let _ = pc;

        let campus_br = t.find_by_name("campus-br").unwrap();
        let op_core = t.find_by_name("op-core").unwrap();
        let op_local =
            t.add_node(NodeKind::BorderRouter, "op-local", GeoPoint::new(46.62, 14.29), Asn(200));
        t.add_link(op_core, op_local, LinkParams::metro());
        t.add_link(op_local, campus_br, LinkParams::access_wired());
        asg.add_peering(Asn(200), Asn(100));
        let pc = PathComputer::new(&t, &asg);
        let after = pc.expected_one_way_ms(ue, anchor).unwrap();
        assert!(after < before / 2.0, "before {before} after {after}");
    }

    #[test]
    fn route_to_self_is_empty() {
        let (t, asg, ue, _) = internet();
        let pc = PathComputer::new(&t, &asg);
        let p = pc.route(ue, ue).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.node_sequence(), vec![ue]);
    }
}
