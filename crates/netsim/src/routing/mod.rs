//! Routing: intra-AS shortest path and inter-AS policy routing.
//!
//! * [`spf`] — Dijkstra shortest-path-first over link latency, used inside
//!   a single autonomous system;
//! * [`bgp`] — an AS-level model of BGP with Gao–Rexford business
//!   relationships (customer/provider/peer) and valley-free export. The
//!   paper's central observation — a local request detouring over 2 544 km
//!   and ten hops (Table I / Figure 4) — *emerges* from these policies
//!   when no local peering exists;
//! * [`path`] — the combined router-level path computer used by
//!   everything else (ping, traceroute, transport, campaigns);
//! * [`dynamic`] — the same Gao–Rexford policies as *emergent* behaviour:
//!   one BGP speaker per AS exchanging update/withdraw messages on the
//!   event calendar, so link failures trigger real reconvergence
//!   transients instead of an instant new fixed point.

pub mod bgp;
pub mod dynamic;
pub mod path;
pub mod spf;

pub use bgp::{AsGraph, Relationship};
pub use dynamic::ControlPlane;
pub use path::{PathComputer, RoutedPath};
pub use spf::shortest_path;
