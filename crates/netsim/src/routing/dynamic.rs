//! Message-level BGP: a live control plane on the event calendar.
//!
//! [`super::bgp`] computes Gao–Rexford routes *statically* — one Dijkstra
//! over the valley-free path algebra. That is exact for steady state, but
//! it cannot say anything about what happens *between* steady states: the
//! paper's detour (Section IV-C) is a converged artefact, and studying how
//! the latency field behaves while the control plane reconverges after a
//! link failure requires actually exchanging routing messages.
//!
//! This module runs one small BGP speaker per AS on the deterministic
//! event calendar ([`crate::engine`]). Each speaker holds an Adj-RIB-In
//! (the last path every neighbour advertised, per destination) and two
//! export registers per destination:
//!
//! * the **up register** — the best route learned from a *customer* (or
//!   the speaker's own origination), selected by `(length, lexicographic
//!   path)`. Gao–Rexford export: customer routes go to **everyone**, so
//!   this register is advertised to providers and peers;
//! * the **down register** — the best route over *all* usable Adj-RIB-In
//!   entries (customer, peer and provider learned). Peer/provider routes
//!   are only exported **down**, so this register is advertised to
//!   customers only.
//!
//! When a register changes, the speaker emits `Update`/`Withdraw` messages
//! to the affected neighbour classes; messages propagate with a constant
//! [`CONTROL_DELAY`] so per-session FIFO order falls out of the calendar's
//! `(time, sequence)` ordering. Sessions exist per adjacent AS pair while
//! at least one inter-AS link backs them ([`sessions_from_topology`]);
//! [`session_down`]/[`session_up`] drive reconvergence when the fault
//! schedule flaps a link. In-flight messages of a torn-down session are
//! discarded on delivery via a per-session epoch counter.
//!
//! With no faults the emergent selection ([`ControlPlane::best_route`]) is
//! *identical* — preference class, path and tiebreak — to the static
//! [`AsGraph::as_path_where`] restricted to the live sessions: both
//! minimise `(preference class of the first hop, AS-path length,
//! lexicographic path)` over the valley-free path space, and the
//! two-register split is exactly the distributed fixed point of that
//! algebra. The equivalence is pinned by the property suite in
//! `tests/faults.rs`.
//!
//! Everything iterates `BTreeMap`/`BTreeSet` in key order, so a given
//! schedule of topology events replays bit-identically.

use super::bgp::{AsGraph, AsPath, Relationship, RoutePref};
use crate::engine::Engine;
use crate::time::SimDuration;
use crate::topology::{Asn, Topology};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Propagation + processing delay of one control message (10 ms): real
/// eBGP advertisement batching is of this order, and a constant keeps
/// per-session message order FIFO on the calendar.
pub const CONTROL_DELAY: SimDuration = SimDuration(10_000_000);

/// A BGP message in flight on one session.
#[derive(Debug, Clone)]
enum Msg {
    /// The sender's best exportable route towards `dest`; the path starts
    /// at the sender and ends at `dest`.
    Update { dest: u32, path: Vec<u32> },
    /// The sender no longer has an exportable route towards `dest`.
    Withdraw { dest: u32 },
}

impl Msg {
    fn dest(&self) -> u32 {
        match *self {
            Msg::Update { dest, .. } | Msg::Withdraw { dest } => dest,
        }
    }
}

/// Per-AS speaker state.
#[derive(Debug, Clone, Default)]
struct Speaker {
    /// Adj-RIB-In: `(neighbour, dest) → path` as advertised, starting at
    /// the neighbour. Entries for torn-down sessions are dropped.
    adj_in: BTreeMap<(u32, u32), Vec<u32>>,
    /// Best own/customer-learned route per destination (full path starting
    /// at this speaker). Exported to providers and peers.
    up_reg: BTreeMap<u32, Vec<u32>>,
    /// Best route over all usable Adj-RIB-In entries per destination.
    /// Exported to customers.
    down_reg: BTreeMap<u32, Vec<u32>>,
}

/// The distributed control plane: one speaker per AS, live sessions, and
/// the relationship graph the export policy derives from.
///
/// Implements [`HasControlPlane`] on itself so the driver functions
/// ([`originate_all`], [`session_down`], …) work both standalone and when
/// the control plane is embedded in a larger world (the fault-campaign
/// runner interleaves probes and control messages on one calendar).
#[derive(Debug, Clone)]
pub struct ControlPlane {
    graph: AsGraph,
    speakers: BTreeMap<u32, Speaker>,
    /// Live sessions as `(min asn, max asn)`.
    sessions: BTreeSet<(u32, u32)>,
    /// Bumped on every session state change; stale in-flight messages are
    /// discarded on delivery.
    epochs: BTreeMap<(u32, u32), u64>,
    delivered: u64,
}

/// Worlds that embed a [`ControlPlane`].
pub trait HasControlPlane {
    /// Shared access to the embedded control plane.
    fn control_plane(&self) -> &ControlPlane;
    /// Mutable access to the embedded control plane.
    fn control_plane_mut(&mut self) -> &mut ControlPlane;
}

impl HasControlPlane for ControlPlane {
    fn control_plane(&self) -> &ControlPlane {
        self
    }
    fn control_plane_mut(&mut self) -> &mut ControlPlane {
        self
    }
}

fn ordered(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// `(length, lexicographic)` path order — the tiebreak shared with
/// [`AsGraph::as_path_where`].
fn beats(a: &[u32], b: &[u32]) -> bool {
    (a.len(), a) < (b.len(), b)
}

/// Gao–Rexford preference class of a route learned from a neighbour with
/// relationship `rel` (seen from the receiver): customer < peer < provider.
fn pref_class(rel: Relationship) -> u8 {
    match rel {
        Relationship::ProviderOf => 0, // learned from our customer
        Relationship::PeerOf => 1,
        Relationship::CustomerOf => 2, // learned from our provider
    }
}

impl ControlPlane {
    /// A cold control plane: speakers for every AS in `graph`, the given
    /// sessions live (normalised and restricted to adjacent pairs), empty
    /// RIBs. Call [`originate_all`] and run the engine to converge.
    pub fn new(graph: AsGraph, sessions: &BTreeSet<(u32, u32)>) -> Self {
        let speakers = graph.asns().iter().map(|a| (a.0, Speaker::default())).collect();
        let sessions = sessions
            .iter()
            .map(|&(a, b)| ordered(a, b))
            .filter(|&(a, b)| graph.relationship(Asn(a), Asn(b)).is_some())
            .collect();
        Self { graph, speakers, sessions, epochs: BTreeMap::new(), delivered: 0 }
    }

    /// Builds a control plane and runs it to quiescence on a private
    /// calendar: every origination has propagated and no message is in
    /// flight. This is the dynamic analogue of calling
    /// [`AsGraph::as_path_where`] for all pairs.
    pub fn converged(graph: &AsGraph, sessions: &BTreeSet<(u32, u32)>) -> Self {
        let mut cp = Self::new(graph.clone(), sessions);
        let mut eng: Engine<ControlPlane> = Engine::new();
        originate_all(&mut eng, &mut cp);
        eng.run(&mut cp);
        cp
    }

    /// [`Self::converged`] with the sessions implied by a topology: one
    /// per AS pair that has a relationship and at least one live inter-AS
    /// link (the same restriction [`super::PathComputer`] applies).
    pub fn converged_from_topology(topo: &Topology, graph: &AsGraph) -> Self {
        Self::converged(graph, &sessions_from_topology(topo, graph))
    }

    /// The relationship graph the export policy derives from.
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// Live sessions as `(min asn, max asn)` pairs.
    pub fn live_sessions(&self) -> &BTreeSet<(u32, u32)> {
        &self.sessions
    }

    /// Messages delivered so far (dropped in-flight messages excluded).
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// The route `src` currently forwards on towards `dst`: best usable
    /// Adj-RIB-In entry by `(preference class, AS-path length,
    /// lexicographic path)` — the selection rule of
    /// [`AsGraph::as_path_where`]. `None` while no neighbour advertises a
    /// route (unreachable, or mid-reconvergence blackhole).
    pub fn best_route(&self, src: Asn, dst: Asn) -> Option<AsPath> {
        if src == dst {
            return Some(AsPath { asns: vec![src], pref: RoutePref::Local });
        }
        let sp = self.speakers.get(&src.0)?;
        let mut best: Option<(u8, u32, &Vec<u32>)> = None;
        for (n, rel) in self.graph.neighbours(src) {
            if !self.sessions.contains(&ordered(src.0, n.0)) {
                continue;
            }
            let Some(p) = sp.adj_in.get(&(n.0, dst.0)) else { continue };
            if p.contains(&src.0) {
                continue; // loop: the advert rode through us
            }
            let cand = (pref_class(rel), p.len() as u32, p);
            if best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        }
        let (class, _, path) = best?;
        let mut asns = Vec::with_capacity(path.len() + 1);
        asns.push(src);
        asns.extend(path.iter().map(|&a| Asn(a)));
        let pref = match class {
            0 => RoutePref::Customer,
            1 => RoutePref::Peer,
            _ => RoutePref::Provider,
        };
        Some(AsPath { asns, pref })
    }

    /// Every usable Adj-RIB-In entry of `x` as a full AS path (`x` first,
    /// destination last) — the surface the valley-freeness property suite
    /// audits.
    pub fn rib(&self, x: Asn) -> Vec<Vec<Asn>> {
        let Some(sp) = self.speakers.get(&x.0) else { return Vec::new() };
        sp.adj_in
            .iter()
            .filter(|(&(n, _), p)| self.sessions.contains(&ordered(x.0, n)) && !p.contains(&x.0))
            .map(|(_, p)| {
                let mut full = Vec::with_capacity(p.len() + 1);
                full.push(x);
                full.extend(p.iter().map(|&a| Asn(a)));
                full
            })
            .collect()
    }

    fn epoch(&self, key: (u32, u32)) -> u64 {
        self.epochs.get(&key).copied().unwrap_or(0)
    }
}

/// Sessions implied by a topology: AS pairs with a declared relationship
/// and at least one live inter-AS link.
pub fn sessions_from_topology(topo: &Topology, graph: &AsGraph) -> BTreeSet<(u32, u32)> {
    topo.inter_as_links()
        .into_iter()
        .map(|l| {
            let link = topo.link(l);
            ordered(topo.node(link.a).asn.0, topo.node(link.b).asn.0)
        })
        .filter(|&(a, b)| graph.relationship(Asn(a), Asn(b)).is_some())
        .collect()
}

/// Makes every speaker originate its own AS as a destination. Run the
/// engine afterwards to propagate.
pub fn originate_all<W: HasControlPlane + 'static>(eng: &mut Engine<W>, w: &mut W) {
    let asns: Vec<u32> = w.control_plane().speakers.keys().copied().collect();
    for x in asns {
        recompute_dest(eng, w, x, x);
    }
}

/// Tears down the session between `a` and `b` (if live): both sides drop
/// the neighbour's Adj-RIB-In entries, reselect, and propagate withdrawals
/// or replacement updates. In-flight messages on the session are discarded
/// at delivery time.
pub fn session_down<W: HasControlPlane + 'static>(eng: &mut Engine<W>, w: &mut W, a: Asn, b: Asn) {
    let cp = w.control_plane_mut();
    let key = ordered(a.0, b.0);
    if !cp.sessions.remove(&key) {
        return;
    }
    *cp.epochs.entry(key).or_insert(0) += 1;
    let mut dirty: Vec<(u32, u32)> = Vec::new();
    for (me, other) in [(a.0, b.0), (b.0, a.0)] {
        let sp = cp.speakers.get_mut(&me).expect("speaker exists");
        let dests: Vec<u32> =
            sp.adj_in.range((other, 0)..=(other, u32::MAX)).map(|(&(_, d), _)| d).collect();
        for d in dests {
            sp.adj_in.remove(&(other, d));
            dirty.push((me, d));
        }
    }
    for (me, d) in dirty {
        recompute_dest(eng, w, me, d);
    }
}

/// Brings the session between `a` and `b` up (no-op unless the pair has a
/// relationship): both sides re-advertise their full exportable table to
/// the other, as real BGP does on session establishment.
pub fn session_up<W: HasControlPlane + 'static>(eng: &mut Engine<W>, w: &mut W, a: Asn, b: Asn) {
    let cp = w.control_plane_mut();
    if cp.graph.relationship(a, b).is_none() {
        return;
    }
    let key = ordered(a.0, b.0);
    if !cp.sessions.insert(key) {
        return;
    }
    *cp.epochs.entry(key).or_insert(0) += 1;
    let epoch = cp.epochs[&key];
    let mut outbox: Vec<(u32, u32, Msg)> = Vec::new();
    for (from, to) in [(a.0, b.0), (b.0, a.0)] {
        let rel = cp.graph.relationship(Asn(from), Asn(to)).expect("adjacent");
        let sp = &cp.speakers[&from];
        let reg = match rel {
            Relationship::ProviderOf => &sp.down_reg, // `to` is our customer
            Relationship::PeerOf | Relationship::CustomerOf => &sp.up_reg,
        };
        for (dest, path) in reg {
            outbox.push((from, to, Msg::Update { dest: *dest, path: path.clone() }));
        }
    }
    for (from, to, msg) in outbox {
        send(eng, epoch, from, to, msg);
    }
}

fn send<W: HasControlPlane + 'static>(
    eng: &mut Engine<W>,
    epoch: u64,
    from: u32,
    to: u32,
    msg: Msg,
) {
    eng.schedule(CONTROL_DELAY, move |eng, w| deliver(eng, w, epoch, from, to, msg));
}

fn deliver<W: HasControlPlane + 'static>(
    eng: &mut Engine<W>,
    w: &mut W,
    epoch: u64,
    from: u32,
    to: u32,
    msg: Msg,
) {
    let cp = w.control_plane_mut();
    let key = ordered(from, to);
    if !cp.sessions.contains(&key) || cp.epoch(key) != epoch {
        return; // session flapped while the message was in flight
    }
    cp.delivered += 1;
    let dest = msg.dest();
    let sp = cp.speakers.get_mut(&to).expect("speaker exists");
    let changed = match msg {
        Msg::Update { dest, path } => match sp.adj_in.entry((from, dest)) {
            Entry::Occupied(mut o) => {
                if *o.get() == path {
                    false
                } else {
                    o.insert(path);
                    true
                }
            }
            Entry::Vacant(v) => {
                v.insert(path);
                true
            }
        },
        Msg::Withdraw { dest } => sp.adj_in.remove(&(from, dest)).is_some(),
    };
    if changed {
        recompute_dest(eng, w, to, dest);
    }
}

/// Recomputes `x`'s two registers for `dest` and advertises any change to
/// the neighbour classes the export policy allows.
fn recompute_dest<W: HasControlPlane + 'static>(eng: &mut Engine<W>, w: &mut W, x: u32, dest: u32) {
    let cp = w.control_plane_mut();
    let nbrs: Vec<(u32, Relationship)> = cp
        .graph
        .neighbours(Asn(x))
        .into_iter()
        .filter(|(n, _)| cp.sessions.contains(&ordered(x, n.0)))
        .map(|(n, r)| (n.0, r))
        .collect();

    let own = (x == dest).then(|| vec![x]);
    let mut up = own.clone();
    let mut down = own;
    {
        let sp = &cp.speakers[&x];
        for &(n, rel) in &nbrs {
            let Some(p) = sp.adj_in.get(&(n, dest)) else { continue };
            if p.contains(&x) {
                continue;
            }
            let mut cand = Vec::with_capacity(p.len() + 1);
            cand.push(x);
            cand.extend_from_slice(p);
            if rel == Relationship::ProviderOf && up.as_ref().is_none_or(|c| beats(&cand, c)) {
                up = Some(cand.clone());
            }
            if down.as_ref().is_none_or(|c| beats(&cand, c)) {
                down = Some(cand);
            }
        }
    }

    let sp = cp.speakers.get_mut(&x).expect("speaker exists");
    let up_changed = sp.up_reg.get(&dest) != up.as_ref();
    if up_changed {
        match &up {
            Some(p) => sp.up_reg.insert(dest, p.clone()),
            None => sp.up_reg.remove(&dest),
        };
    }
    let down_changed = sp.down_reg.get(&dest) != down.as_ref();
    if down_changed {
        match &down {
            Some(p) => sp.down_reg.insert(dest, p.clone()),
            None => sp.down_reg.remove(&dest),
        };
    }

    let mut outbox: Vec<(u64, u32, Msg)> = Vec::new();
    for &(n, rel) in &nbrs {
        let (changed, reg) = match rel {
            // `n` is our customer: it receives the down register.
            Relationship::ProviderOf => (down_changed, &down),
            // Providers and peers receive customer/own routes only.
            Relationship::PeerOf | Relationship::CustomerOf => (up_changed, &up),
        };
        if !changed {
            continue;
        }
        let msg = match reg {
            Some(p) => Msg::Update { dest, path: p.clone() },
            None => Msg::Withdraw { dest },
        };
        outbox.push((cp.epoch(ordered(x, n)), n, msg));
    }
    for (epoch, to, msg) in outbox {
        send(eng, epoch, x, to, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asn = Asn(1);
    const B: Asn = Asn(2);
    const T1: Asn = Asn(10);
    const T2: Asn = Asn(20);
    const TIER1: Asn = Asn(100);

    /// The bgp.rs fixture: two stubs under separate transits under one
    /// tier-1.
    fn hierarchy() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_transit(T1, A);
        g.add_transit(T2, B);
        g.add_transit(TIER1, T1);
        g.add_transit(TIER1, T2);
        g
    }

    /// Full-mesh sessions: one per adjacent pair.
    fn all_sessions(g: &AsGraph) -> BTreeSet<(u32, u32)> {
        let mut s = BTreeSet::new();
        for a in g.asns() {
            for (b, _) in g.neighbours(a) {
                s.insert(ordered(a.0, b.0));
            }
        }
        s
    }

    fn assert_matches_static(cp: &ControlPlane, g: &AsGraph, sessions: &BTreeSet<(u32, u32)>) {
        for src in g.asns() {
            for dst in g.asns() {
                let dynamic = cp.best_route(src, dst);
                let fixed = g.as_path_where(src, dst, |a, b| sessions.contains(&ordered(a.0, b.0)));
                assert_eq!(dynamic, fixed, "{src}→{dst}");
            }
        }
    }

    #[test]
    fn converged_selection_equals_static_bgp() {
        let g = hierarchy();
        let sessions = all_sessions(&g);
        let cp = ControlPlane::converged(&g, &sessions);
        assert_matches_static(&cp, &g, &sessions);
        assert!(cp.messages_delivered() > 0, "convergence exchanged messages");
    }

    #[test]
    fn converged_selection_equals_static_with_peering() {
        let mut g = hierarchy();
        g.add_peering(A, B);
        let sessions = all_sessions(&g);
        let cp = ControlPlane::converged(&g, &sessions);
        let p = cp.best_route(A, B).unwrap();
        assert_eq!(p.asns, vec![A, B]);
        assert_eq!(p.pref, RoutePref::Peer);
        assert_matches_static(&cp, &g, &sessions);
    }

    #[test]
    fn missing_session_suppresses_linkless_relationship() {
        // Policy declares the A–B peering but no session backs it: the
        // speakers must fall back to the transit hierarchy, exactly like
        // as_path_where with the physical-adjacency filter.
        let mut g = hierarchy();
        g.add_peering(A, B);
        let mut sessions = all_sessions(&g);
        sessions.remove(&ordered(A.0, B.0));
        let cp = ControlPlane::converged(&g, &sessions);
        let p = cp.best_route(A, B).unwrap();
        assert_eq!(p.asns, vec![A, T1, TIER1, T2, B]);
        assert_eq!(p.pref, RoutePref::Provider);
        assert_matches_static(&cp, &g, &sessions);
    }

    #[test]
    fn session_down_reconverges_to_reduced_fixed_point() {
        let g = hierarchy();
        let sessions = all_sessions(&g);
        let mut cp = ControlPlane::converged(&g, &sessions);
        let mut eng: Engine<ControlPlane> = Engine::new();
        session_down(&mut eng, &mut cp, T1, TIER1);
        eng.run(&mut cp);

        // A is now partitioned from everything beyond T1.
        assert!(cp.best_route(A, B).is_none());
        assert!(cp.best_route(B, A).is_none());
        let mut reduced = sessions.clone();
        reduced.remove(&ordered(T1.0, TIER1.0));
        assert_matches_static(&cp, &g, &reduced);
    }

    #[test]
    fn session_up_restores_the_original_fixed_point() {
        let g = hierarchy();
        let sessions = all_sessions(&g);
        let mut cp = ControlPlane::converged(&g, &sessions);
        let mut eng: Engine<ControlPlane> = Engine::new();
        session_down(&mut eng, &mut cp, T1, TIER1);
        eng.run(&mut cp);
        session_up(&mut eng, &mut cp, T1, TIER1);
        eng.run(&mut cp);
        assert_matches_static(&cp, &g, &sessions);
    }

    #[test]
    fn mid_flight_messages_of_flapped_sessions_are_discarded() {
        // Tear the session down *while* convergence traffic is in flight:
        // the stale messages must not resurrect withdrawn state.
        let g = hierarchy();
        let sessions = all_sessions(&g);
        let mut cp = ControlPlane::new(g.clone(), &sessions);
        let mut eng: Engine<ControlPlane> = Engine::new();
        originate_all(&mut eng, &mut cp);
        // One delivery round only, then flap.
        eng.run_until(&mut cp, crate::time::SimTime::ZERO + CONTROL_DELAY);
        session_down(&mut eng, &mut cp, T1, TIER1);
        eng.run(&mut cp);
        let mut reduced = sessions.clone();
        reduced.remove(&ordered(T1.0, TIER1.0));
        assert_matches_static(&cp, &g, &reduced);
    }

    #[test]
    fn every_rib_entry_is_valley_free() {
        let mut g = hierarchy();
        g.add_peering(T1, T2);
        g.add_peering(A, B);
        let sessions = all_sessions(&g);
        let cp = ControlPlane::converged(&g, &sessions);
        for x in g.asns() {
            for path in cp.rib(x) {
                assert!(g.is_valley_free(&path), "{x}: {path:?}");
            }
        }
    }

    #[test]
    fn customer_routes_win_over_peer_routes_dynamically() {
        // bgp.rs's customer_routes_preferred_over_peer, emergent.
        let mut g = AsGraph::new();
        let x = Asn(7);
        g.add_transit(T1, A);
        g.add_transit(A, x);
        g.add_peering(T1, T2);
        g.add_transit(T2, x);
        let sessions = all_sessions(&g);
        let cp = ControlPlane::converged(&g, &sessions);
        let p = cp.best_route(T1, x).unwrap();
        assert_eq!(p.pref, RoutePref::Customer);
        assert_eq!(p.asns, vec![T1, A, x]);
        assert_matches_static(&cp, &g, &sessions);
    }

    #[test]
    fn convergence_is_deterministic() {
        let g = hierarchy();
        let sessions = all_sessions(&g);
        let a = ControlPlane::converged(&g, &sessions);
        let b = ControlPlane::converged(&g, &sessions);
        assert_eq!(a.messages_delivered(), b.messages_delivered());
        for src in g.asns() {
            for dst in g.asns() {
                assert_eq!(a.best_route(src, dst), b.best_route(src, dst));
            }
        }
    }
}
