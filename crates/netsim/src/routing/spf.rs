//! Intra-AS shortest-path-first (Dijkstra).
//!
//! Link weight is the *expected* one-way latency of the link in
//! milliseconds (propagation + mean queueing + far-node processing), the
//! metric an IGP with delay-based weights would use.

use crate::latency::expected_link_ms;
use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A priority-queue entry ordered by (cost, node) for determinism.
#[derive(Debug, PartialEq)]
struct QueueEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed compare; break ties on node id so runs are
        // reproducible regardless of insertion order.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("NaN cost")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `src`, optionally restricted to nodes satisfying
/// `admit` (used to keep intra-AS searches inside one AS).
///
/// Returns `(dist_ms, predecessor)` arrays indexed by node id;
/// unreachable nodes have `f64::INFINITY` distance.
pub fn dijkstra(
    topo: &Topology,
    src: NodeId,
    admit: impl Fn(NodeId) -> bool,
) -> (Vec<f64>, Vec<Option<(NodeId, LinkId)>>) {
    let n = topo.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    if !admit(src) {
        return (dist, prev);
    }
    dist[src.0 as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry { cost: 0.0, node: src });
    while let Some(QueueEntry { cost, node }) = heap.pop() {
        if cost > dist[node.0 as usize] {
            continue;
        }
        for (next, link) in topo.neighbours(node) {
            if !admit(next) {
                continue;
            }
            let w = expected_link_ms(topo, link, next);
            let nd = cost + w;
            if nd < dist[next.0 as usize] {
                dist[next.0 as usize] = nd;
                prev[next.0 as usize] = Some((node, link));
                heap.push(QueueEntry { cost: nd, node: next });
            }
        }
    }
    (dist, prev)
}

/// Shortest path `src → dst` as `(hops, total_ms)`, where each hop is
/// `(node_entered, via_link)`; the source node is implicit. `None` when
/// unreachable.
pub fn shortest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    admit: impl Fn(NodeId) -> bool,
) -> Option<(Vec<(NodeId, LinkId)>, f64)> {
    let (dist, prev) = dijkstra(topo, src, admit);
    let total = dist[dst.0 as usize];
    if !total.is_finite() {
        return None;
    }
    let mut hops = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.0 as usize]?;
        hops.push((cur, l));
        cur = p;
    }
    hops.reverse();
    Some((hops, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Asn, LinkParams, NodeKind};
    use sixg_geo::GeoPoint;

    /// Line topology a-b-c-d plus a long shortcut a-d.
    fn line() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let pts = [(46.6, 14.3), (46.7, 14.4), (46.8, 14.5), (46.9, 14.6)];
        let ids: Vec<NodeId> = pts
            .iter()
            .enumerate()
            .map(|(i, (la, lo))| {
                t.add_node(NodeKind::CoreRouter, format!("r{i}"), GeoPoint::new(*la, *lo), Asn(1))
            })
            .collect();
        for w in ids.windows(2) {
            t.add_link(w[0], w[1], LinkParams::backbone());
        }
        (t, ids)
    }

    #[test]
    fn straight_line_path() {
        let (t, ids) = line();
        let (hops, ms) = shortest_path(&t, ids[0], ids[3], |_| true).unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops.last().unwrap().0, ids[3]);
        assert!(ms > 0.0);
    }

    #[test]
    fn shortcut_preferred_when_cheaper() {
        let (mut t, ids) = line();
        // Direct a-d link: same distance class but a single hop, so fewer
        // processing penalties => cheaper.
        t.add_link(ids[0], ids[3], LinkParams::backbone());
        let (hops, _) = shortest_path(&t, ids[0], ids[3], |_| true).unwrap();
        assert_eq!(hops.len(), 1);
    }

    #[test]
    fn congested_shortcut_avoided() {
        let (mut t, ids) = line();
        t.add_link(
            ids[0],
            ids[3],
            LinkParams { bandwidth_bps: 10e6, utilisation: 0.98, extra_ms: 30.0 },
        );
        let (hops, _) = shortest_path(&t, ids[0], ids[3], |_| true).unwrap();
        assert_eq!(hops.len(), 3, "should route around the congested shortcut");
    }

    #[test]
    fn admit_filter_blocks() {
        let (t, ids) = line();
        let blocked = ids[1];
        let r = shortest_path(&t, ids[0], ids[3], |n| n != blocked);
        assert!(r.is_none());
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a", GeoPoint::new(0.0, 0.0), Asn(1));
        let b = t.add_node(NodeKind::Server, "b", GeoPoint::new(1.0, 1.0), Asn(1));
        assert!(shortest_path(&t, a, b, |_| true).is_none());
    }

    #[test]
    fn src_equals_dst_is_empty_path() {
        let (t, ids) = line();
        let (hops, ms) = shortest_path(&t, ids[0], ids[0], |_| true).unwrap();
        assert!(hops.is_empty());
        assert_eq!(ms, 0.0);
    }

    #[test]
    fn removed_link_breaks_path() {
        let (mut t, ids) = line();
        let l = t.neighbours(ids[1]).find(|(n, _)| *n == ids[2]).unwrap().1;
        t.remove_link(l);
        assert!(shortest_path(&t, ids[0], ids[3], |_| true).is_none());
    }
}
