//! AS-level BGP with Gao–Rexford business relationships.
//!
//! Inter-domain routing on the real Internet is driven by *economics*, not
//! geography: an AS exports routes learned from customers to everyone, but
//! routes learned from peers/providers only to customers ("valley-free"),
//! and prefers customer routes over peer routes over provider routes.
//!
//! This is precisely the mechanism behind the paper's headline observation
//! (Section IV-C): a Klagenfurt-to-Klagenfurt request travelled
//! Vienna→Prague→Bucharest→Vienna because the mobile operator and the
//! university's ISP shared no local peering, so packets climbed the transit
//! hierarchy. Modelling the policy — rather than hard-coding the detour —
//! lets the local-peering recommendation of Section V-A *fix* the route the
//! same way it would in the real network.

use crate::topology::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Business relationship between two ASes, from `a`'s point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` pays `b` for transit: `b` is `a`'s provider.
    CustomerOf,
    /// `a` is paid by `b`: `b` is `a`'s customer.
    ProviderOf,
    /// Settlement-free peering.
    PeerOf,
}

/// Direction class of one AS-level edge in a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EdgeClass {
    /// Towards a customer (downhill).
    Down,
    /// Across a peering edge (flat).
    Flat,
    /// Towards a provider (uphill).
    Up,
}

/// Route preference classes, Gao–Rexford order (lower = preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RoutePref {
    /// Learned from a customer — revenue-bearing, most preferred.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider — costs money, least preferred.
    Provider,
    /// Destination inside the local AS.
    Local,
}

/// The AS-relationship graph.
///
/// ```
/// use sixg_netsim::routing::AsGraph;
/// use sixg_netsim::topology::Asn;
///
/// // Two stubs under separate transits under one tier-1: traffic must
/// // climb the hierarchy...
/// let mut g = AsGraph::new();
/// g.add_transit(Asn(10), Asn(1));
/// g.add_transit(Asn(20), Asn(2));
/// g.add_transit(Asn(100), Asn(10));
/// g.add_transit(Asn(100), Asn(20));
/// assert_eq!(g.as_path(Asn(1), Asn(2)).unwrap().crossings(), 4);
///
/// // ...until the stubs peer locally.
/// g.add_peering(Asn(1), Asn(2));
/// assert_eq!(g.as_path(Asn(1), Asn(2)).unwrap().crossings(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    /// `(provider, customer)` pairs.
    transit: BTreeSet<(u32, u32)>,
    /// Unordered peering pairs stored as `(min, max)`.
    peers: BTreeSet<(u32, u32)>,
    /// All ASes ever mentioned.
    asns: BTreeSet<u32>,
}

impl AsGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `provider` as transit provider of `customer`.
    pub fn add_transit(&mut self, provider: Asn, customer: Asn) {
        assert_ne!(provider, customer, "AS cannot provide transit to itself");
        self.transit.insert((provider.0, customer.0));
        self.asns.insert(provider.0);
        self.asns.insert(customer.0);
    }

    /// Declares a settlement-free peering between `a` and `b`.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        assert_ne!(a, b, "AS cannot peer with itself");
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.peers.insert(key);
        self.asns.insert(a.0);
        self.asns.insert(b.0);
    }

    /// Removes a peering if present (used by ablations).
    pub fn remove_peering(&mut self, a: Asn, b: Asn) {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.peers.remove(&key);
    }

    /// Relationship from `a` towards `b`, if adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if self.transit.contains(&(b.0, a.0)) {
            return Some(Relationship::CustomerOf); // b provides for a
        }
        if self.transit.contains(&(a.0, b.0)) {
            return Some(Relationship::ProviderOf);
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if self.peers.contains(&key) {
            return Some(Relationship::PeerOf);
        }
        None
    }

    /// All neighbours of `a` with their relationship.
    pub fn neighbours(&self, a: Asn) -> Vec<(Asn, Relationship)> {
        let mut out = Vec::new();
        for &asn in &self.asns {
            if asn == a.0 {
                continue;
            }
            if let Some(rel) = self.relationship(a, Asn(asn)) {
                out.push((Asn(asn), rel));
            }
        }
        out
    }

    /// All known ASes, ascending.
    pub fn asns(&self) -> Vec<Asn> {
        self.asns.iter().map(|&a| Asn(a)).collect()
    }

    fn edge_class(&self, from: Asn, to: Asn) -> Option<EdgeClass> {
        match self.relationship(from, to)? {
            Relationship::CustomerOf => Some(EdgeClass::Up), // towards provider
            Relationship::ProviderOf => Some(EdgeClass::Down),
            Relationship::PeerOf => Some(EdgeClass::Flat),
        }
    }

    /// Best valley-free AS path from `src` to `dst` under Gao–Rexford
    /// preferences, or `None` when policy permits no path.
    ///
    /// Selection order: route-preference class of the *first* hop
    /// (customer > peer > provider), then AS-path length, then
    /// lowest-neighbour tiebreak — a faithful single-prefix abstraction of
    /// BGP best-path selection.
    pub fn as_path(&self, src: Asn, dst: Asn) -> Option<AsPath> {
        self.as_path_where(src, dst, |_, _| true)
    }

    /// [`Self::as_path`] restricted to AS adjacencies for which
    /// `permitted` holds. The router-level path computer passes the
    /// *physical* adjacency here: an eBGP session cannot exist without a
    /// link, so a relationship configured without one is inert.
    pub fn as_path_where(
        &self,
        src: Asn,
        dst: Asn,
        permitted: impl Fn(Asn, Asn) -> bool,
    ) -> Option<AsPath> {
        if src == dst {
            return Some(AsPath { asns: vec![src], pref: RoutePref::Local });
        }
        // State space: (asn, phase). Phase 0: still climbing (only Up taken
        // so far). Phase 1: descended/peered (only Down allowed now).
        // Valley-free = Up* (Flat)? Down*.
        // Cost = (pref_class, hops, tiebreak-lexicographic path).
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
        struct Cost(u8, u32, Vec<u32>);
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut best: BTreeMap<(u32, u8), Cost> = BTreeMap::new();
        let mut heap: BinaryHeap<Reverse<(Cost, u32, u8)>> = BinaryHeap::new();

        for (nb, rel) in self.neighbours(src) {
            if !permitted(src, nb) {
                continue;
            }
            let class = self.edge_class(src, nb).expect("adjacent");
            let pref = match rel {
                Relationship::ProviderOf => 0u8, // via our customer
                Relationship::PeerOf => 1,
                Relationship::CustomerOf => 2, // via our provider
            };
            let phase = match class {
                EdgeClass::Up => 0u8,
                EdgeClass::Flat | EdgeClass::Down => 1,
            };
            let cost = Cost(pref, 1, vec![nb.0]);
            let key = (nb.0, phase);
            if best.get(&key).is_none_or(|c| cost < *c) {
                best.insert(key, cost.clone());
                heap.push(Reverse((cost, nb.0, phase)));
            }
        }

        let mut found: Option<Cost> = None;
        while let Some(Reverse((cost, asn, phase))) = heap.pop() {
            if best.get(&(asn, phase)).is_some_and(|c| *c < cost) {
                continue;
            }
            if asn == dst.0 {
                found = Some(cost);
                break;
            }
            for (nb, _) in self.neighbours(Asn(asn)) {
                if cost.2.contains(&nb.0) || nb == src {
                    continue; // loop avoidance
                }
                if !permitted(Asn(asn), nb) {
                    continue;
                }
                let class = self.edge_class(Asn(asn), nb).expect("adjacent");
                let next_phase = match (phase, class) {
                    (0, EdgeClass::Up) => 0,
                    (0, EdgeClass::Flat) | (0, EdgeClass::Down) => 1,
                    (1, EdgeClass::Down) => 1,
                    _ => continue, // valley or second peering edge
                };
                let mut path = cost.2.clone();
                path.push(nb.0);
                let ncost = Cost(cost.0, cost.1 + 1, path);
                let key = (nb.0, next_phase);
                if best.get(&key).is_none_or(|c| ncost < *c) {
                    best.insert(key, ncost.clone());
                    heap.push(Reverse((ncost, nb.0, next_phase)));
                }
            }
        }

        let cost = found?;
        let mut asns = vec![src];
        asns.extend(cost.2.iter().map(|&a| Asn(a)));
        let pref = match cost.0 {
            0 => RoutePref::Customer,
            1 => RoutePref::Peer,
            _ => RoutePref::Provider,
        };
        Some(AsPath { asns, pref })
    }

    /// Verifies that an AS path is valley-free under this graph.
    pub fn is_valley_free(&self, path: &[Asn]) -> bool {
        let mut descended = false;
        for w in path.windows(2) {
            match self.edge_class(w[0], w[1]) {
                None => return false, // not adjacent at all
                Some(EdgeClass::Up) => {
                    if descended {
                        return false;
                    }
                }
                Some(EdgeClass::Flat) | Some(EdgeClass::Down) => descended = true,
            }
        }
        true
    }
}

/// A selected AS-level route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsPath {
    /// The AS sequence, source first, destination last.
    pub asns: Vec<Asn>,
    /// Gao–Rexford preference class of the selected route.
    pub pref: RoutePref,
}

impl AsPath {
    /// Number of inter-AS crossings.
    pub fn crossings(&self) -> usize {
        self.asns.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asn = Asn(1); // stub (e.g. university ISP)
    const B: Asn = Asn(2); // stub (e.g. mobile operator)
    const T1: Asn = Asn(10); // regional transit
    const T2: Asn = Asn(20); // regional transit
    const TIER1: Asn = Asn(100);

    /// Two stubs under different regional transits under one tier-1.
    fn hierarchy() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_transit(T1, A);
        g.add_transit(T2, B);
        g.add_transit(TIER1, T1);
        g.add_transit(TIER1, T2);
        g
    }

    #[test]
    fn transit_hierarchy_routes_over_the_top() {
        let g = hierarchy();
        let p = g.as_path(A, B).unwrap();
        assert_eq!(p.asns, vec![A, T1, TIER1, T2, B]);
        assert_eq!(p.pref, RoutePref::Provider);
        assert!(g.is_valley_free(&p.asns));
    }

    #[test]
    fn peering_shortcuts_the_hierarchy() {
        let mut g = hierarchy();
        g.add_peering(A, B);
        let p = g.as_path(A, B).unwrap();
        assert_eq!(p.asns, vec![A, B]);
        assert_eq!(p.pref, RoutePref::Peer);
    }

    #[test]
    fn removing_peering_restores_detour() {
        let mut g = hierarchy();
        g.add_peering(A, B);
        g.remove_peering(A, B);
        let p = g.as_path(A, B).unwrap();
        assert_eq!(p.crossings(), 4);
    }

    #[test]
    fn customer_routes_preferred_over_peer() {
        // T1 can reach X either via its customer A (A provides X... no —
        // make X a customer of A) or via a peering with T2 that also
        // reaches X. Customer route must win even if same length.
        let mut g = AsGraph::new();
        let x = Asn(7);
        g.add_transit(T1, A);
        g.add_transit(A, x); // T1 -> A -> X is a customer route
        g.add_peering(T1, T2);
        g.add_transit(T2, x); // T1 -> T2 -> X is a peer route
        let p = g.as_path(T1, x).unwrap();
        assert_eq!(p.pref, RoutePref::Customer);
        assert_eq!(p.asns, vec![T1, A, x]);
    }

    #[test]
    fn valley_paths_rejected() {
        // A and B are both customers of T1; A--B have no direct link. The
        // only physical path A-T1-B is up-down: allowed. But a path that
        // goes down then up (T1 -> A -> ??? ) must not exist.
        let mut g = AsGraph::new();
        g.add_transit(T1, A);
        g.add_transit(T1, B);
        let p = g.as_path(A, B).unwrap();
        assert_eq!(p.asns, vec![A, T1, B]);
        // Fabricated valley: up then down then up again.
        let mut g2 = hierarchy();
        g2.add_peering(T1, T2);
        assert!(!g2.is_valley_free(&[A, T1, T2, TIER1]));
    }

    #[test]
    fn no_path_without_relationships() {
        let mut g = AsGraph::new();
        g.add_transit(T1, A);
        g.add_transit(T2, B); // two disconnected islands
        assert!(g.as_path(A, B).is_none());
    }

    #[test]
    fn peer_route_not_exported_to_peer() {
        // Valley-free also bans peer-peer-peer: A peers T1, T1 peers T2,
        // T2 provides B. A->T1->T2->B uses two consecutive flat/down
        // moves: flat then down is legal; but A->T1 flat, T1->T2 flat is
        // NOT (a peer does not export peer routes to another peer).
        let mut g = AsGraph::new();
        g.add_peering(A, T1);
        g.add_peering(T1, T2);
        g.add_transit(T2, B);
        assert!(g.as_path(A, B).is_none());
    }

    #[test]
    fn self_path_is_local() {
        let g = hierarchy();
        let p = g.as_path(A, A).unwrap();
        assert_eq!(p.asns, vec![A]);
        assert_eq!(p.pref, RoutePref::Local);
        assert_eq!(p.crossings(), 0);
    }

    #[test]
    fn shorter_of_equal_class_wins() {
        // Two provider routes of different lengths.
        let mut g = AsGraph::new();
        let mid = Asn(55);
        g.add_transit(T1, A);
        g.add_transit(T2, A); // A multihomes
        g.add_transit(T1, B);
        g.add_transit(mid, T2);
        g.add_transit(mid, Asn(56));
        g.add_transit(Asn(56), B); // longer: A-T2-mid-56-B (and 56 provides B)
        let p = g.as_path(A, B).unwrap();
        assert_eq!(p.asns, vec![A, T1, B]);
    }

    #[test]
    fn adjacency_filter_suppresses_linkless_relationships() {
        let mut g = hierarchy();
        g.add_peering(A, B);
        // Policy alone would pick the direct peer route…
        assert_eq!(g.as_path(A, B).unwrap().crossings(), 1);
        // …but if the A-B adjacency has no physical link, BGP falls back
        // to the transit hierarchy.
        let p = g.as_path_where(A, B, |x, y| !(x == A && y == B || x == B && y == A)).unwrap();
        assert_eq!(p.asns, vec![A, T1, TIER1, T2, B]);
        assert_eq!(p.pref, RoutePref::Provider);
    }

    #[test]
    fn adjacency_filter_can_partition() {
        let g = hierarchy();
        assert!(g.as_path_where(A, B, |_, _| false).is_none());
        // Self-route always exists.
        assert!(g.as_path_where(A, A, |_, _| false).is_some());
    }

    #[test]
    fn relationship_symmetry() {
        let g = hierarchy();
        assert_eq!(g.relationship(A, T1), Some(Relationship::CustomerOf));
        assert_eq!(g.relationship(T1, A), Some(Relationship::ProviderOf));
        assert_eq!(g.relationship(A, B), None);
        let mut g2 = g.clone();
        g2.add_peering(T1, T2);
        assert_eq!(g2.relationship(T1, T2), Some(Relationship::PeerOf));
        assert_eq!(g2.relationship(T2, T1), Some(Relationship::PeerOf));
    }
}
