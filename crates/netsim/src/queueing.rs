//! Queueing: analytic results and the event-driven FIFO server.
//!
//! Link queues in the simulator are sampled stochastically; this module
//! provides the closed-form M/M/1, M/D/1 and M/G/1 results used both to
//! parameterise those samples and to *verify* them in tests (sampled mean
//! waits must match Pollaczek–Khinchine). For packet-level execution it
//! also provides [`FifoServer`], the single-server FIFO queue discipline
//! the discrete-event campaign backend attaches to every link.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Offered load of a single-server queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Load {
    /// Arrival rate λ (jobs per second).
    pub lambda: f64,
    /// Service rate μ (jobs per second).
    pub mu: f64,
}

impl Load {
    /// Creates a load descriptor. Panics unless both rates are positive.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda >= 0.0 && mu > 0.0, "invalid rates λ={lambda} μ={mu}");
        Self { lambda, mu }
    }

    /// Utilisation ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// True when the queue is stable (ρ < 1).
    pub fn stable(&self) -> bool {
        self.rho() < 1.0
    }
}

/// Mean waiting time **in queue** (excluding service) for M/M/1, seconds.
///
/// `Wq = ρ / (μ − λ)`. Returns `f64::INFINITY` for ρ ≥ 1.
pub fn mm1_wait(load: Load) -> f64 {
    if !load.stable() {
        return f64::INFINITY;
    }
    load.rho() / (load.mu - load.lambda)
}

/// Mean sojourn time (queue + service) for M/M/1, seconds.
pub fn mm1_sojourn(load: Load) -> f64 {
    if !load.stable() {
        return f64::INFINITY;
    }
    1.0 / (load.mu - load.lambda)
}

/// Mean number in system for M/M/1 (Little's law check: `L = λ·W`).
pub fn mm1_number_in_system(load: Load) -> f64 {
    if !load.stable() {
        return f64::INFINITY;
    }
    load.rho() / (1.0 - load.rho())
}

/// Mean waiting time in queue for M/D/1 (deterministic service), seconds.
///
/// `Wq = ρ / (2μ(1−ρ))` — exactly half the M/M/1 wait.
pub fn md1_wait(load: Load) -> f64 {
    if !load.stable() {
        return f64::INFINITY;
    }
    load.rho() / (2.0 * load.mu * (1.0 - load.rho()))
}

/// Mean waiting time in queue for M/G/1 via Pollaczek–Khinchine, seconds.
///
/// `cs2` is the squared coefficient of variation of service time
/// (0 → M/D/1, 1 → M/M/1).
pub fn mg1_wait(load: Load, cs2: f64) -> f64 {
    assert!(cs2 >= 0.0, "cs2 must be non-negative");
    if !load.stable() {
        return f64::INFINITY;
    }
    (1.0 + cs2) / 2.0 * load.rho() / (load.mu * (1.0 - load.rho()))
}

/// Probability an M/M/1 queue has more than `n` jobs: `ρ^(n+1)`.
pub fn mm1_tail(load: Load, n: u32) -> f64 {
    if !load.stable() {
        return 1.0;
    }
    load.rho().powi(n as i32 + 1)
}

/// A work-conserving single-server FIFO queue over simulated time.
///
/// The event-driven campaign backend keeps one per link: each packet that
/// arrives while the server is busy waits exactly until the in-flight
/// packets before it have been serialised — queueing among simulated
/// packets is *emergent* rather than sampled. (Background cross-traffic
/// too light to simulate per-packet stays analytic via [`mg1_wait`].)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoServer {
    busy_until: SimTime,
    served: u64,
    total_wait: SimDuration,
}

impl FifoServer {
    /// An idle server at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a packet arriving at `arrival` needing `service` time on the
    /// server; returns its departure time. FIFO: service starts at
    /// `max(arrival, busy_until)`.
    pub fn admit(&mut self, arrival: SimTime, service: SimDuration) -> SimTime {
        let start = arrival.max(self.busy_until);
        let departure = start + service;
        self.busy_until = departure;
        self.served += 1;
        self.total_wait += start.since(arrival);
        departure
    }

    /// Time the server is occupied until (departure of the last admitted
    /// packet).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of packets admitted so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean waiting time in queue over all admitted packets, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait.as_secs_f64() / self.served as f64
        }
    }
}

/// Erlang-B blocking probability for `c` servers and offered load `a`
/// (erlangs), computed with the stable recurrence.
pub fn erlang_b(c: u32, a: f64) -> f64 {
    assert!(a >= 0.0, "offered load must be non-negative");
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample};
    use crate::rng::SimRng;

    #[test]
    fn mm1_formulas_consistent() {
        let load = Load::new(8.0, 10.0);
        assert!((load.rho() - 0.8).abs() < 1e-12);
        // Sojourn = wait + service.
        assert!((mm1_sojourn(load) - (mm1_wait(load) + 0.1)).abs() < 1e-12);
        // Little's law: L = λ W.
        let l = mm1_number_in_system(load);
        assert!((l - load.lambda * mm1_sojourn(load)).abs() < 1e-9);
    }

    #[test]
    fn md1_is_half_mm1() {
        let load = Load::new(5.0, 10.0);
        assert!((md1_wait(load) - mm1_wait(load) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_interpolates() {
        let load = Load::new(5.0, 10.0);
        assert!((mg1_wait(load, 1.0) - mm1_wait(load)).abs() < 1e-12);
        assert!((mg1_wait(load, 0.0) - md1_wait(load)).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_diverges() {
        let load = Load::new(11.0, 10.0);
        assert!(mm1_wait(load).is_infinite());
        assert!(md1_wait(load).is_infinite());
        assert!(mm1_tail(load, 100) == 1.0);
    }

    #[test]
    fn tail_probability_decays() {
        let load = Load::new(5.0, 10.0);
        // P(N > 0) is the probability the system is busy: exactly ρ.
        assert!((mm1_tail(load, 0) - 0.5).abs() < 1e-12);
        assert!(mm1_tail(load, 5) < mm1_tail(load, 1));
    }

    #[test]
    fn erlang_b_known_values() {
        // Classic: 10 erlangs on 10 servers → ~21.5% blocking.
        let b = erlang_b(10, 10.0);
        assert!((b - 0.215).abs() < 0.005, "got {b}");
        // No load → no blocking.
        assert_eq!(erlang_b(5, 0.0), 0.0);
        // Zero servers → certain blocking.
        assert_eq!(erlang_b(0, 3.0), 1.0);
    }

    #[test]
    fn fifo_server_is_work_conserving_and_ordered() {
        let mut q = FifoServer::new();
        // First packet: no wait, departs at arrival + service.
        let d1 = q.admit(SimTime::from_secs(1), SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_secs_f64(1.010));
        // Second arrives while busy: waits for the first.
        let d2 = q.admit(SimTime::from_secs_f64(1.005), SimDuration::from_millis(10));
        assert_eq!(d2, SimTime::from_secs_f64(1.020));
        // Third arrives after the queue drained: idle server, no wait.
        let d3 = q.admit(SimTime::from_secs(2), SimDuration::from_millis(5));
        assert_eq!(d3, SimTime::from_secs_f64(2.005));
        assert_eq!(q.served(), 3);
        // Only the second packet waited (5 ms): mean = 5/3 ms.
        assert!((q.mean_wait_s() - 0.005 / 3.0).abs() < 1e-12);
    }

    /// Driving the FIFO server with M/M/1 arrivals must reproduce the
    /// closed-form mean wait — the event discipline and the analytic
    /// formulas are two views of the same queue.
    #[test]
    fn fifo_server_matches_mm1_wait() {
        let load = Load::new(6.0, 10.0);
        let arr = Exponential::with_rate(load.lambda);
        let srv = Exponential::with_rate(load.mu);
        let mut rng = SimRng::from_seed(99);
        let mut q = FifoServer::new();
        let mut t = 0.0f64;
        for _ in 0..400_000 {
            t += arr.sample(&mut rng);
            q.admit(SimTime::from_secs_f64(t), SimDuration::from_secs_f64(srv.sample(&mut rng)));
        }
        let w_th = mm1_wait(load);
        assert!(
            (q.mean_wait_s() - w_th).abs() / w_th < 0.05,
            "sim {} vs theory {w_th}",
            q.mean_wait_s()
        );
    }

    /// Event-free validation of the M/M/1 formula by direct Lindley
    /// recursion simulation with our own distributions.
    #[test]
    fn lindley_simulation_matches_mm1() {
        let load = Load::new(6.0, 10.0);
        let arr = Exponential::with_rate(load.lambda);
        let srv = Exponential::with_rate(load.mu);
        let mut rng = SimRng::from_seed(42);
        let mut wait = 0.0f64;
        let mut total_wait = 0.0;
        let n = 400_000;
        for _ in 0..n {
            let a = arr.sample(&mut rng);
            let s = srv.sample(&mut rng);
            // Lindley: W_{k+1} = max(0, W_k + S_k − A_{k+1})
            wait = (wait + s - a).max(0.0);
            total_wait += wait;
        }
        let w_sim = total_wait / n as f64;
        let w_th = mm1_wait(load);
        assert!((w_sim - w_th).abs() / w_th < 0.05, "sim {w_sim} vs theory {w_th}");
    }
}
