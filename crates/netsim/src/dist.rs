//! Probability distributions for delay modelling.
//!
//! Implemented in-crate (rather than pulling `rand_distr`) because the
//! simulator needs a small, auditable set with exact, documented
//! parameterisations — these distributions *are* part of the model.
//!
//! All samplers draw from [`SimRng`] so campaigns stay deterministic.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A sampleable distribution over non-negative reals (delays, sizes).
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Analytic mean where available (used by tests and queueing checks).
    fn mean(&self) -> f64;
}

/// Distributions with a closed-form inverse CDF.
///
/// `quantile(p)` returns the value `x` with `P(X ≤ x) = p`. Used by the
/// latency budget analysis (tail percentiles without sampling) and pinned
/// down by property tests: a quantile function must be monotone in `p` and
/// agree with its sampler's inverse-transform formula.
pub trait Quantile {
    /// The inverse CDF at `p ∈ [0, 1)`. Panics outside that range.
    fn quantile(&self, p: f64) -> f64;

    /// Batched inverse CDF: evaluates `quantile` over a whole column of
    /// uniforms at once, writing into `out` (`out[i] = quantile(u[i])`).
    ///
    /// This is the columnar hot path for large-grid campaigns: the caller
    /// advances the RNG once per *block* to fill `u`, then this tight loop
    /// turns the block into samples. The default implementation applies the
    /// exact same scalar `quantile` expression element-wise, so results are
    /// bitwise-identical to calling `quantile` in a loop — pinned by tests
    /// for every closed-form distribution.
    fn inverse_cdf_block(&self, u: &[f64], out: &mut [f64]) {
        assert_eq!(u.len(), out.len(), "inverse_cdf_block: length mismatch");
        for (o, p) in out.iter_mut().zip(u) {
            *o = self.quantile(*p);
        }
    }
}

fn check_p(p: f64) {
    assert!((0.0..1.0).contains(&p), "quantile: p must be in [0, 1), got {p}");
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

impl Quantile for Constant {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution; panics if `hi < lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "uniform: hi < lo");
        Self { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

impl Quantile for Uniform {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.lo + (self.hi - self.lo) * p
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate parameter λ > 0.
    pub lambda: f64,
}

impl Exponential {
    /// From the rate λ.
    pub fn with_rate(lambda: f64) -> Self {
        assert!(lambda > 0.0, "exponential: lambda must be positive");
        Self { lambda }
    }
    /// From the mean `m = 1/λ`.
    pub fn with_mean(m: f64) -> Self {
        Self::with_rate(1.0 / m)
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        self.quantile(rng.unit())
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Quantile for Exponential {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        -(1.0 - p).ln() / self.lambda
    }
}

/// Normal(mu, sigma) via Box–Muller (one value per draw; simple and exact).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation, σ ≥ 0.
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution; panics when σ < 0.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "normal: sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Standard normal draw.
    pub fn standard_draw(rng: &mut SimRng) -> f64 {
        let u1 = (1.0 - rng.unit()).max(f64::MIN_POSITIVE);
        let u2 = rng.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Inverse CDF of the *standard* normal (Acklam's rational
    /// approximation, |relative error| < 1.15e-9 over (0, 1)).
    pub fn standard_quantile(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "standard_quantile: p must be in (0, 1), got {p}");
        const A: [f64; 6] = [
            -3.969683028665376e+01,
            2.209460984245205e+02,
            -2.759285104469687e+02,
            1.38357751867269e+02,
            -3.066479806614716e+01,
            2.506628277459239e+00,
        ];
        const B: [f64; 5] = [
            -5.447609879822406e+01,
            1.615858368580409e+02,
            -1.556989798598866e+02,
            6.680131188771972e+01,
            -1.328068155288572e+01,
        ];
        const C: [f64; 6] = [
            -7.784894002430293e-03,
            -3.223964580411365e-01,
            -2.400758277161838e+00,
            -2.549732539343734e+00,
            4.374664141464968e+00,
            2.938163982698783e+00,
        ];
        const D: [f64; 4] = [
            7.784695709041462e-03,
            3.224671290700398e-01,
            2.445134137142996e+00,
            3.754408661907416e+00,
        ];
        const P_LOW: f64 = 0.02425;
        if p < P_LOW {
            // Lower tail.
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            // Central region.
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            // Upper tail (by symmetry).
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * Self::standard_draw(rng)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
}

impl Quantile for Normal {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        self.mu + self.sigma * Self::standard_quantile(p)
    }
}

/// LogNormal: `exp(Normal(mu, sigma))`.
///
/// The canonical heavy-ish-tailed model for Internet RTT components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal, σ ≥ 0.
    pub sigma: f64,
}

impl LogNormal {
    /// From underlying-normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "lognormal: sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Parameterised by the *distribution's* mean and coefficient of
    /// variation (cv = σ/μ of the lognormal itself) — the natural way to
    /// specify delay components ("mean 8 ms, cv 0.5").
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0, "lognormal: invalid mean/cv");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self { mu, sigma: sigma2.sqrt() }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard_draw(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Quantile for LogNormal {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        if p == 0.0 {
            return 0.0;
        }
        (self.mu + self.sigma * Normal::standard_quantile(p)).exp()
    }
}

/// Pareto(x_min, alpha) — heavy-tailed spikes (congestion bursts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Minimum value (scale), > 0.
    pub x_min: f64,
    /// Tail index α > 0 (mean finite iff α > 1).
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: invalid parameters");
        Self { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.unit())
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }
}

impl Quantile for Pareto {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.x_min / (1.0 - p).powf(1.0 / self.alpha)
    }
}

/// Weibull(scale, shape) — wireless fading / retransmission clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    /// Scale λ > 0.
    pub scale: f64,
    /// Shape k > 0.
    pub shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && shape > 0.0, "weibull: invalid parameters");
        Self { scale, shape }
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.unit())
    }
    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

impl Quantile for Weibull {
    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }
}

/// A weighted mixture of delay distributions.
///
/// Used for the mmWave PHY latency model, which Fezeu et al. report as a
/// multi-modal distribution (a fast-path mass under 1 ms, a mid mass under
/// 3 ms, and a bulk).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mixture {
    components: Vec<(f64, Component)>,
    total_weight: f64,
}

/// A component usable inside [`Mixture`] (closed enum so it serialises).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Component {
    /// Constant value.
    Constant(Constant),
    /// Uniform range.
    Uniform(Uniform),
    /// Exponential.
    Exponential(Exponential),
    /// Normal.
    Normal(Normal),
    /// LogNormal.
    LogNormal(LogNormal),
    /// Pareto.
    Pareto(Pareto),
    /// Weibull.
    Weibull(Weibull),
}

impl Sample for Component {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Component::Constant(d) => d.sample(rng),
            Component::Uniform(d) => d.sample(rng),
            Component::Exponential(d) => d.sample(rng),
            Component::Normal(d) => d.sample(rng),
            Component::LogNormal(d) => d.sample(rng),
            Component::Pareto(d) => d.sample(rng),
            Component::Weibull(d) => d.sample(rng),
        }
    }
    fn mean(&self) -> f64 {
        match self {
            Component::Constant(d) => d.mean(),
            Component::Uniform(d) => d.mean(),
            Component::Exponential(d) => d.mean(),
            Component::Normal(d) => d.mean(),
            Component::LogNormal(d) => d.mean(),
            Component::Pareto(d) => d.mean(),
            Component::Weibull(d) => d.mean(),
        }
    }
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs.
    pub fn new(components: Vec<(f64, Component)>) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one component");
        assert!(components.iter().all(|(w, _)| *w > 0.0), "weights must be positive");
        let total_weight = components.iter().map(|(w, _)| w).sum();
        Self { components, total_weight }
    }

    /// The component weights, normalised.
    pub fn weights(&self) -> Vec<f64> {
        self.components.iter().map(|(w, _)| w / self.total_weight).collect()
    }
}

impl Sample for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut pick = rng.unit() * self.total_weight;
        for (w, c) in &self.components {
            if pick < *w {
                return c.sample(rng);
            }
            pick -= w;
        }
        self.components.last().unwrap().1.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, c)| w * c.mean()).sum::<f64>() / self.total_weight
    }
}

/// A declarative, serialisable description of a delay distribution.
///
/// This is the form distributions take in scenario spec files
/// (`specs/*.json`): a tagged object like `{"kind": "lognormal",
/// "mean_ms": 0.4, "cv": 0.5}` that [`DistSpec::build`]s into a sampleable
/// [`Component`]. Unlike the raw distribution structs, every variant is
/// parameterised the way an operator would write it down (means and
/// coefficients of variation rather than `mu`/`sigma`), and
/// [`DistSpec::validate`] rejects parameterisations that could produce
/// negative delays or undefined means *before* a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistSpec {
    /// Always `ms`.
    Constant {
        /// The fixed delay, ms.
        ms: f64,
    },
    /// Uniform on `[lo_ms, hi_ms)`.
    Uniform {
        /// Inclusive lower bound, ms.
        lo_ms: f64,
        /// Exclusive upper bound, ms.
        hi_ms: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean delay, ms.
        mean_ms: f64,
    },
    /// Normal — only meaningful for delays when the mass below zero is
    /// negligible; `validate` enforces `mean_ms ≥ 4·std_ms`.
    Normal {
        /// Mean delay, ms.
        mean_ms: f64,
        /// Standard deviation, ms.
        std_ms: f64,
    },
    /// LogNormal by mean and coefficient of variation.
    LogNormal {
        /// Mean delay, ms.
        mean_ms: f64,
        /// Coefficient of variation (σ/μ of the lognormal itself).
        cv: f64,
    },
    /// Pareto by minimum value and tail index.
    Pareto {
        /// Minimum delay (scale), ms.
        x_min_ms: f64,
        /// Tail index α; `validate` requires α > 1 so the mean is finite.
        alpha: f64,
    },
    /// Weibull by scale and shape.
    Weibull {
        /// Scale λ, ms.
        scale_ms: f64,
        /// Shape k.
        shape: f64,
    },
}

impl DistSpec {
    /// The spec's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            DistSpec::Constant { .. } => "constant",
            DistSpec::Uniform { .. } => "uniform",
            DistSpec::Exponential { .. } => "exponential",
            DistSpec::Normal { .. } => "normal",
            DistSpec::LogNormal { .. } => "lognormal",
            DistSpec::Pareto { .. } => "pareto",
            DistSpec::Weibull { .. } => "weibull",
        }
    }

    /// Checks the parameterisation describes a valid non-negative delay
    /// distribution with a finite mean.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            DistSpec::Constant { ms } => {
                if ms < 0.0 {
                    return Err(format!("constant delay must be non-negative, got {ms} ms"));
                }
            }
            DistSpec::Uniform { lo_ms, hi_ms } => {
                if lo_ms < 0.0 {
                    return Err(format!("uniform lower bound must be non-negative, got {lo_ms}"));
                }
                if hi_ms < lo_ms {
                    return Err(format!("uniform bounds inverted: lo {lo_ms} > hi {hi_ms}"));
                }
            }
            DistSpec::Exponential { mean_ms } => {
                if mean_ms <= 0.0 {
                    return Err(format!("exponential mean must be positive, got {mean_ms}"));
                }
            }
            DistSpec::Normal { mean_ms, std_ms } => {
                if std_ms < 0.0 {
                    return Err(format!("normal std must be non-negative, got {std_ms}"));
                }
                if mean_ms < 4.0 * std_ms {
                    return Err(format!(
                        "normal delay needs mean ≥ 4·std to keep negative mass negligible \
                         (got mean {mean_ms}, std {std_ms}); use lognormal for wider spreads"
                    ));
                }
            }
            DistSpec::LogNormal { mean_ms, cv } => {
                if mean_ms <= 0.0 || cv < 0.0 {
                    return Err(format!(
                        "lognormal needs mean > 0 and cv ≥ 0, got mean {mean_ms}, cv {cv}"
                    ));
                }
            }
            DistSpec::Pareto { x_min_ms, alpha } => {
                if x_min_ms <= 0.0 {
                    return Err(format!("pareto x_min must be positive, got {x_min_ms}"));
                }
                if alpha <= 1.0 {
                    return Err(format!(
                        "pareto tail index must exceed 1 for a finite mean delay, got {alpha}"
                    ));
                }
            }
            DistSpec::Weibull { scale_ms, shape } => {
                if scale_ms <= 0.0 || shape <= 0.0 {
                    return Err(format!(
                        "weibull needs positive scale and shape, got scale {scale_ms}, \
                         shape {shape}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Compiles into a sampleable [`Component`]. Panics on invalid
    /// parameters — call [`Self::validate`] first for a recoverable error.
    pub fn build(&self) -> Component {
        match *self {
            DistSpec::Constant { ms } => Component::Constant(Constant(ms)),
            DistSpec::Uniform { lo_ms, hi_ms } => Component::Uniform(Uniform::new(lo_ms, hi_ms)),
            DistSpec::Exponential { mean_ms } => {
                Component::Exponential(Exponential::with_mean(mean_ms))
            }
            DistSpec::Normal { mean_ms, std_ms } => Component::Normal(Normal::new(mean_ms, std_ms)),
            DistSpec::LogNormal { mean_ms, cv } => {
                Component::LogNormal(LogNormal::from_mean_cv(mean_ms, cv))
            }
            DistSpec::Pareto { x_min_ms, alpha } => Component::Pareto(Pareto::new(x_min_ms, alpha)),
            DistSpec::Weibull { scale_ms, shape } => {
                Component::Weibull(Weibull::new(scale_ms, shape))
            }
        }
    }

    /// Analytic mean delay of the described distribution, ms.
    ///
    /// For `Constant` this is the exact value; the analytic path sampler
    /// consumes this expectation as the link's fixed extra latency (the
    /// same convention as the `expected_link_ms` routing metric), while
    /// event-driven workloads can [`Self::build`] the full distribution.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            DistSpec::Constant { ms } => ms,
            DistSpec::LogNormal { mean_ms, .. } => mean_ms,
            DistSpec::Exponential { mean_ms } => mean_ms,
            DistSpec::Normal { mean_ms, .. } => mean_ms,
            _ => self.build().mean(),
        }
    }

    /// Decodes from a JSON-shaped [`serde::Value`] (`{"kind": ..., ...}`).
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| "distribution needs a string `kind` field".to_string())?;
        let num = |field: &str| -> Result<f64, String> {
            v.get(field)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("{kind} distribution needs a numeric `{field}` field"))
        };
        let spec = match kind {
            "constant" => DistSpec::Constant { ms: num("ms")? },
            "uniform" => DistSpec::Uniform { lo_ms: num("lo_ms")?, hi_ms: num("hi_ms")? },
            "exponential" => DistSpec::Exponential { mean_ms: num("mean_ms")? },
            "normal" => DistSpec::Normal { mean_ms: num("mean_ms")?, std_ms: num("std_ms")? },
            "lognormal" => DistSpec::LogNormal { mean_ms: num("mean_ms")?, cv: num("cv")? },
            "pareto" => DistSpec::Pareto { x_min_ms: num("x_min_ms")?, alpha: num("alpha")? },
            "weibull" => DistSpec::Weibull { scale_ms: num("scale_ms")?, shape: num("shape")? },
            other => {
                return Err(format!(
                    "unknown distribution kind {other:?} (expected constant, uniform, \
                     exponential, normal, lognormal, pareto, or weibull)"
                ))
            }
        };
        Ok(spec)
    }
}

impl serde::Serialize for DistSpec {
    fn to_value(&self) -> serde::Value {
        let pair = |k: &str, x: f64| (k.to_string(), serde::Value::F64(x));
        let kind = ("kind".to_string(), serde::Value::String(self.kind().to_string()));
        let fields = match *self {
            DistSpec::Constant { ms } => vec![kind, pair("ms", ms)],
            DistSpec::Uniform { lo_ms, hi_ms } => {
                vec![kind, pair("lo_ms", lo_ms), pair("hi_ms", hi_ms)]
            }
            DistSpec::Exponential { mean_ms } => vec![kind, pair("mean_ms", mean_ms)],
            DistSpec::Normal { mean_ms, std_ms } => {
                vec![kind, pair("mean_ms", mean_ms), pair("std_ms", std_ms)]
            }
            DistSpec::LogNormal { mean_ms, cv } => {
                vec![kind, pair("mean_ms", mean_ms), pair("cv", cv)]
            }
            DistSpec::Pareto { x_min_ms, alpha } => {
                vec![kind, pair("x_min_ms", x_min_ms), pair("alpha", alpha)]
            }
            DistSpec::Weibull { scale_ms, shape } => {
                vec![kind, pair("scale_ms", scale_ms), pair("shape", shape)]
            }
        };
        serde::Value::Object(fields)
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), |error| <
/// 1e-13 over the domain used here (arguments in `(0, 20]`).
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(4.0);
        let m = empirical_mean(&d, 100_000, 1);
        assert!((m - 4.0).abs() < 0.08, "got {m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = SimRng::from_seed(2);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_from_mean_cv() {
        let d = LogNormal::from_mean_cv(8.0, 0.5);
        assert!((d.mean() - 8.0).abs() < 1e-9);
        let m = empirical_mean(&d, 200_000, 3);
        assert!((m - 8.0).abs() < 0.15, "got {m}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::from_mean_cv(1.0, 2.0);
        let mut rng = SimRng::from_seed(4);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn pareto_mean() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        let m = empirical_mean(&d, 200_000, 5);
        assert!((m - 1.5).abs() < 0.05, "got {m}");
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn weibull_mean() {
        let d = Weibull::new(2.0, 1.5);
        let analytic = d.mean();
        let m = empirical_mean(&d, 200_000, 6);
        assert!((m - analytic).abs() < 0.05, "got {m} want {analytic}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(3.0, 1.0);
        assert!((w.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_cdf_block_is_bitwise_identical_to_scalar_quantile() {
        // The columnar pipeline's determinism rests on this: a block
        // evaluation must produce the exact bits of the scalar loop for
        // every closed-form distribution, across the full open interval
        // including deep tails.
        let mut rng = SimRng::from_seed(0xC01u64);
        let mut u: Vec<f64> = (0..4096).map(|_| rng.unit()).collect();
        u.extend_from_slice(&[0.0, 1e-300, 0.5, 0.02424, 0.02426, 0.97576, 1.0 - 1e-12]);
        let quantiles: [&dyn Quantile; 7] = [
            &Constant(4.2),
            &Uniform::new(1.0, 9.0),
            &Exponential::with_mean(4.0),
            &Normal::new(10.0, 2.0),
            &LogNormal::from_mean_cv(8.0, 0.5),
            &Pareto::new(1.0, 3.0),
            &Weibull::new(2.0, 1.5),
        ];
        for d in quantiles {
            let mut block = vec![0.0; u.len()];
            d.inverse_cdf_block(&u, &mut block);
            for (i, p) in u.iter().enumerate() {
                let scalar = d.quantile(*p);
                assert_eq!(
                    scalar.to_bits(),
                    block[i].to_bits(),
                    "p={p}: scalar {scalar} vs block {}",
                    block[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn inverse_cdf_block_rejects_mismatched_lengths() {
        let mut out = [0.0; 2];
        Constant(1.0).inverse_cdf_block(&[0.5; 3], &mut out);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture::new(vec![
            (0.25, Component::Constant(Constant(1.0))),
            (0.75, Component::Constant(Constant(5.0))),
        ]);
        assert!((m.mean() - 4.0).abs() < 1e-12);
        let e = empirical_mean(&m, 100_000, 7);
        assert!((e - 4.0).abs() < 0.03, "got {e}");
    }

    #[test]
    fn mixture_component_fractions() {
        // 30% should land below 2, the rest at 10.
        let m = Mixture::new(vec![
            (0.3, Component::Uniform(Uniform::new(0.0, 2.0))),
            (0.7, Component::Constant(Constant(10.0))),
        ]);
        let mut rng = SimRng::from_seed(8);
        let n = 100_000;
        let low = (0..n).filter(|_| m.sample(&mut rng) < 2.0).count();
        let frac = low as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn standard_quantile_known_values() {
        assert_eq!(Normal::standard_quantile(0.5), 0.0);
        assert!((Normal::standard_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((Normal::standard_quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-8);
        // Tail branches (beyond Acklam's central region).
        assert!((Normal::standard_quantile(0.001) + 3.090_232_306_167_813).abs() < 1e-7);
        assert!((Normal::standard_quantile(0.999) - 3.090_232_306_167_813).abs() < 1e-7);
    }

    #[test]
    fn quantiles_match_closed_forms() {
        let e = Exponential::with_mean(4.0);
        assert!((e.quantile(0.5) - 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
        let u = Uniform::new(10.0, 20.0);
        assert_eq!(u.quantile(0.25), 12.5);
        let p = Pareto::new(2.0, 3.0);
        assert_eq!(p.quantile(0.0), 2.0);
        let w = Weibull::new(3.0, 1.0); // shape 1 == exponential(mean 3)
        assert!((w.quantile(0.5) - 3.0 * std::f64::consts::LN_2).abs() < 1e-12);
        let ln = LogNormal::new(1.0, 0.5);
        assert!((ln.quantile(0.5) - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_empirical_cdf() {
        // For inverse-transform samplers the p-quantile must sit at the
        // p-th fraction of a large sample.
        let d = Exponential::with_mean(2.0);
        let mut rng = SimRng::from_seed(11);
        let n = 100_000;
        for p in [0.1, 0.5, 0.9] {
            let q = d.quantile(p);
            let below = (0..n).filter(|_| d.sample(&mut rng) <= q).count();
            let frac = below as f64 / n as f64;
            assert!((frac - p).abs() < 0.01, "p={p} frac={frac}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile: p must be in")]
    fn quantile_rejects_p_of_one() {
        let _ = Exponential::with_mean(1.0).quantile(1.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = LogNormal::from_mean_cv(5.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = SimRng::from_seed(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SimRng::from_seed(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn mixture_rejects_zero_weights() {
        let _ = Mixture::new(vec![(0.0, Component::Constant(Constant(1.0)))]);
    }

    const ALL_SPECS: [DistSpec; 7] = [
        DistSpec::Constant { ms: 0.4 },
        DistSpec::Uniform { lo_ms: 1.0, hi_ms: 3.0 },
        DistSpec::Exponential { mean_ms: 2.0 },
        DistSpec::Normal { mean_ms: 8.0, std_ms: 1.0 },
        DistSpec::LogNormal { mean_ms: 0.4, cv: 0.5 },
        DistSpec::Pareto { x_min_ms: 1.0, alpha: 3.0 },
        DistSpec::Weibull { scale_ms: 2.0, shape: 1.5 },
    ];

    #[test]
    fn dist_spec_builds_and_means_agree() {
        for spec in ALL_SPECS {
            spec.validate().expect("all specs valid");
            let built = spec.build();
            assert!(
                (spec.mean_ms() - built.mean()).abs() < 1e-12,
                "{}: spec mean {} vs component mean {}",
                spec.kind(),
                spec.mean_ms(),
                built.mean()
            );
        }
        assert_eq!(DistSpec::Constant { ms: 0.4 }.mean_ms(), 0.4);
        assert!((DistSpec::LogNormal { mean_ms: 0.4, cv: 0.5 }.mean_ms() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dist_spec_value_round_trip() {
        use serde::Serialize;
        for spec in ALL_SPECS {
            let v = spec.to_value();
            let back = DistSpec::from_value(&v).expect("round trip");
            assert_eq!(back, spec, "{}", spec.kind());
        }
    }

    #[test]
    fn dist_spec_rejects_invalid_parameterisations() {
        let cases: [(DistSpec, &str); 6] = [
            (DistSpec::Constant { ms: -1.0 }, "non-negative"),
            (DistSpec::Uniform { lo_ms: 3.0, hi_ms: 1.0 }, "inverted"),
            (DistSpec::Exponential { mean_ms: 0.0 }, "positive"),
            (DistSpec::Normal { mean_ms: 1.0, std_ms: 1.0 }, "negative mass"),
            (DistSpec::Pareto { x_min_ms: 1.0, alpha: 0.9 }, "finite mean"),
            (DistSpec::Weibull { scale_ms: -2.0, shape: 1.0 }, "positive"),
        ];
        for (spec, needle) in cases {
            let err = spec.validate().expect_err("must be rejected");
            assert!(err.contains(needle), "{}: {err}", spec.kind());
        }
    }

    #[test]
    fn dist_spec_from_value_errors_are_actionable() {
        use serde::Value;
        let v = Value::Object(vec![("kind".into(), Value::String("gauss".into()))]);
        let err = DistSpec::from_value(&v).unwrap_err();
        assert!(err.contains("unknown distribution kind"), "{err}");
        let v = Value::Object(vec![("kind".into(), Value::String("constant".into()))]);
        let err = DistSpec::from_value(&v).unwrap_err();
        assert!(err.contains("`ms`"), "{err}");
        let err = DistSpec::from_value(&Value::Null).unwrap_err();
        assert!(err.contains("`kind`"), "{err}");
    }
}
