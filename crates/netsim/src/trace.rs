//! Hop-by-hop flow traces and their geographic projection.
//!
//! A [`FlowTrace`] is what a traceroute produces: one [`HopRecord`] per
//! router crossed, each carrying the cumulative RTT measured to that hop,
//! the resolved name, and the hop's geographic position. Rendering one
//! gives the paper's Table I; projecting the positions gives Figure 4.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use sixg_geo::{GeoPoint, Polyline};
use std::fmt;

/// One traceroute row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopRecord {
    /// 1-based hop number.
    pub hop: u8,
    /// The node reached.
    pub node: NodeId,
    /// Resolved rDNS name (or bare IP).
    pub name: String,
    /// IP address string.
    pub ip: String,
    /// Cumulative RTT to this hop, milliseconds.
    pub rtt_ms: f64,
    /// Geographic position of the hop.
    pub pos: GeoPoint,
}

/// A complete trace from source to destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Source position (the mobile node).
    pub src_pos: GeoPoint,
    /// Hop rows, destination last.
    pub hops: Vec<HopRecord>,
}

impl FlowTrace {
    /// Number of hops (the paper's Table I counts 10).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// End-to-end RTT: the last hop's cumulative RTT, ms.
    pub fn total_rtt_ms(&self) -> f64 {
        self.hops.last().map(|h| h.rtt_ms).unwrap_or(0.0)
    }

    /// Geographic polyline of the forward path (source + each hop).
    pub fn to_polyline(&self) -> Polyline {
        let mut pts = Vec::with_capacity(self.hops.len() + 1);
        pts.push(self.src_pos);
        pts.extend(self.hops.iter().map(|h| h.pos));
        Polyline::new(pts)
    }

    /// Total geographic distance travelled one-way, km (Figure 4's
    /// 2 544 km).
    pub fn route_km(&self) -> f64 {
        self.to_polyline().fibre_km()
    }

    /// Renders the trace as the paper's Table I ("Hop | Node").
    pub fn render_table(&self) -> String {
        let mut out = String::from("Hop  Node\n");
        for h in &self.hops {
            let display =
                if h.name == h.ip { h.ip.clone() } else { format!("{} [{}]", h.name, h.ip) };
            out.push_str(&format!("{:>3}  {display}\n", h.hop));
        }
        out
    }
}

impl fmt::Display for FlowTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> FlowTrace {
        let klu = GeoPoint::new(46.62, 14.30);
        let vie = GeoPoint::new(48.21, 16.37);
        FlowTrace {
            src_pos: klu,
            hops: vec![
                HopRecord {
                    hop: 1,
                    node: NodeId(1),
                    name: "10.12.128.1".into(),
                    ip: "10.12.128.1".into(),
                    rtt_ms: 18.0,
                    pos: klu,
                },
                HopRecord {
                    hop: 2,
                    node: NodeId(2),
                    name: "unn-37-19-223-61.datapacket.com".into(),
                    ip: "37.19.223.61".into(),
                    rtt_ms: 25.0,
                    pos: vie,
                },
            ],
        }
    }

    #[test]
    fn totals_and_counts() {
        let t = trace();
        assert_eq!(t.hop_count(), 2);
        assert_eq!(t.total_rtt_ms(), 25.0);
    }

    #[test]
    fn polyline_covers_route() {
        let t = trace();
        let km = t.route_km();
        assert!(km > 230.0 && km < 260.0, "got {km}");
    }

    #[test]
    fn table_rendering() {
        let t = trace();
        let s = t.render_table();
        assert!(s.contains("Hop  Node"));
        assert!(s.contains("  1  10.12.128.1\n"), "{s}");
        assert!(s.contains("unn-37-19-223-61.datapacket.com [37.19.223.61]"), "{s}");
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = FlowTrace { src_pos: GeoPoint::new(0.0, 0.0), hops: vec![] };
        assert_eq!(t.total_rtt_ms(), 0.0);
        assert_eq!(t.hop_count(), 0);
        assert_eq!(t.to_polyline().legs(), 0);
    }
}
