//! Ping and traceroute.
//!
//! [`Pinger`] reproduces the semantics of the RIPE Atlas built-in
//! measurements the paper uses: pure network RTT (no application
//! processing), policy-routed, with the radio access contribution added at
//! the UE side when the source is a mobile node.

use crate::latency::DelaySampler;
use crate::names::NameRegistry;
use crate::radio::AccessModel;
use crate::rng::SimRng;
use crate::routing::PathComputer;
use crate::trace::{FlowTrace, HopRecord};

/// ICMP echo payload size used by RIPE Atlas probes, bytes on the wire.
pub const PING_BYTES: u32 = 64;

/// Ping/traceroute instrument over a routed topology.
pub struct Pinger<'a> {
    pc: &'a PathComputer<'a>,
    names: &'a NameRegistry,
    city_code: &'a str,
}

impl<'a> Pinger<'a> {
    /// Creates an instrument. `city_code` seasons generated rDNS names.
    pub fn new(pc: &'a PathComputer<'a>, names: &'a NameRegistry, city_code: &'a str) -> Self {
        Self { pc, names, city_code }
    }

    /// One echo RTT in milliseconds, or `None` when policy yields no
    /// route. `access` contributes the air-interface RTT when the source
    /// is behind a radio access network.
    pub fn ping(
        &self,
        src: crate::topology::NodeId,
        dst: crate::topology::NodeId,
        access: Option<&dyn AccessModel>,
        rng: &mut SimRng,
    ) -> Option<f64> {
        let path = self.pc.route(src, dst)?;
        let sampler = DelaySampler::new(self.pc.topology());
        let wire = sampler.rtt_ms(&path.hops, PING_BYTES, rng);
        let air = access.map(|a| a.sample_rtt_ms(rng)).unwrap_or(0.0);
        Some(wire + air)
    }

    /// A full traceroute: one row per hop with cumulative RTT, like the
    /// real tool (each TTL probed independently, so later rows can show
    /// slightly smaller values on a lucky draw — we probe each TTL once
    /// and keep rows monotone by construction of cumulative sampling).
    pub fn traceroute(
        &self,
        src: crate::topology::NodeId,
        dst: crate::topology::NodeId,
        access: Option<&dyn AccessModel>,
        rng: &mut SimRng,
    ) -> Option<FlowTrace> {
        let path = self.pc.route(src, dst)?;
        let topo = self.pc.topology();
        let sampler = DelaySampler::new(topo);
        let air = access.map(|a| a.sample_rtt_ms(rng)).unwrap_or(0.0);

        let mut cumulative = air;
        let mut hops = Vec::with_capacity(path.hops.len());
        for (i, &(node, link)) in path.hops.iter().enumerate() {
            // Forward and reverse legs of this hop sampled independently.
            cumulative += sampler.hop_ms(link, node, PING_BYTES, rng)
                + sampler.hop_ms(link, node, PING_BYTES, rng);
            hops.push(HopRecord {
                hop: (i + 1) as u8,
                node,
                name: self.names.rdns(topo, node, self.city_code),
                ip: self.names.ip_string(topo, node),
                rtt_ms: cumulative,
                pos: topo.node(node).pos,
            });
        }
        Some(FlowTrace { src_pos: topo.node(src).pos, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::{FiveGAccess, WiredAccess};
    use crate::routing::AsGraph;
    use crate::stats::Welford;
    use crate::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
    use sixg_geo::GeoPoint;

    fn world() -> (Topology, AsGraph, NodeId, NodeId) {
        let mut t = Topology::new();
        let ue = t.add_node(NodeKind::UserEquipment, "ue", GeoPoint::new(46.61, 14.28), Asn(1));
        let gw = t.add_node(NodeKind::CoreRouter, "gw", GeoPoint::new(46.62, 14.29), Asn(1));
        let br = t.add_node(NodeKind::BorderRouter, "br", GeoPoint::new(48.2, 16.37), Asn(1));
        let peer = t.add_node(NodeKind::BorderRouter, "peer", GeoPoint::new(48.21, 16.38), Asn(2));
        let anchor = t.add_node(NodeKind::Anchor, "anchor", GeoPoint::new(46.62, 14.31), Asn(2));
        t.add_link(ue, gw, LinkParams::metro());
        t.add_link(gw, br, LinkParams::backbone());
        t.add_link(br, peer, LinkParams::transit_loaded());
        t.add_link(peer, anchor, LinkParams::backbone());
        let mut g = AsGraph::new();
        g.add_transit(Asn(2), Asn(1));
        (t, g, ue, anchor)
    }

    #[test]
    fn ping_produces_plausible_rtts() {
        let (t, g, ue, anchor) = world();
        let pc = PathComputer::new(&t, &g);
        let names = NameRegistry::new();
        let pinger = Pinger::new(&pc, &names, "klu");
        let mut rng = SimRng::from_seed(1);
        let mut w = Welford::new();
        for _ in 0..2000 {
            w.push(pinger.ping(ue, anchor, None, &mut rng).unwrap());
        }
        // Two Klagenfurt–Vienna legs out + back ≈ 4×1.2ms propagation plus
        // processing: mean must land in single-digit ms.
        assert!(w.mean() > 4.0 && w.mean() < 15.0, "mean {}", w.mean());
    }

    #[test]
    fn access_model_adds_latency() {
        let (t, g, ue, anchor) = world();
        let pc = PathComputer::new(&t, &g);
        let names = NameRegistry::new();
        let pinger = Pinger::new(&pc, &names, "klu");
        let fiveg = FiveGAccess::fit(40.0, 10.0);
        let mut rng = SimRng::from_seed(2);
        let mut wired = Welford::new();
        let mut mobile = Welford::new();
        for _ in 0..4000 {
            wired.push(pinger.ping(ue, anchor, Some(&WiredAccess::default()), &mut rng).unwrap());
            mobile.push(pinger.ping(ue, anchor, Some(&fiveg), &mut rng).unwrap());
        }
        assert!(mobile.mean() - wired.mean() > 30.0, "Δ {}", mobile.mean() - wired.mean());
    }

    #[test]
    fn traceroute_rows_are_monotone_and_complete() {
        let (t, g, ue, anchor) = world();
        let pc = PathComputer::new(&t, &g);
        let names = NameRegistry::new();
        let pinger = Pinger::new(&pc, &names, "klu");
        let mut rng = SimRng::from_seed(3);
        let trace = pinger.traceroute(ue, anchor, None, &mut rng).unwrap();
        assert_eq!(trace.hop_count(), 4);
        for w in trace.hops.windows(2) {
            assert!(w[1].rtt_ms > w[0].rtt_ms);
            assert_eq!(w[1].hop, w[0].hop + 1);
        }
        assert!(trace.total_rtt_ms() > 0.0);
    }

    #[test]
    fn unroutable_is_none() {
        let (t, _, ue, anchor) = world();
        let empty = AsGraph::new();
        let pc = PathComputer::new(&t, &empty);
        let names = NameRegistry::new();
        let pinger = Pinger::new(&pc, &names, "klu");
        let mut rng = SimRng::from_seed(4);
        assert!(pinger.ping(ue, anchor, None, &mut rng).is_none());
        assert!(pinger.traceroute(ue, anchor, None, &mut rng).is_none());
    }

    #[test]
    fn traceroute_deterministic_per_seed() {
        let (t, g, ue, anchor) = world();
        let pc = PathComputer::new(&t, &g);
        let names = NameRegistry::new();
        let pinger = Pinger::new(&pc, &names, "klu");
        let a = pinger.traceroute(ue, anchor, None, &mut SimRng::from_seed(5)).unwrap();
        let b = pinger.traceroute(ue, anchor, None, &mut SimRng::from_seed(5)).unwrap();
        assert_eq!(a, b);
    }
}
