//! Protocol layers above the raw path model.
//!
//! * [`icmp`] — ping and traceroute, the instruments of the paper's
//!   measurement campaign;
//! * [`transport`] — a windowed reliable transport simulated on the event
//!   engine, used by the video/AR workloads;
//! * [`iot`] — application-protocol overhead models (MQTT / AMQP / CoAP),
//!   quantifying the paper's "extra 5–8 ms" (Section III-A).

pub mod icmp;
pub mod iot;
pub mod transport;

pub use icmp::Pinger;
pub use iot::IotProtocol;
pub use transport::{transfer, TransferConfig, TransferStats};
