//! IoT application-protocol overhead models.
//!
//! Section III-A of the paper: "minimizing delays in IoT protocols like
//! MQTT, AMQP, and CoAP, which contribute an extra 5–8 milliseconds, will
//! be essential for achieving user-perceived latency below 16 ms".
//!
//! Each protocol's overhead is decomposed into serialisation, broker /
//! server processing, and acknowledgement handling, with means placed so
//! the totals land in the published 5–8 ms band.

use crate::dist::{LogNormal, Sample};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// IoT messaging protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IotProtocol {
    /// MQTT over TCP via a broker.
    Mqtt,
    /// AMQP 0-9-1 via a broker with heavier framing.
    Amqp,
    /// CoAP over UDP, no broker.
    Coap,
}

/// Quality-of-service level (affects acknowledgement round trips).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosLevel {
    /// Fire and forget (MQTT QoS 0 / CoAP non-confirmable).
    AtMostOnce,
    /// One acknowledgement (MQTT QoS 1 / CoAP confirmable).
    AtLeastOnce,
    /// Two-phase handshake (MQTT QoS 2).
    ExactlyOnce,
}

/// Overhead components in milliseconds (means of lognormals, cv 0.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadProfile {
    /// Client-side packing/framing.
    pub serialisation_ms: f64,
    /// Broker or server processing (0 for brokerless CoAP... it still
    /// parses, just less).
    pub broker_ms: f64,
    /// Acknowledgement processing per ack round.
    pub ack_ms: f64,
}

impl IotProtocol {
    /// All protocols.
    pub const ALL: [IotProtocol; 3] = [IotProtocol::Mqtt, IotProtocol::Amqp, IotProtocol::Coap];

    /// The protocol's overhead profile.
    pub fn profile(self) -> OverheadProfile {
        match self {
            // Totals at AtLeastOnce: 0.9+4.3+1.6 = 6.8 ms
            IotProtocol::Mqtt => {
                OverheadProfile { serialisation_ms: 0.9, broker_ms: 4.3, ack_ms: 1.6 }
            }
            // 1.2+4.9+1.7 = 7.8 ms — heavier framing/exchange model.
            IotProtocol::Amqp => {
                OverheadProfile { serialisation_ms: 1.2, broker_ms: 4.9, ack_ms: 1.7 }
            }
            // 0.5+3.6+1.1 = 5.2 ms — lean UDP encoding, server-side parse.
            IotProtocol::Coap => {
                OverheadProfile { serialisation_ms: 0.5, broker_ms: 3.6, ack_ms: 1.1 }
            }
        }
    }

    /// Mean protocol overhead at a QoS level, ms (excludes network RTT).
    pub fn mean_overhead_ms(self, qos: QosLevel) -> f64 {
        let p = self.profile();
        let acks = match qos {
            QosLevel::AtMostOnce => 0.0,
            QosLevel::AtLeastOnce => 1.0,
            QosLevel::ExactlyOnce => 2.0,
        };
        p.serialisation_ms + p.broker_ms + acks * p.ack_ms
    }

    /// Samples the protocol overhead, ms.
    pub fn sample_overhead_ms(self, qos: QosLevel, rng: &mut SimRng) -> f64 {
        let p = self.profile();
        let mut total = LogNormal::from_mean_cv(p.serialisation_ms, 0.2).sample(rng)
            + LogNormal::from_mean_cv(p.broker_ms, 0.2).sample(rng);
        let acks = match qos {
            QosLevel::AtMostOnce => 0,
            QosLevel::AtLeastOnce => 1,
            QosLevel::ExactlyOnce => 2,
        };
        for _ in 0..acks {
            total += LogNormal::from_mean_cv(p.ack_ms, 0.2).sample(rng);
        }
        total
    }

    /// End-to-end publish latency: one network RTT per ack round (at
    /// least one for the data leg) plus protocol overhead, ms.
    pub fn publish_latency_ms(self, network_rtt_ms: f64, qos: QosLevel, rng: &mut SimRng) -> f64 {
        let rounds = match qos {
            QosLevel::AtMostOnce => 0.5, // one-way data only
            QosLevel::AtLeastOnce => 1.0,
            QosLevel::ExactlyOnce => 2.0,
        };
        network_rtt_ms * rounds + self.sample_overhead_ms(qos, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    #[test]
    fn overheads_land_in_paper_band() {
        // Section III-A: 5–8 ms extra at the standard reliability level.
        for p in IotProtocol::ALL {
            let m = p.mean_overhead_ms(QosLevel::AtLeastOnce);
            assert!((5.0..=8.0).contains(&m), "{p:?}: {m}");
        }
    }

    #[test]
    fn sampled_mean_matches_analytic() {
        let mut rng = SimRng::from_seed(11);
        for p in IotProtocol::ALL {
            let mut w = Welford::new();
            for _ in 0..50_000 {
                w.push(p.sample_overhead_ms(QosLevel::AtLeastOnce, &mut rng));
            }
            let m = p.mean_overhead_ms(QosLevel::AtLeastOnce);
            assert!((w.mean() - m).abs() < 0.1, "{p:?}: {} vs {m}", w.mean());
        }
    }

    #[test]
    fn qos_ordering() {
        let p = IotProtocol::Mqtt;
        assert!(
            p.mean_overhead_ms(QosLevel::AtMostOnce) < p.mean_overhead_ms(QosLevel::AtLeastOnce)
        );
        assert!(
            p.mean_overhead_ms(QosLevel::AtLeastOnce) < p.mean_overhead_ms(QosLevel::ExactlyOnce)
        );
    }

    #[test]
    fn coap_is_leanest_amqp_heaviest() {
        let at_least = |p: IotProtocol| p.mean_overhead_ms(QosLevel::AtLeastOnce);
        assert!(at_least(IotProtocol::Coap) < at_least(IotProtocol::Mqtt));
        assert!(at_least(IotProtocol::Mqtt) < at_least(IotProtocol::Amqp));
    }

    #[test]
    fn publish_latency_scales_with_rtt() {
        let mut rng = SimRng::from_seed(12);
        let mut w_fast = Welford::new();
        let mut w_slow = Welford::new();
        for _ in 0..20_000 {
            w_fast.push(IotProtocol::Mqtt.publish_latency_ms(5.0, QosLevel::AtLeastOnce, &mut rng));
            w_slow.push(IotProtocol::Mqtt.publish_latency_ms(
                60.0,
                QosLevel::AtLeastOnce,
                &mut rng,
            ));
        }
        assert!((w_slow.mean() - w_fast.mean() - 55.0).abs() < 0.5);
    }

    #[test]
    fn exactly_once_pays_two_rtts() {
        let mut rng = SimRng::from_seed(13);
        let mut q1 = Welford::new();
        let mut q2 = Welford::new();
        for _ in 0..20_000 {
            q1.push(IotProtocol::Coap.publish_latency_ms(20.0, QosLevel::AtLeastOnce, &mut rng));
            q2.push(IotProtocol::Coap.publish_latency_ms(20.0, QosLevel::ExactlyOnce, &mut rng));
        }
        assert!(q2.mean() - q1.mean() > 19.0);
    }
}
