//! A windowed reliable transport on the event engine.
//!
//! Deliberately simpler than TCP (fixed window, fixed RTO, no congestion
//! control) — enough to move video frames and sensor batches with
//! realistic serialisation, loss recovery and throughput behaviour, while
//! keeping the model auditable.

use crate::engine::Engine;
use crate::latency::DelaySampler;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, Topology};

/// Transfer parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Total application bytes to move.
    pub bytes: u64,
    /// Segment payload size, bytes.
    pub segment_bytes: u32,
    /// Per-segment header overhead, bytes.
    pub header_bytes: u32,
    /// Sliding-window size in segments.
    pub window: usize,
    /// Independent per-segment loss probability.
    pub loss_prob: f64,
    /// Retransmission timeout.
    pub rto: SimDuration,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            bytes: 1_000_000,
            segment_bytes: 1200,
            header_bytes: 50,
            window: 32,
            loss_prob: 0.0,
            rto: SimDuration::from_millis(200),
        }
    }
}

/// Transfer outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Wall-clock duration of the transfer.
    pub duration: SimDuration,
    /// Goodput in bits per second (application bytes only).
    pub goodput_bps: f64,
    /// Number of segment transmissions including retransmissions.
    pub transmissions: u64,
    /// Number of retransmissions.
    pub retransmissions: u64,
}

struct World {
    acked: Vec<bool>,
    acked_count: usize,
    inflight: usize,
    next_unsent: usize,
    transmissions: u64,
    retransmissions: u64,
    finished_at: Option<SimTime>,
    rng: SimRng,
}

/// Runs one reliable transfer over `hops` and reports statistics.
///
/// The forward direction carries data segments; ACKs ride the same hops in
/// reverse. Loss applies to data segments only (ACK loss folds into the
/// same probability in this abstraction).
pub fn transfer(
    topo: &Topology,
    hops: &[(NodeId, LinkId)],
    config: TransferConfig,
    seed: u64,
) -> TransferStats {
    assert!(config.window > 0, "window must be positive");
    assert!(config.segment_bytes > 0, "segments must be non-empty");
    assert!((0.0..1.0).contains(&config.loss_prob), "loss probability must be in [0,1)");
    let nseg = config.bytes.div_ceil(config.segment_bytes as u64) as usize;
    let hops_owned: std::sync::Arc<Vec<(NodeId, LinkId)>> = std::sync::Arc::new(hops.to_vec());
    let topo = std::sync::Arc::new(topo.clone());
    let mut eng: Engine<World> = Engine::new();
    let mut world = World {
        acked: vec![false; nseg],
        acked_count: 0,
        inflight: 0,
        next_unsent: 0,
        transmissions: 0,
        retransmissions: 0,
        finished_at: None,
        rng: SimRng::from_seed(seed),
    };

    let wire = config.segment_bytes + config.header_bytes;

    #[allow(clippy::too_many_arguments)] // internal helper mirroring the event's full context
    fn send_segment(
        eng: &mut Engine<World>,
        w: &mut World,
        topo: &std::sync::Arc<Topology>,
        hops: &std::sync::Arc<Vec<(NodeId, LinkId)>>,
        config: &TransferConfig,
        wire: u32,
        seg: usize,
        is_retx: bool,
    ) {
        w.transmissions += 1;
        if is_retx {
            w.retransmissions += 1;
        }
        w.inflight += 1;
        let sampler = DelaySampler::new(topo);
        let lost = w.rng.chance(config.loss_prob);
        let fwd = sampler.one_way(hops, wire, &mut w.rng);
        let ack_delay = fwd + sampler.one_way(hops, 40, &mut w.rng);
        let arrival = if lost { config.rto } else { ack_delay.min(config.rto) };
        // One event models ACK arrival (or timeout when lost / late).
        let topo = topo.clone();
        let hops = hops.clone();
        let config = *config;
        eng.schedule(arrival, move |eng, w| {
            w.inflight -= 1;
            if !lost && !w.acked[seg] {
                w.acked[seg] = true;
                w.acked_count += 1;
                if w.acked_count == w.acked.len() {
                    w.finished_at = Some(eng.now());
                    return;
                }
            }
            pump(eng, w, &topo, &hops, &config, wire);
            if lost && !w.acked[seg] {
                send_segment(eng, w, &topo, &hops, &config, wire, seg, true);
            }
        });
    }

    fn pump(
        eng: &mut Engine<World>,
        w: &mut World,
        topo: &std::sync::Arc<Topology>,
        hops: &std::sync::Arc<Vec<(NodeId, LinkId)>>,
        config: &TransferConfig,
        wire: u32,
    ) {
        while w.inflight < config.window && w.next_unsent < w.acked.len() {
            let seg = w.next_unsent;
            w.next_unsent += 1;
            send_segment(eng, w, topo, hops, config, wire, seg, false);
        }
    }

    {
        let hops = hops_owned.clone();
        let topo2 = topo.clone();
        eng.schedule(SimDuration::ZERO, move |eng, w| {
            pump(eng, w, &topo2, &hops, &config, wire);
        });
    }
    eng.run(&mut world);

    let finished = world.finished_at.expect("transfer did not complete");
    let duration = finished.since(SimTime::ZERO);
    let secs = duration.as_secs_f64().max(1e-12);
    TransferStats {
        duration,
        goodput_bps: config.bytes as f64 * 8.0 / secs,
        transmissions: world.transmissions,
        retransmissions: world.retransmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{AsGraph, PathComputer};
    use crate::topology::{Asn, LinkParams, NodeKind};
    use sixg_geo::GeoPoint;

    fn path() -> (Topology, Vec<(NodeId, LinkId)>) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a", GeoPoint::new(46.6, 14.3), Asn(1));
        let b = t.add_node(NodeKind::CoreRouter, "b", GeoPoint::new(47.0, 15.4), Asn(1));
        let c = t.add_node(NodeKind::Server, "c", GeoPoint::new(48.2, 16.4), Asn(1));
        t.add_link(a, b, LinkParams::metro());
        t.add_link(b, c, LinkParams::metro());
        let g = AsGraph::new();
        let pc = PathComputer::new(&t, &g);
        let hops = pc.route(a, c).unwrap().hops;
        (t.clone(), hops)
    }

    #[test]
    fn lossless_transfer_completes_quickly() {
        let (t, hops) = path();
        let stats = transfer(&t, &hops, TransferConfig::default(), 1);
        assert_eq!(stats.retransmissions, 0);
        let nseg = 1_000_000u64.div_ceil(1200);
        assert_eq!(stats.transmissions, nseg);
        assert!(stats.goodput_bps > 1e6, "goodput {}", stats.goodput_bps);
    }

    #[test]
    fn loss_causes_retransmissions_and_slowdown() {
        let (t, hops) = path();
        let clean = transfer(&t, &hops, TransferConfig::default(), 2);
        let lossy =
            transfer(&t, &hops, TransferConfig { loss_prob: 0.05, ..TransferConfig::default() }, 2);
        assert!(lossy.retransmissions > 0);
        assert!(lossy.duration > clean.duration);
        assert!(lossy.goodput_bps < clean.goodput_bps);
    }

    #[test]
    fn bigger_window_is_faster() {
        let (t, hops) = path();
        let small =
            transfer(&t, &hops, TransferConfig { window: 2, ..TransferConfig::default() }, 3);
        let large =
            transfer(&t, &hops, TransferConfig { window: 64, ..TransferConfig::default() }, 3);
        assert!(
            large.goodput_bps > 2.0 * small.goodput_bps,
            "large {} vs small {}",
            large.goodput_bps,
            small.goodput_bps
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (t, hops) = path();
        let cfg = TransferConfig { loss_prob: 0.02, ..TransferConfig::default() };
        let a = transfer(&t, &hops, cfg, 9);
        let b = transfer(&t, &hops, cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_transfer_single_segment() {
        let (t, hops) = path();
        let stats =
            transfer(&t, &hops, TransferConfig { bytes: 100, ..TransferConfig::default() }, 4);
        assert_eq!(stats.transmissions, 1);
    }
}
