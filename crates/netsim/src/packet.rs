//! Packets and flows.

use crate::time::SimTime;
use crate::topology::NodeId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Default MTU-sized packet used for queueing-service-rate conversion.
pub const MEAN_PACKET_BYTES: f64 = 1250.0;

/// Identifier of an application flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// Kind of payload a packet carries (used for slicing/QoS decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Latency-critical control (AR pose updates, V2X safety, haptics).
    Critical,
    /// Interactive media (video frames with deadlines).
    Interactive,
    /// Bulk transfer (model downloads, sensor batch upload).
    Bulk,
    /// Network management / measurement probes.
    Management,
}

/// A simulated packet.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Remaining hop budget; hop processing decrements it.
    pub ttl: u8,
    /// QoS class.
    pub class: TrafficClass,
    /// Creation timestamp.
    pub created: SimTime,
    /// Opaque payload (zero-copy shared).
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet with the default TTL of 64.
    pub fn new(
        flow: FlowId,
        seq: u64,
        src: NodeId,
        dst: NodeId,
        size_bytes: u32,
        class: TrafficClass,
        created: SimTime,
    ) -> Self {
        Self { flow, seq, src, dst, size_bytes, ttl: 64, class, created, payload: Bytes::new() }
    }

    /// Attaches a payload, adjusting the wire size to `headers + payload`.
    #[must_use]
    pub fn with_payload(mut self, payload: Bytes, header_bytes: u32) -> Self {
        self.size_bytes = header_bytes + payload.len() as u32;
        self.payload = payload;
        self
    }

    /// Serialisation time on a link of `bandwidth_bps`, seconds.
    pub fn transmission_s(&self, bandwidth_bps: f64) -> f64 {
        (self.size_bytes as f64 * 8.0) / bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time() {
        let p = Packet::new(
            FlowId(1),
            0,
            NodeId(0),
            NodeId(1),
            1250,
            TrafficClass::Bulk,
            SimTime::ZERO,
        );
        // 1250 B = 10 kbit on a 10 Mbit/s link => 1 ms.
        let t = p.transmission_s(10e6);
        assert!((t - 0.001).abs() < 1e-12);
    }

    #[test]
    fn payload_adjusts_size() {
        let p = Packet::new(
            FlowId(1),
            0,
            NodeId(0),
            NodeId(1),
            0,
            TrafficClass::Interactive,
            SimTime::ZERO,
        )
        .with_payload(Bytes::from(vec![0u8; 1000]), 40);
        assert_eq!(p.size_bytes, 1040);
        assert_eq!(p.payload.len(), 1000);
    }

    #[test]
    fn default_ttl() {
        let p = Packet::new(
            FlowId(9),
            3,
            NodeId(0),
            NodeId(1),
            100,
            TrafficClass::Critical,
            SimTime::ZERO,
        );
        assert_eq!(p.ttl, 64);
    }
}
