//! # sixg-netsim — packet-level network simulator
//!
//! This crate is the workhorse substrate of the `sixg` workspace: a
//! deterministic, seedable simulator of the infrastructure measured in
//! *6G Infrastructures for Edge AI* (Horvath et al., IPPS 2025).
//!
//! It contains two complementary execution models that share one topology:
//!
//! 1. **A discrete-event engine** ([`engine`]) for workload simulation —
//!    video streams, AR gaming service chains, transport protocols — where
//!    per-packet ordering matters.
//! 2. **An analytic path sampler** ([`latency`]) for measurement campaigns
//!    — RIPE-Atlas-style pings across thousands of (cell × peer ×
//!    repetition) combinations — where per-sample distributions matter and
//!    event-by-event simulation would be needlessly slow. The sampler uses
//!    the same per-hop building blocks (propagation, transmission, M/M/1
//!    queueing, processing) that the engine's links implement.
//!
//! Modules:
//!
//! * [`time`] — nanosecond simulation time;
//! * [`engine`] — deterministic event queue and scheduler;
//! * [`rng`] + [`dist`] — splittable deterministic randomness and
//!   hand-rolled distributions (normal, lognormal, exponential, Pareto,
//!   Weibull, empirical mixtures);
//! * [`topology`] — nodes (UE, gNB, UPF, routers, IXPs, clouds), links,
//!   autonomous systems, and a builder;
//! * [`routing`] — intra-AS Dijkstra and inter-AS BGP with Gao–Rexford
//!   business relationships and valley-free export (this is what makes the
//!   Vienna→Prague→Bucharest detour of the paper's Figure 4 *emerge*);
//! * [`latency`] — per-hop delay decomposition and end-to-end sampling;
//! * [`radio`] — access-network models: wired, 5G NR (scheduling/HARQ),
//!   5G mmWave PHY (calibrated to Fezeu et al.), and 6G targets;
//! * [`protocols`] — ICMP ping/traceroute, a reliable transport, and IoT
//!   messaging overhead models (MQTT/AMQP/CoAP, the paper's 5–8 ms);
//! * [`queueing`] — analytic M/M/1 / M/D/1 / M/G/1 results used to verify
//!   the sampled queues;
//! * [`stats`] — Welford statistics, histograms, percentiles;
//! * [`names`] — synthetic IPv4 + reverse-DNS naming so traceroutes render
//!   like the paper's Table I;
//! * [`trace`] — hop-by-hop flow traces and their geographic projection.

pub mod dist;
pub mod engine;
pub mod latency;
pub mod names;
pub mod packet;
pub mod protocols;
pub mod queueing;
pub mod radio;
pub mod rng;
pub mod routing;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::Engine;
pub use packet::Packet;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use topology::{LinkId, NodeId, NodeKind, Topology};
