//! Network topology: nodes, links, autonomous systems.
//!
//! The topology is a flat undirected multigraph of typed nodes. Each node
//! belongs to an autonomous system ([`Asn`]); inter-AS edges are the only
//! places where BGP policy (see [`crate::routing::bgp`]) applies.

use serde::{Deserialize, Serialize};
use sixg_geo::GeoPoint;
use std::fmt;

/// Node identifier (index into [`Topology::nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Link identifier (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The role a node plays in the infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// User equipment: phone, AR headset, vehicle OBU.
    UserEquipment,
    /// 5G/6G base station (gNB) with its distributed unit.
    GnB,
    /// User Plane Function — the 3GPP data-plane anchor. Where these sit
    /// relative to the edge is the subject of the paper's Section V-B.
    Upf,
    /// Edge compute host (MEC server).
    EdgeServer,
    /// Operator-core or transit router.
    CoreRouter,
    /// AS border router (eBGP speaker).
    BorderRouter,
    /// Internet exchange point switch fabric.
    Ixp,
    /// Public-cloud data centre.
    CloudDc,
    /// Measurement anchor (the RIPE-Atlas probe at the university).
    Anchor,
    /// Application/broker server (MQTT broker, game service host…).
    Server,
}

impl NodeKind {
    /// Mean per-packet forwarding delay for this node class, milliseconds.
    ///
    /// These are the baseline processing figures the latency decomposition
    /// uses; links add queueing on top.
    pub fn base_processing_ms(self) -> f64 {
        match self {
            NodeKind::UserEquipment => 0.3,
            NodeKind::GnB => 0.5,
            NodeKind::Upf => 0.25,
            NodeKind::EdgeServer => 0.2,
            NodeKind::CoreRouter => 0.4,
            NodeKind::BorderRouter => 0.6,
            NodeKind::Ixp => 0.1,
            NodeKind::CloudDc => 0.3,
            NodeKind::Anchor => 0.2,
            NodeKind::Server => 0.2,
        }
    }
}

/// A network node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Role.
    pub kind: NodeKind,
    /// Human-readable name (`"upf-klu-1"`).
    pub name: String,
    /// Geographic position (drives propagation delay).
    pub pos: GeoPoint,
    /// Owning autonomous system.
    pub asn: Asn,
}

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// Background utilisation ρ ∈ [0, 1) from cross traffic; drives the
    /// sampled M/M/1 queueing wait.
    pub utilisation: f64,
    /// Extra fixed latency (tunnelling, middleboxes), milliseconds.
    pub extra_ms: f64,
}

impl LinkParams {
    /// 10 Gbit/s lightly loaded backbone fibre.
    pub fn backbone() -> Self {
        Self { bandwidth_bps: 10e9, utilisation: 0.30, extra_ms: 0.0 }
    }

    /// 1 Gbit/s metro/aggregation link.
    pub fn metro() -> Self {
        Self { bandwidth_bps: 1e9, utilisation: 0.40, extra_ms: 0.0 }
    }

    /// Access-side wired link (FTTH / campus ethernet).
    pub fn access_wired() -> Self {
        Self { bandwidth_bps: 1e9, utilisation: 0.20, extra_ms: 0.0 }
    }

    /// Loaded public-internet transit link — the paper's RTL analysis
    /// attributes most delay to these.
    pub fn transit_loaded() -> Self {
        Self { bandwidth_bps: 10e9, utilisation: 0.65, extra_ms: 0.5 }
    }
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Parameters.
    pub params: LinkParams,
}

impl Link {
    /// The endpoint opposite to `n`. Panics when `n` is not an endpoint.
    pub fn opposite(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} not on link {:?}", self.id)
        }
    }
}

/// The network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        name: impl Into<String>,
        pos: GeoPoint,
        asn: Asn,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, name: name.into(), pos, asn });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link and returns its id. Panics on self-loops or
    /// out-of-range endpoints.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert!(a != b, "self-loop on {a:?}");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        assert!(
            (0.0..1.0).contains(&params.utilisation),
            "utilisation must be in [0,1): {}",
            params.utilisation
        );
        assert!(params.bandwidth_bps > 0.0, "bandwidth must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { id, a, b, params });
        self.adjacency[a.0 as usize].push((b, id));
        self.adjacency[b.0 as usize].push((a, id));
        id
    }

    /// Removes a link (used by recommendation engines exploring topology
    /// changes). O(degree).
    pub fn remove_link(&mut self, id: LinkId) {
        let link = self.links[id.0 as usize].clone();
        self.adjacency[link.a.0 as usize].retain(|(_, l)| *l != id);
        self.adjacency[link.b.0 as usize].retain(|(_, l)| *l != id);
        // Keep the vec slot (ids are stable) but mark by zero-capacity is
        // ugly; instead we tombstone by pointing the link at itself via a
        // sentinel flag in params.
        self.links[id.0 as usize].params.bandwidth_bps = f64::NAN;
    }

    /// True when a link has been removed.
    pub fn link_removed(&self, id: LinkId) -> bool {
        self.links[id.0 as usize].params.bandwidth_bps.is_nan()
    }

    /// Restores a previously removed link with fresh parameters (fault
    /// schedules recover links mid-campaign). Panics if the link is live
    /// or the parameters are invalid. Adjacency entries are re-inserted at
    /// their id-sorted position, so a remove/restore round trip leaves the
    /// adjacency lists — and every iteration order derived from them —
    /// exactly as built.
    pub fn restore_link(&mut self, id: LinkId, params: LinkParams) {
        assert!(self.link_removed(id), "link {id:?} is not removed");
        assert!(
            (0.0..1.0).contains(&params.utilisation),
            "utilisation must be in [0,1): {}",
            params.utilisation
        );
        assert!(params.bandwidth_bps > 0.0, "bandwidth must be positive");
        let (a, b) = {
            let l = &self.links[id.0 as usize];
            (l.a, l.b)
        };
        self.links[id.0 as usize].params = params;
        for (from, to) in [(a, b), (b, a)] {
            let adj = &mut self.adjacency[from.0 as usize];
            let pos = adj.partition_point(|&(_, l)| l < id);
            adj.insert(pos, (to, id));
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable link accessor (load adjustments, slicing reservations).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links (including tombstones; filter with [`Self::link_removed`]).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbours of `n` as `(neighbour, via-link)` pairs, skipping
    /// removed links.
    pub fn neighbours(&self, n: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adjacency[n.0 as usize].iter().copied().filter(|(_, l)| !self.link_removed(*l))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live links.
    pub fn link_count(&self) -> usize {
        self.links.iter().filter(|l| !l.params.bandwidth_bps.is_nan()).count()
    }

    /// Great-circle length of a link, km.
    pub fn link_km(&self, id: LinkId) -> f64 {
        let l = self.link(id);
        self.node(l.a).pos.distance_km(self.node(l.b).pos)
    }

    /// All nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.kind == kind).map(|n| n.id).collect()
    }

    /// All nodes in an AS.
    pub fn nodes_in_as(&self, asn: Asn) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.asn == asn).map(|n| n.id).collect()
    }

    /// First node with the given name, if any.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Distinct ASNs present, sorted.
    pub fn asns(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.nodes.iter().map(|n| n.asn).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Links whose endpoints are in different ASes.
    pub fn inter_as_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| !l.params.bandwidth_bps.is_nan())
            .filter(|l| self.node(l.a).asn != self.node(l.b).asn)
            .map(|l| l.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    fn tiny() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::UserEquipment, "ue", p(46.6, 14.3), Asn(100));
        let b = t.add_node(NodeKind::GnB, "gnb", p(46.61, 14.31), Asn(100));
        let c = t.add_node(NodeKind::CoreRouter, "core", p(48.2, 16.4), Asn(200));
        t.add_link(a, b, LinkParams::access_wired());
        t.add_link(b, c, LinkParams::backbone());
        (t, a, b, c)
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (t, a, b, c) = tiny();
        assert_eq!(t.neighbours(a).count(), 1);
        assert_eq!(t.neighbours(b).count(), 2);
        assert_eq!(t.neighbours(c).count(), 1);
        let (nb, _) = t.neighbours(a).next().unwrap();
        assert_eq!(nb, b);
    }

    #[test]
    fn inter_as_links_detected() {
        let (t, _, _, _) = tiny();
        assert_eq!(t.inter_as_links().len(), 1);
        assert_eq!(t.asns(), vec![Asn(100), Asn(200)]);
    }

    #[test]
    fn remove_link_tombstones() {
        let (mut t, _, b, c) = tiny();
        let id = t.neighbours(b).find(|(n, _)| *n == c).unwrap().1;
        t.remove_link(id);
        assert!(t.link_removed(id));
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.neighbours(b).count(), 1);
    }

    #[test]
    fn restore_link_round_trips_adjacency_order() {
        let (mut t, a, b, c) = tiny();
        let before: Vec<Vec<(NodeId, LinkId)>> =
            [a, b, c].iter().map(|n| t.neighbours(*n).collect()).collect();
        let id = t.neighbours(b).find(|(n, _)| *n == c).unwrap().1;
        let params = t.link(id).params;
        t.remove_link(id);
        assert!(t.link_removed(id));
        t.restore_link(id, params);
        assert!(!t.link_removed(id));
        assert_eq!(t.link_count(), 2);
        let after: Vec<Vec<(NodeId, LinkId)>> =
            [a, b, c].iter().map(|n| t.neighbours(*n).collect()).collect();
        assert_eq!(before, after, "adjacency order must survive a flap");
    }

    #[test]
    #[should_panic(expected = "not removed")]
    fn restoring_live_link_panics() {
        let (mut t, _, b, c) = tiny();
        let id = t.neighbours(b).find(|(n, _)| *n == c).unwrap().1;
        let params = t.link(id).params;
        t.restore_link(id, params);
    }

    #[test]
    fn link_km_positive() {
        let (t, _, _, _) = tiny();
        let backbone = t.inter_as_links()[0];
        let km = t.link_km(backbone);
        assert!(km > 200.0 && km < 300.0, "got {km}");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "s", p(0.0, 0.0), Asn(1));
        t.add_link(a, a, LinkParams::metro());
    }

    #[test]
    #[should_panic(expected = "utilisation")]
    fn full_utilisation_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "s", p(0.0, 0.0), Asn(1));
        let b = t.add_node(NodeKind::Server, "t", p(1.0, 1.0), Asn(1));
        t.add_link(a, b, LinkParams { bandwidth_bps: 1e9, utilisation: 1.0, extra_ms: 0.0 });
    }

    #[test]
    fn lookup_helpers() {
        let (t, a, _, _) = tiny();
        assert_eq!(t.find_by_name("ue"), Some(a));
        assert_eq!(t.find_by_name("nope"), None);
        assert_eq!(t.nodes_of_kind(NodeKind::GnB).len(), 1);
        assert_eq!(t.nodes_in_as(Asn(100)).len(), 2);
    }

    #[test]
    fn opposite_endpoint() {
        let (t, a, b, _) = tiny();
        let (_, l) = t.neighbours(a).next().unwrap();
        assert_eq!(t.link(l).opposite(a), b);
        assert_eq!(t.link(l).opposite(b), a);
    }
}
