//! Synthetic IPv4 addressing and reverse-DNS naming.
//!
//! Table I of the paper is a traceroute whose rows are rDNS names like
//! `vl204.vie-itx1-core-2.cdn77.com` and `zetservers.peering.cz`. To render
//! our simulated traceroutes the same way, every AS gets an *organisation
//! profile* (domain + naming style) and every node gets a deterministic
//! IPv4 address derived from its AS prefix and node id. Scenario builders
//! may also pin exact names/IPs per node (used for the Table I
//! reproduction).

use crate::topology::{Asn, NodeId, NodeKind, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Naming style of an organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameStyle {
    /// `unn-<ip-dashed>.<domain>` (CDN/transit style, e.g. DataPacket).
    IpEmbedded,
    /// `vl<n>.<city>-itx1-core-<i>.<domain>` (core-router style).
    CoreRouter,
    /// `ae<k>-<m>.mx204-<i>.ix.<city>.<cc>.as<asn>.net` (IX router style).
    IxRouter,
    /// `<label>.<domain>` with a stable label (peering fabric style).
    PlainHost,
    /// Reverse-octet style `003-228-016-195.<domain>` (access ISP style).
    ReverseOctets,
    /// No PTR record: traceroute shows the bare IP.
    Unresolved,
}

/// Per-AS organisation profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgProfile {
    /// Registered domain (`cdn77.com`).
    pub domain: String,
    /// Country code used by some styles (`at`).
    pub cc: String,
    /// Naming style.
    pub style: NameStyle,
    /// First octet /8-ish of the org's address space.
    pub prefix: [u8; 2],
}

/// Registry resolving nodes to IPs and rDNS names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameRegistry {
    orgs: BTreeMap<u32, OrgProfile>,
    pinned_ip: BTreeMap<u32, [u8; 4]>,
    pinned_name: BTreeMap<u32, String>,
}

impl NameRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organisation profile for an AS.
    pub fn register_org(&mut self, asn: Asn, profile: OrgProfile) {
        self.orgs.insert(asn.0, profile);
    }

    /// Pins an exact IP for a node (overrides derivation).
    pub fn pin_ip(&mut self, node: NodeId, ip: [u8; 4]) {
        self.pinned_ip.insert(node.0, ip);
    }

    /// Pins an exact rDNS name for a node (overrides the style engine).
    pub fn pin_name(&mut self, node: NodeId, name: impl Into<String>) {
        self.pinned_name.insert(node.0, name.into());
    }

    /// IPv4 address of a node.
    ///
    /// UEs live in RFC1918 space (`10.x`); everything else derives from
    /// the org prefix and the node id.
    pub fn ip(&self, topo: &Topology, node: NodeId) -> [u8; 4] {
        if let Some(ip) = self.pinned_ip.get(&node.0) {
            return *ip;
        }
        let n = topo.node(node);
        if n.kind == NodeKind::UserEquipment {
            return [10, (node.0 >> 8) as u8 | 12, 128 | (node.0 as u8 & 0x7f), 1];
        }
        let prefix = self
            .orgs
            .get(&n.asn.0)
            .map(|o| o.prefix)
            .unwrap_or([(193 + (n.asn.0 % 5)) as u8, (n.asn.0 >> 3) as u8]);
        [prefix[0], prefix[1], (137 + node.0 * 7 % 100) as u8, (1 + node.0 * 13 % 250) as u8]
    }

    /// Dotted-quad string.
    pub fn ip_string(&self, topo: &Topology, node: NodeId) -> String {
        let [a, b, c, d] = self.ip(topo, node);
        format!("{a}.{b}.{c}.{d}")
    }

    /// Reverse-DNS name, or the bare IP when unresolved.
    pub fn rdns(&self, topo: &Topology, node: NodeId, city_code: &str) -> String {
        if let Some(name) = self.pinned_name.get(&node.0) {
            return name.clone();
        }
        let n = topo.node(node);
        let ip = self.ip(topo, node);
        if n.kind == NodeKind::UserEquipment {
            return format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]);
        }
        let Some(org) = self.orgs.get(&n.asn.0) else {
            return format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]);
        };
        match org.style {
            NameStyle::IpEmbedded => {
                format!("unn-{}-{}-{}-{}.{}", ip[0], ip[1], ip[2], ip[3], org.domain)
            }
            NameStyle::CoreRouter => format!(
                "vl{}.{}-itx1-core-{}.{}",
                200 + node.0 % 16,
                city_code,
                1 + node.0 % 4,
                org.domain
            ),
            NameStyle::IxRouter => format!(
                "ae{}-{}.mx204-{}.ix.{}.{}.as{}.net",
                node.0 % 4,
                90 + node.0 % 10,
                1 + node.0 % 2,
                city_code,
                org.cc,
                n.asn.0
            ),
            NameStyle::PlainHost => {
                let label = n.name.split('-').next().unwrap_or("host");
                format!("{label}.{}", org.domain)
            }
            NameStyle::ReverseOctets => {
                format!("{:03}-{:03}-{:03}-{:03}.{}", ip[3], ip[2], ip[1], ip[0], org.domain)
            }
            NameStyle::Unresolved => format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkParams, NodeKind};
    use sixg_geo::GeoPoint;

    fn setup() -> (Topology, NameRegistry, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let ue = t.add_node(NodeKind::UserEquipment, "ue", GeoPoint::new(46.6, 14.3), Asn(200));
        let core =
            t.add_node(NodeKind::CoreRouter, "vie-core", GeoPoint::new(48.2, 16.4), Asn(60068));
        let ix = t.add_node(NodeKind::BorderRouter, "ix", GeoPoint::new(48.2, 16.4), Asn(39912));
        t.add_link(ue, core, LinkParams::metro());
        t.add_link(core, ix, LinkParams::metro());

        let mut reg = NameRegistry::new();
        reg.register_org(
            Asn(60068),
            OrgProfile {
                domain: "cdn77.com".into(),
                cc: "at".into(),
                style: NameStyle::CoreRouter,
                prefix: [185, 156],
            },
        );
        reg.register_org(
            Asn(39912),
            OrgProfile {
                domain: "as39912.net".into(),
                cc: "at".into(),
                style: NameStyle::IxRouter,
                prefix: [185, 211],
            },
        );
        (t, reg, ue, core, ix)
    }

    #[test]
    fn ue_gets_private_ip() {
        let (t, reg, ue, _, _) = setup();
        let ip = reg.ip(&t, ue);
        assert_eq!(ip[0], 10);
        assert!(reg.rdns(&t, ue, "klu").starts_with("10."));
    }

    #[test]
    fn core_router_style_like_table1() {
        let (t, reg, _, core, _) = setup();
        let name = reg.rdns(&t, core, "vie");
        assert!(name.starts_with("vl"), "{name}");
        assert!(name.contains("vie-itx1-core-"), "{name}");
        assert!(name.ends_with(".cdn77.com"), "{name}");
    }

    #[test]
    fn ix_style_like_table1() {
        let (t, reg, _, _, ix) = setup();
        let name = reg.rdns(&t, ix, "vie");
        assert!(name.contains(".ix.vie.at.as39912.net"), "{name}");
        assert!(name.starts_with("ae"), "{name}");
    }

    #[test]
    fn pinned_values_win() {
        let (t, mut reg, _, core, _) = setup();
        reg.pin_ip(core, [185, 156, 45, 138]);
        reg.pin_name(core, "vl204.vie-itx1-core-2.cdn77.com");
        assert_eq!(reg.ip_string(&t, core), "185.156.45.138");
        assert_eq!(reg.rdns(&t, core, "vie"), "vl204.vie-itx1-core-2.cdn77.com");
    }

    #[test]
    fn unknown_as_falls_back_to_bare_ip() {
        let mut t = Topology::new();
        let n = t.add_node(NodeKind::CoreRouter, "x", GeoPoint::new(0.0, 0.0), Asn(9));
        let reg = NameRegistry::new();
        let name = reg.rdns(&t, n, "xxx");
        assert_eq!(name, reg.ip_string(&t, n));
    }

    #[test]
    fn ips_are_deterministic_and_distinct() {
        let (t, reg, ue, core, ix) = setup();
        assert_eq!(reg.ip(&t, core), reg.ip(&t, core));
        assert_ne!(reg.ip(&t, ue), reg.ip(&t, core));
        assert_ne!(reg.ip(&t, core), reg.ip(&t, ix));
    }

    #[test]
    fn reverse_octets_style() {
        let mut t = Topology::new();
        let n = t.add_node(NodeKind::CoreRouter, "acc", GeoPoint::new(46.6, 14.3), Asn(8559));
        let mut reg = NameRegistry::new();
        reg.register_org(
            Asn(8559),
            OrgProfile {
                domain: "ascus.at".into(),
                cc: "at".into(),
                style: NameStyle::ReverseOctets,
                prefix: [195, 16],
            },
        );
        reg.pin_ip(n, [195, 16, 228, 3]);
        assert_eq!(reg.rdns(&t, n, "klu"), "003-228-016-195.ascus.at");
    }
}
