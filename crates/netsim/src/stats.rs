//! Online statistics, histograms and percentile estimation.
//!
//! The campaign layer aggregates tens of thousands of latency samples per
//! run; Welford's algorithm keeps mean/variance numerically stable without
//! storing samples, while [`Reservoir`] keeps a bounded subset for
//! percentile queries.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum sample (NaN-free; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator state `(n, mean, m2, min, max)` — the exact
    /// internal representation, for bit-preserving persistence. A state
    /// round-tripped through [`Self::from_raw_parts`] continues the
    /// accumulation with an identical floating-point operation sequence,
    /// so checkpoint/resume of a sample stream is bitwise transparent.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Self::raw_parts`] output verbatim.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self { n, mean, m2, min, max }
    }
}

/// Fixed-capacity uniform reservoir sample (Vitter's algorithm R) with a
/// deterministic internal stream derived from the insertion index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    seed: u64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// Reservoir keeping at most `cap` samples.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Self { cap, seen: 0, seed, samples: Vec::with_capacity(cap) }
    }

    /// Offers a sample.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let h = crate::rng::splitmix64(self.seed ^ self.seen.wrapping_mul(0x9E37_79B9));
            let j = h % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Percentile `p` in `[0,100]` via linear interpolation over the kept
    /// samples. Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut xs = self.samples.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in reservoir"));
        let p = p.clamp(0.0, 100.0) / 100.0;
        let idx = p * (xs.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            Some(xs[lo])
        } else {
            let frac = idx - lo as f64;
            Some(xs[lo] * (1.0 - frac) + xs[hi] * frac)
        }
    }

    /// How many samples were offered in total.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Kept samples (unsorted).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `bins` equal-width buckets on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram spec");
        Self { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.counts[bin.min(n - 1)] += 1;
        }
    }

    /// Total samples including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of samples strictly below `x` (bucket-resolution estimate).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return self.underflow as f64 / total as f64;
        }
        let mut cum = self.underflow;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            let upper = self.lo + (i as f64 + 1.0) * width;
            if upper <= x {
                cum += c;
            } else {
                // Partial bucket: assume uniform within the bucket.
                let lower = upper - width;
                if x > lower {
                    cum += (*c as f64 * (x - lower) / width) as u64;
                }
                break;
            }
        }
        cum as f64 / total as f64
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn reservoir_exact_under_capacity() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.push(i as f64);
        }
        assert_eq!(r.percentile(0.0), Some(0.0));
        assert_eq!(r.percentile(100.0), Some(49.0));
        let median = r.percentile(50.0).unwrap();
        assert!((median - 24.5).abs() < 1e-9);
    }

    #[test]
    fn reservoir_percentiles_approximate_uniform() {
        let mut r = Reservoir::new(2000, 7);
        for i in 0..100_000 {
            r.push((i % 1000) as f64);
        }
        let p50 = r.percentile(50.0).unwrap();
        assert!((p50 - 500.0).abs() < 50.0, "p50 {p50}");
        assert_eq!(r.seen(), 100_000);
    }

    #[test]
    fn reservoir_empty_is_none() {
        let r = Reservoir::new(10, 0);
        assert_eq!(r.percentile(50.0), None);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = Histogram::new(0.0, 10.0, 100);
        for i in 0..1000 {
            h.push(i as f64 % 10.0);
        }
        assert_eq!(h.total(), 1000);
        let f = h.fraction_below(5.0);
        assert!((f - 0.5).abs() < 0.02, "got {f}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(-5.0);
        h.push(5.0);
        h.push(0.5);
        assert_eq!(h.total(), 3);
        assert!((h.fraction_below(0.0) - 1.0 / 3.0).abs() < 1e-9);
    }
}
