//! A third, synthetic scenario: a dense 10 × 10 "megacity" sector with a
//! **local-peering topology variant**.
//!
//! Klagenfurt shows what the *absence* of local interconnection costs: ten
//! hops and a 2544 km detour for a sub-5 km flow. This scenario is the
//! counterfactual at metropolitan scale — the operator peers at an in-city
//! IX that also transits the local access ISP, so UE→anchor flows stay
//! inside the city (the Section V-A peering strategy, built into the
//! topology instead of retrofitted). A long transit path to an out-of-town
//! cloud still exists for the wired-reference comparison, and one of its
//! links carries a *lognormal* extra-delay distribution, exercising the
//! spec's `netsim::dist` integration beyond constants.
//!
//! At 100 traversed cells this is 3× the Klagenfurt campaign's cell count:
//! the scale test for the spec→campaign pipeline, the parallel runner and
//! the CLI. Like Skopje it is projected, not measured — the target field
//! comes from the floor+gradient+hotspot model.
//!
//! Thin wrapper over the committed spec file `specs/megacity.json`.

use crate::scenario::Scenario;
use crate::spec::{
    AsRelationDef, CalibrationDef, CampaignDef, DensityDef, GridDef, HopDef, LinkDef,
    MeasurementDef, OrgDef, PeerDef, PositionDef, ScenarioSpec, TargetDef, UeDef, WorkloadMixDef,
    WorkloadShareDef,
};
use sixg_netsim::dist::DistSpec;
use sixg_netsim::topology::Asn;
use std::sync::OnceLock;

/// The megacity scenario is the generic [`Scenario`], compiled from
/// `specs/megacity.json`.
pub type MegacityScenario = Scenario;

/// Metropolitan mobile operator.
pub const MEGA_OP_AS: Asn = Asn(64801);
/// In-city internet exchange the operator peers at.
pub const MEGA_IX_AS: Asn = Asn(64805);
/// Local access ISP, customer of the IX.
pub const MEGA_ISP_AS: Asn = Asn(64810);
/// Campus AS hosting the anchor.
pub const MEGA_CAMPUS_AS: Asn = Asn(64820);
/// Out-of-town cloud region.
pub const MEGA_CLOUD_AS: Asn = Asn(64830);
/// Long-haul transit provider (the only way out of town).
pub const MEGA_TRANSIT_AS: Asn = Asn(64840);

/// The committed spec file this module wraps.
pub const MEGACITY_SPEC_JSON: &str = include_str!("../../../specs/megacity.json");

fn geo(lat: f64, lon: f64) -> PositionDef {
    PositionDef::Geo { lat, lon }
}

fn bare_hop(name: &str, kind: &str, asn: Asn, position: PositionDef) -> HopDef {
    HopDef { name: name.into(), kind: kind.into(), asn: asn.0, position, ip: None, rdns: None }
}

fn link(a: &str, b: &str, bandwidth_bps: f64, utilisation: f64, extra: DistSpec) -> LinkDef {
    LinkDef { a: a.into(), b: b.into(), bandwidth_bps, utilisation, extra }
}

impl ScenarioSpec {
    /// The megacity spec, as code. `specs/megacity.json` is this value
    /// serialised; [`Scenario::megacity`] compiles the committed file.
    pub fn megacity() -> Self {
        const C0: DistSpec = DistSpec::Constant { ms: 0.0 };
        Self {
            name: "megacity".into(),
            description: "Dense synthetic 10×10 megacity sector with local peering: the \
                          operator interconnects at an in-city IX that transits the access \
                          ISP, so local flows stay local (the Section V-A strategy as a \
                          topology variant); an out-of-town cloud remains reachable only \
                          over long-haul transit with a lognormal extra-delay link"
                .into(),
            seed: 0x6D65_6761,
            backend: "analytic".into(),
            grid: GridDef {
                origin_lat: 48.30,
                origin_lon: 16.25,
                cols: 10,
                rows: 10,
                cell_km: 1.0,
            },
            density: DensityDef {
                core_col: 4.5,
                core_row: 4.5,
                peak: 15_000.0,
                decay_cells: 6.0,
                ..DensityDef::default()
            },
            // A lower floor than the measured sites: local peering removes
            // the transit legs, so what remains is mostly radio access.
            // Parameters sit inside the 5G model's reachable mean-vs-σ
            // envelope with ≥6 ms of headroom below load saturation.
            targets: TargetDef::Projected {
                floor_ms: 36.0,
                gradient_ms: 10.0,
                hotspot_ms: 8.0,
                hotspot: "F6".into(),
                std_factor: 1.1,
                std_floor_ms: 2.0,
            },
            // A megacity core: every one of the 100 cells is dense and
            // traversed.
            skipped_cells: Vec::new(),
            calibration: CalibrationDef { label: "mega-cal".into(), samples: 2000 },
            hops: vec![
                bare_hop("mega-cgnat", "CoreRouter", MEGA_OP_AS, geo(48.21, 16.37)),
                bare_hop("mega-ix", "Ixp", MEGA_IX_AS, geo(48.205, 16.36)),
                bare_hop("mega-isp-agg", "CoreRouter", MEGA_ISP_AS, geo(48.20, 16.38)),
                bare_hop(
                    "mega-anchor",
                    "Anchor",
                    MEGA_CAMPUS_AS,
                    PositionDef::Cell { cell: "E5".into(), bearing_deg: 0.0, offset_km: 0.0 },
                ),
                bare_hop("mega-transit", "BorderRouter", MEGA_TRANSIT_AS, geo(48.22, 16.40)),
                bare_hop("mega-cloud", "CloudDc", MEGA_CLOUD_AS, geo(48.10, 16.90)),
            ],
            links: vec![
                // Operator → in-city IX: the local-peering variant's key
                // interconnect.
                link("mega-cgnat", "mega-ix", 400e9, 0.35, DistSpec::Constant { ms: 0.1 }),
                // IX fabric → access ISP aggregation.
                link("mega-ix", "mega-isp-agg", 100e9, 0.30, DistSpec::Constant { ms: 0.05 }),
                // ISP → campus access.
                link("mega-isp-agg", "mega-anchor", 1e9, 0.20, C0),
                // Operator's long-haul transit uplink (the only way out of
                // town).
                link("mega-cgnat", "mega-transit", 100e9, 0.50, DistSpec::Constant { ms: 0.4 }),
                // Transit also peers at the IX, so ISP customers reach the
                // cloud.
                link("mega-transit", "mega-ix", 100e9, 0.40, DistSpec::Constant { ms: 0.2 }),
                // Long-haul to the cloud region: middlebox jitter modelled
                // as a lognormal extra-delay distribution.
                link(
                    "mega-transit",
                    "mega-cloud",
                    40e9,
                    0.45,
                    DistSpec::LogNormal { mean_ms: 0.6, cv: 0.5 },
                ),
            ],
            faults: Vec::new(),
            orgs: vec![
                OrgDef {
                    asn: MEGA_IX_AS.0,
                    domain: "mega-ix.net".into(),
                    cc: "at".into(),
                    style: "PlainHost".into(),
                    prefix: [185, 77],
                },
                OrgDef {
                    asn: MEGA_ISP_AS.0,
                    domain: "metrofiber.example".into(),
                    cc: "at".into(),
                    style: "ReverseOctets".into(),
                    prefix: [193, 88],
                },
                OrgDef {
                    asn: MEGA_CLOUD_AS.0,
                    domain: "mega-cloud.example".into(),
                    cc: "at".into(),
                    style: "PlainHost".into(),
                    prefix: [194, 99],
                },
            ],
            as_relations: vec![
                // The local-peering variant: operator ↔ IX settlement-free.
                AsRelationDef { kind: "peering".into(), a: MEGA_OP_AS.0, b: MEGA_IX_AS.0 },
                AsRelationDef { kind: "transit".into(), a: MEGA_IX_AS.0, b: MEGA_ISP_AS.0 },
                AsRelationDef { kind: "transit".into(), a: MEGA_ISP_AS.0, b: MEGA_CAMPUS_AS.0 },
                AsRelationDef { kind: "transit".into(), a: MEGA_TRANSIT_AS.0, b: MEGA_OP_AS.0 },
                AsRelationDef { kind: "transit".into(), a: MEGA_TRANSIT_AS.0, b: MEGA_CLOUD_AS.0 },
                AsRelationDef { kind: "peering".into(), a: MEGA_IX_AS.0, b: MEGA_TRANSIT_AS.0 },
            ],
            ue: UeDef {
                gateway: "mega-cgnat".into(),
                name_prefix: "mega-ue-".into(),
                bandwidth_bps: 1e9,
                utilisation: 0.10,
                extra: C0,
            },
            peers: PeerDef {
                cells: ["D3", "G4", "C8", "H7"].iter().map(|s| s.to_string()).collect(),
                attach: "mega-isp-agg".into(),
                name_prefix: "mega-peer-".into(),
                bearing_deg: 45.0,
                offset_km: 0.25,
                bandwidth_bps: 1e9,
                utilisation: 0.25,
                extra: DistSpec::Constant { ms: 0.8 },
            },
            measurement: MeasurementDef {
                anchor: "mega-anchor".into(),
                cloud: Some("mega-cloud".into()),
                reference_cell: "C2".into(),
                rdns_city: "vie".into(),
            },
            campaign: CampaignDef { seed: 3, passes: 4, sample_interval_s: 2.0 },
            workloads: WorkloadMixDef {
                reference_class: "ArGaming".into(),
                mix: vec![
                    WorkloadShareDef { class: "ArGaming".into(), share: 0.3 },
                    WorkloadShareDef { class: "VideoStreaming".into(), share: 0.2 },
                    WorkloadShareDef { class: "AutonomousVehicle".into(), share: 0.15 },
                    WorkloadShareDef { class: "IotTelemetry".into(), share: 0.2 },
                    WorkloadShareDef { class: "SmartCity".into(), share: 0.15 },
                ],
            },
        }
    }
}

/// The committed megacity spec, parsed once.
pub fn megacity_spec() -> &'static ScenarioSpec {
    static SPEC: OnceLock<ScenarioSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        ScenarioSpec::from_json(MEGACITY_SPEC_JSON).expect("committed specs/megacity.json parses")
    })
}

impl Scenario {
    /// Builds the megacity scenario from the committed spec file.
    pub fn megacity(seed: u64) -> Self {
        let mut spec = megacity_spec().clone();
        spec.seed = seed;
        Self::from_spec(&spec).expect("committed megacity spec compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::CellId;
    use sixg_netsim::routing::PathComputer;
    use std::sync::OnceLock;

    fn scenario() -> &'static MegacityScenario {
        static S: OnceLock<MegacityScenario> = OnceLock::new();
        S.get_or_init(|| MegacityScenario::megacity(0x6D65_6761))
    }

    #[test]
    fn committed_spec_file_matches_code_constructor() {
        assert_eq!(*megacity_spec(), ScenarioSpec::megacity());
    }

    #[test]
    fn all_hundred_cells_traversed_and_dense() {
        let s = scenario();
        assert_eq!(s.grid.len(), 100);
        assert_eq!(s.included.len(), 100);
        assert_eq!(s.ue.len(), 100);
        assert_eq!(s.access.len(), 100);
        for cell in s.grid.cells() {
            assert!(!s.density.is_sparse(cell), "megacity cell {cell} must be dense");
        }
    }

    #[test]
    fn local_peering_keeps_anchor_paths_short() {
        // The whole point of the variant: no Klagenfurt-style ten-hop
        // international detour — UE → gw → IX → ISP → anchor.
        let s = scenario();
        let (ue, anchor) = s.table1_endpoints();
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let path = pc.route(ue, anchor).expect("routable");
        assert!(path.hop_count() <= 5, "hops {}", path.hop_count());
        assert!(path.route_km(&s.topo) < 60.0, "route {} km", path.route_km(&s.topo));
    }

    #[test]
    fn cloud_only_reachable_over_long_haul_transit() {
        let s = scenario();
        let cloud = s.cloud.expect("megacity has a cloud");
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        // UE side climbs through the transit provider.
        let c2 = CellId::parse("C2").unwrap();
        let p = pc.route(s.ue[&c2], cloud).expect("routable");
        let names: Vec<&str> = p.hops.iter().map(|(n, _)| s.topo.node(*n).name.as_str()).collect();
        assert!(names.contains(&"mega-transit"), "{names:?}");
        // Peers (ISP customers) exit via the IX–transit peering.
        let p = pc.route(s.peers[0], cloud).expect("routable");
        let names: Vec<&str> = p.hops.iter().map(|(n, _)| s.topo.node(*n).name.as_str()).collect();
        assert!(names.contains(&"mega-ix"), "{names:?}");
    }

    #[test]
    fn uniform_campaign_reproduces_projected_field_at_scale() {
        let s = scenario();
        let field = s.run_uniform_campaign(300, 1);
        let hotspot = CellId::parse("F6").unwrap();
        let (_, max) = field.mean_extrema().unwrap();
        assert_eq!(max.cell, hotspot, "hotspot must carry the max mean");
        let gm = field.grand_mean_ms();
        // floor 36 + gradient midpoint 5 + hotspot dilution ≈ 41.
        assert!((39.0..44.0).contains(&gm), "grand mean {gm}");
        for &cell in &s.included {
            let want = s.targets.mean_of(cell);
            let got = field.stats(cell).mean_ms;
            assert!((got - want).abs() < 4.0, "cell {cell}: {got} vs projected {want}");
        }
    }

    #[test]
    fn deterministic_at_scale() {
        let a = MegacityScenario::megacity(11);
        let b = MegacityScenario::megacity(11);
        for cell in &a.included {
            assert_eq!(a.access[cell].env.load.to_bits(), b.access[cell].env.load.to_bits());
            assert_eq!(
                a.access[cell].env.interference.to_bits(),
                b.access[cell].env.interference.to_bits()
            );
        }
    }
}
