//! The packet-level discrete-event campaign backend.
//!
//! The analytic backend ([`crate::campaign::MobileCampaign`]) draws each
//! round-trip latency from closed-form per-hop delay models. This module
//! executes the *same campaign* — same [`Shard`] work list, same
//! `(scenario seed, campaign seed, pass, cell, sample)` stream-keying
//! discipline, same per-cell sample counts — but produces every sample by
//! pushing a probe [`Packet`] through a per-shard discrete-event world
//! built on [`sixg_netsim::engine::Engine`]:
//!
//! * every link carries a [`FifoServer`] (from [`sixg_netsim::queueing`]),
//!   so serialisation delay and probe-vs-probe queueing are *emergent*
//!   from packet timing rather than sampled — the piece the closed form
//!   cannot express (congested cadences, bursty cross-traffic);
//! * per-link extra delays are sampled from the spec's full declarative
//!   [`DistSpec`]s (via [`Scenario::link_extra_specs`]) instead of being
//!   collapsed to their means;
//! * background cross-traffic too light to simulate per-packet keeps the
//!   analytic M/G/1 treatment (exponential wait at the Pollaczek–Khinchine
//!   mean), identical to the analytic backend's convention;
//! * the return trip re-traverses the forward hop list, mirroring the
//!   analytic `rtt = one_way + one_way` convention, so the two backends
//!   agree in expectation (cross-validated by `repro_crossval`).
//!
//! Determinism: each probe's stochastic quantities are drawn *up front*
//! from its own per-sample stream (phase label `"campaign-event"`), and
//! each shard owns a private engine and world. Shards can therefore run on
//! any thread in any order; results are folded back in work-list order by
//! the shared work-list skeleton of [`crate::parallel`], making parallel
//! runs bitwise equal to sequential ones at every pool size.

use crate::aggregate::CellField;
use crate::campaign::{CampaignConfig, MobileCampaign, Shard};
use crate::parallel::run_shards;
use crate::scenario::Scenario;
use bytes::arena::{Arena, Slice};
use sixg_netsim::dist::{Component, DistSpec, LogNormal, Sample};
use sixg_netsim::engine::Engine;
use sixg_netsim::latency::{mean_queue_ms, propagation_ms, transmission_ms, PROCESSING_CV};
use sixg_netsim::packet::{FlowId, Packet, TrafficClass};
use sixg_netsim::queueing::FifoServer;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::time::{SimDuration, SimTime};
use sixg_netsim::topology::LinkId;
use std::cell::RefCell;

/// Wire size of a measurement probe, bytes — the same figure the analytic
/// sampler feeds its transmission-delay term.
pub const PROBE_BYTES: u32 = 64;

/// Cross-validation: multiplier on the standard error of the difference of
/// the two backends' per-cell means (see DESIGN.md "Execution backends").
pub const CROSSVAL_SE_FACTOR: f64 = 6.0;
/// Cross-validation: absolute per-cell slack absorbing the backends'
/// second-order modelling differences (sampled extras vs means, residual
/// FIFO waits), ms.
pub const CROSSVAL_SLACK_MS: f64 = 0.75;
/// Cross-validation: relative tolerance on grand-mean agreement.
pub const CROSSVAL_GRAND_MEAN_TOL: f64 = 0.015;

/// The documented per-cell cross-validation tolerance for comparing the
/// two backends' mean RTLs: `CROSSVAL_SE_FACTOR · SE + CROSSVAL_SLACK_MS`
/// with `SE = √(σ_a²/n_a + σ_e²/n_e)` (the backends draw from disjoint
/// streams, so their means are independent). The single definition the
/// `repro_crossval` CI gate and the tier-1 suites all consume.
pub fn crossval_tolerance_ms(a: &crate::CellStats, e: &crate::CellStats) -> f64 {
    let se = (a.std_ms * a.std_ms / a.count as f64 + e.std_ms * e.std_ms / e.count as f64).sqrt();
    CROSSVAL_SE_FACTOR * se + CROSSVAL_SLACK_MS
}

/// Stream-key phase label of the event backend (the analytic backend uses
/// `"campaign"`; a distinct label keeps the two backends' draws
/// statistically independent while sharing the keying discipline).
pub(crate) const PHASE_LABEL: &str = "campaign-event";

/// One hop traversal of a probe: occupy `link`'s FIFO server for
/// `service`, then arrive at the next hop `after` later (propagation +
/// sampled extra + background queueing + node processing).
#[derive(Debug, Clone, Copy)]
struct Leg {
    link: LinkId,
    service: SimDuration,
    after: SimDuration,
}

/// A probe in flight: its pre-drawn journey (a handle into the shard's
/// shared leg arena) plus bookkeeping to turn the echo arrival into an RTL
/// sample.
struct Probe {
    id: usize,
    launched: SimTime,
    next: usize,
    legs: Slice,
    air_ms: f64,
}

/// The per-shard event world: one FIFO server per link, one result slot
/// per probe, and one arena holding every probe's legs.
///
/// The arena replaces the per-probe `Vec<Leg>` allocations the backend
/// used to make — one worker-local buffer is recycled across all shards a
/// worker executes, so the steady-state hot loop performs no allocator
/// calls for probe journeys.
struct ProbeWorld {
    links: Vec<FifoServer>,
    results: Vec<f64>,
    legs: Arena<Leg>,
}

thread_local! {
    /// Worker-local leg arena, moved into each shard's [`ProbeWorld`] and
    /// recovered afterwards so its capacity survives across shards.
    static LEG_ARENA: RefCell<Arena<Leg>> = RefCell::new(Arena::new());
}

/// Advances a probe one leg: claim the link's FIFO server now, schedule
/// the next-hop arrival; on the last leg, record the RTL sample.
fn advance(eng: &mut Engine<ProbeWorld>, world: &mut ProbeWorld, mut probe: Probe) {
    match world.legs.get(probe.legs).get(probe.next).copied() {
        None => {
            let wire_ms = eng.now().since(probe.launched).as_millis_f64();
            world.results[probe.id] = wire_ms + probe.air_ms;
        }
        Some(leg) => {
            probe.next += 1;
            let depart = world.links[leg.link.0 as usize].admit(eng.now(), leg.service);
            let arrival = depart + leg.after;
            eng.schedule_at(arrival, move |e, w| advance(e, w, probe));
        }
    }
}

/// The event-driven campaign runner over a spec-compiled [`Scenario`].
///
/// Construction compiles the per-link extra-delay distributions once; each
/// [`Self::collect_shard_into`] call then builds a private engine + world
/// for its shard.
pub struct EventCampaign<'a> {
    campaign: MobileCampaign<'a>,
    extras: Vec<Component>,
}

impl<'a> EventCampaign<'a> {
    /// Creates an event-driven campaign over a scenario.
    pub fn new(scenario: &'a Scenario, config: CampaignConfig) -> Self {
        let extras = scenario.link_extra_specs().iter().map(DistSpec::build).collect();
        Self { campaign: MobileCampaign::new(scenario, config), extras }
    }

    /// The campaign work list — exactly the analytic backend's
    /// ([`MobileCampaign::shards`]), which is what makes the two backends
    /// shard-for-shard and count-for-count comparable.
    pub fn shards(&self) -> Vec<Shard> {
        self.campaign.shards()
    }

    /// Event-simulated samples of one shard, in probe order.
    pub fn collect_shard(&self, shard: Shard) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_shard_into(shard, &mut out);
        out
    }

    /// [`Self::collect_shard`] into a caller-owned buffer (cleared first).
    ///
    /// Builds the shard's packet-level world — probe packets on the
    /// sampling cadence, FIFO servers on every link — and runs its event
    /// calendar to completion.
    pub fn collect_shard_into(&self, shard: Shard, out: &mut Vec<f64>) {
        let s = self.campaign.scenario();
        let targets = self.campaign.targets();
        let access = s.access_for(shard.cell);
        let interval = SimDuration::from_secs_f64(self.campaign.config().sample_interval_s);
        let n = self.campaign.samples_for_dwell(shard.dwell_s);
        let key = self.campaign.shard_key(PHASE_LABEL, shard.pass, shard.cell);
        let ue = s.ue[&shard.cell];

        let mut eng: Engine<ProbeWorld> = Engine::new();
        let mut world = ProbeWorld {
            links: vec![FifoServer::new(); s.topo.link_count()],
            results: vec![f64::NAN; n],
            legs: LEG_ARENA.with(|a| std::mem::take(&mut *a.borrow_mut())),
        };
        world.legs.reset();

        let mut launch = SimTime::ZERO;
        for i in 0..n {
            // Every stochastic quantity of probe `i` comes from its own
            // (seed, pass, cell, sample) stream, drawn before the calendar
            // runs — event interleaving can shift *timing* (FIFO waits)
            // but never which random numbers a probe consumes.
            let mut rng = SimRng::for_stream(key.with(i as u64));
            let ti = rng.below(targets.len() as u64) as usize;
            let path = &s.routes[&(shard.cell, ti)];
            let packet = Packet::new(
                FlowId(i as u64),
                i as u64,
                ue,
                targets[ti],
                PROBE_BYTES,
                TrafficClass::Management,
                launch,
            );

            // Forward legs, then the echo back over the same hop list (the
            // analytic backend's rtt = one_way + one_way convention).
            let mark = world.legs.mark();
            for _direction in 0..2 {
                for &(into, link) in &path.hops {
                    let service = transmission_ms(&s.topo, link, packet.size_bytes);
                    // A `normal` extra spec admits a tiny negative-sample
                    // mass (validate() bounds it at mean ≥ 4σ, ~3e-5 per
                    // draw); clamp it — a negative delay is unphysical and
                    // would panic the SimDuration conversion below.
                    let extra = self.extras[link.0 as usize].sample(&mut rng).max(0.0);
                    let qmean = mean_queue_ms(&s.topo, link);
                    // Background cross-traffic: exponential at the M/G/1
                    // mean, the analytic sampler's exact convention.
                    let queue = if qmean > 0.0 { -(1.0 - rng.unit()).ln() * qmean } else { 0.0 };
                    let proc_mean = s.topo.node(into).kind.base_processing_ms();
                    let proc = LogNormal::from_mean_cv(proc_mean, PROCESSING_CV).sample(&mut rng);
                    world.legs.push(Leg {
                        link,
                        service: SimDuration::from_millis_f64(service),
                        after: SimDuration::from_millis_f64(
                            propagation_ms(&s.topo, link) + extra + queue + proc,
                        ),
                    });
                }
            }
            let air_ms = access.sample_rtt_ms(&mut rng);

            let probe =
                Probe { id: i, launched: launch, next: 0, legs: world.legs.since(mark), air_ms };
            eng.schedule_at(launch, move |e, w| advance(e, w, probe));
            launch += interval;
        }

        eng.run(&mut world);
        debug_assert_eq!(eng.pending(), 0);

        out.clear();
        out.reserve(n);
        for (i, &rtl) in world.results.iter().enumerate() {
            debug_assert!(rtl.is_finite(), "probe {i} never completed");
            out.push(rtl);
        }
        // Hand the arena (and its grown capacity) back to the worker.
        LEG_ARENA.with(|a| *a.borrow_mut() = std::mem::take(&mut world.legs));
    }

    /// Runs the full campaign sequentially, shard by shard, reusing one
    /// sample buffer (bitwise identical to the parallel runner behind
    /// [`crate::exec::run_field`]).
    pub fn run(&self) -> CellField {
        crate::parallel::run_shards_sequential(
            self.campaign.scenario(),
            &self.shards(),
            |shard, buf| self.collect_shard_into(shard, buf),
        )
    }
}

/// Runs the event-driven campaign on the thread pool, sharding at (pass,
/// cell) granularity and merging batches in deterministic work-list order
/// — the event half of the [`crate::exec`] dispatch.
pub(crate) fn event_field(scenario: &Scenario, config: CampaignConfig) -> CellField {
    let ec = EventCampaign::new(scenario, config);
    run_shards(scenario, &ec.shards(), |shard, buf| ec.collect_shard_into(shard, buf))
}

#[doc(hidden)]
#[deprecated(
    note = "superseded by the ExecRequest facade: use `exec::run_field(scenario, config, \
            ExecBackend::Event)` (or `exec::execute` on a spec); this shim forwards to the \
            same event runner"
)]
pub fn run_event_parallel(scenario: &Scenario, config: CampaignConfig) -> CellField {
    event_field(scenario, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_field;
    use crate::klagenfurt::KlagenfurtScenario;
    use crate::parallel::with_thread_count;
    use crate::spec::ExecBackend;
    use crate::spec::ScenarioSpec;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    fn assert_fields_bitwise_equal(s: &Scenario, a: &CellField, b: &CellField, context: &str) {
        for cell in s.grid.cells() {
            let (x, y) = (a.stats(cell), b.stats(cell));
            assert_eq!(x.count, y.count, "{context}: cell {cell} count");
            assert_eq!(x.mean_ms.to_bits(), y.mean_ms.to_bits(), "{context}: cell {cell} mean");
            assert_eq!(x.std_ms.to_bits(), y.std_ms.to_bits(), "{context}: cell {cell} std");
        }
    }

    /// The determinism contract holds for the event backend: sequential
    /// and parallel runs are bitwise equal at every pool size.
    #[test]
    fn event_parallel_equals_sequential_bitwise() {
        let s = scenario();
        let config = CampaignConfig { seed: 5, passes: 2, ..Default::default() };
        let seq = EventCampaign::new(&s, config).run();
        for &threads in &[1usize, 2, 4] {
            let par = with_thread_count(threads, || event_field(&s, config));
            assert_fields_bitwise_equal(&s, &seq, &par, &format!("{threads} threads"));
        }
    }

    /// Both backends execute the identical shard list, so per-cell sample
    /// counts agree exactly; only the draws differ.
    #[test]
    fn event_backend_matches_analytic_sample_counts() {
        let s = scenario();
        let config = CampaignConfig { seed: 9, passes: 2, ..Default::default() };
        let analytic = run_field(&s, config, ExecBackend::Analytic);
        let event = event_field(&s, config);
        for cell in s.grid.cells() {
            assert_eq!(analytic.stats(cell).count, event.stats(cell).count, "cell {cell}");
        }
        assert_eq!(analytic.total_samples(), event.total_samples());
    }

    /// At the paper's 2 s cadence the probes never contend, so the event
    /// backend's per-cell means track the analytic backend's within
    /// statistical noise.
    #[test]
    fn event_backend_tracks_analytic_means() {
        let s = scenario();
        let config = CampaignConfig { seed: 2, passes: 6, ..Default::default() };
        let analytic = run_field(&s, config, ExecBackend::Analytic);
        let event = event_field(&s, config);
        for cell in s.grid.cells() {
            let (a, e) = (analytic.stats(cell), event.stats(cell));
            if a.is_masked() {
                continue;
            }
            let tol = crossval_tolerance_ms(&a, &e);
            assert!(
                (a.mean_ms - e.mean_ms).abs() <= tol,
                "cell {cell}: analytic {} vs event {} (tol {tol})",
                a.mean_ms,
                e.mean_ms
            );
        }
        let (ga, ge) = (analytic.grand_mean_ms(), event.grand_mean_ms());
        assert!((ga - ge).abs() / ga < CROSSVAL_GRAND_MEAN_TOL, "grand means {ga} vs {ge}");
    }

    /// A `normal` extra-delay spec is valid (mean ≥ 4σ) yet has a small
    /// negative-sample mass. The analytic backend only ever uses its mean;
    /// the event backend samples it, and clamps at zero so the rare draw
    /// whose negativity outweighs the leg's propagation + queueing +
    /// processing cannot panic the `SimDuration` conversion. This smoke
    /// test pins the supported-spec surface: normal extras on every link
    /// run clean end to end.
    #[test]
    fn normal_extra_distribution_runs_clean_on_the_event_backend() {
        let mut spec = ScenarioSpec::klagenfurt();
        for link in &mut spec.links {
            link.extra = sixg_netsim::dist::DistSpec::Normal { mean_ms: 4.0, std_ms: 1.0 };
        }
        assert!(spec.validate().is_empty());
        let s = Scenario::from_spec(&spec).expect("compiles");
        let config = CampaignConfig { seed: 1, passes: 1, ..Default::default() };
        let shard = Shard { pass: 0, cell: s.reference_cell, dwell_s: 8_000.0 };
        let samples = EventCampaign::new(&s, config).collect_shard(shard);
        assert_eq!(samples.len(), 4_000);
        assert!(samples.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    /// The piece the closed form cannot express: crank the probe cadence
    /// into the link's serialisation capacity and FIFO queueing between
    /// probes must inflate the measured RTL — congestion is emergent.
    #[test]
    fn saturating_cadence_produces_emergent_queueing() {
        // A narrowband scenario: the UE uplink serialises a 64-byte probe
        // in 6.4 ms, so a 1 ms cadence is ~13× oversubscribed round trip.
        let mut spec = ScenarioSpec::klagenfurt();
        spec.ue.bandwidth_bps = 80_000.0;
        let s = Scenario::from_spec(&spec).expect("compiles");

        let saturated = CampaignConfig { seed: 1, passes: 1, sample_interval_s: 0.001 };
        let shard = Shard { pass: 0, cell: s.reference_cell, dwell_s: 0.1 };

        let event = EventCampaign::new(&s, saturated).collect_shard(shard);
        // The analytic backend is cadence-blind: same per-sample model.
        let analytic = MobileCampaign::new(&s, saturated).collect_shard(shard);
        assert_eq!(event.len(), analytic.len());

        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let (me, ma) = (mean(&event), mean(&analytic));
        assert!(
            me > ma + 100.0,
            "FIFO backlog must inflate the event-backend mean: event {me} vs analytic {ma}"
        );
        // And the backlog grows monotonically: the last probe waited for
        // every probe before it, so it is slower than the first.
        assert!(event[event.len() - 1] > event[0] + 100.0);
    }
}
