//! The continental-scale mega-grid scenario (wide key scheme).
//!
//! Where [`crate::skopje`] demonstrates geographic generality and
//! [`crate::megacity`] density, this scenario demonstrates **scale**: a
//! 1000 × 1000 km grid — a million cells — over the European core,
//! compiled under [`crate::scenario::KeyScheme::Wide`] and sampled by the
//! columnar (batched inverse-CDF) pipeline instead of per-cell UE
//! compilation. It is the committed workload of the `repro_colossal`
//! (E25) throughput gate and the walkthrough subject of the README's
//! continental-grid section.
//!
//! **Projected, not measured** — like Skopje, the target field comes from
//! the floor + gradient + hotspot closed form. The density raster decays
//! from a single urban core, so the overwhelming majority of the grid
//! sits below the paper's 1000 /km² density threshold (a sparse-density
//! grid); the traversal still covers every cell because the projected
//! floor is positive everywhere.
//!
//! Wide-scheme constraints ([`crate::spec::ScenarioSpec::validate`]):
//! analytic backend only, no fault schedules. The spec stays small on
//! disk because the per-cell field is generated, never enumerated.

use crate::scenario::Scenario;
use crate::spec::{
    AsRelationDef, CalibrationDef, CampaignDef, DensityDef, GridDef, HopDef, LinkDef,
    MeasurementDef, PeerDef, PositionDef, ScenarioSpec, TargetDef, UeDef, WorkloadMixDef,
    WorkloadShareDef,
};
use sixg_netsim::dist::DistSpec;
use sixg_netsim::topology::Asn;
use std::sync::OnceLock;

/// Pan-European mobile operator (projected).
pub const EU_OP_AS: Asn = Asn(1273);
/// Frankfurt exchange fabric.
pub const IX_FRA_AS: Asn = Asn(6695);
/// Tier-1 carrier backbone.
pub const CARRIER_AS: Asn = Asn(1299);
/// Continental anchor host network.
pub const ANCHOR_AS: Asn = Asn(200_003);

/// The committed spec file this module wraps.
pub const CONTINENTAL_SPEC_JSON: &str = include_str!("../../../specs/continental.json");

fn geo(lat: f64, lon: f64) -> PositionDef {
    PositionDef::Geo { lat, lon }
}

fn bare_hop(name: &str, kind: &str, asn: Asn, position: PositionDef) -> HopDef {
    HopDef { name: name.into(), kind: kind.into(), asn: asn.0, position, ip: None, rdns: None }
}

fn link(a: &str, b: &str, bandwidth_bps: f64, utilisation: f64, extra_ms: f64) -> LinkDef {
    LinkDef {
        a: a.into(),
        b: b.into(),
        bandwidth_bps,
        utilisation,
        extra: DistSpec::Constant { ms: extra_ms },
    }
}

impl ScenarioSpec {
    /// The continental mega-grid spec, as code. `specs/continental.json`
    /// is this value serialised.
    pub fn continental() -> Self {
        Self {
            name: "continental".into(),
            description: "Continental-scale mega-grid over the European core: 1000×1000 km, \
                          one million cells under the wide key scheme, sampled by the \
                          columnar pipeline; sparse monocentric density, projected \
                          floor+gradient+hotspot target field (not measured)"
                .into(),
            seed: 22,
            backend: "analytic".into(),
            grid: GridDef {
                origin_lat: 41.9,
                origin_lon: 2.1,
                cols: 1000,
                rows: 1000,
                cell_km: 1.0,
            },
            // A single urban core at the grid centre; density decays to
            // sparse within ~50 cells, so >99 % of the grid sits below the
            // 1000 /km² threshold.
            density: DensityDef {
                core_col: 500.0,
                core_row: 500.0,
                peak: 12_000.0,
                decay_cells: 48.0,
                ..DensityDef::default()
            },
            targets: TargetDef::Projected {
                floor_ms: 48.0,
                gradient_ms: 30.0,
                hotspot_ms: 18.0,
                hotspot: "SG501".into(),
                std_factor: 0.6,
                std_floor_ms: 2.0,
            },
            skipped_cells: Vec::new(),
            calibration: CalibrationDef { label: "continental-cal".into(), samples: 1500 },
            hops: vec![
                bare_hop("eu-core-par", "CoreRouter", EU_OP_AS, geo(48.8566, 2.3522)),
                bare_hop("ix-fra", "BorderRouter", IX_FRA_AS, geo(50.1109, 8.6821)),
                bare_hop("carrier-ams", "CoreRouter", CARRIER_AS, geo(52.3676, 4.9041)),
                bare_hop("carrier-mil", "CoreRouter", CARRIER_AS, geo(45.4642, 9.19)),
                bare_hop("eu-anchor-fra", "Anchor", ANCHOR_AS, geo(50.12, 8.69)),
            ],
            links: vec![
                link("eu-core-par", "ix-fra", 100e9, 0.50, 0.7),
                link("ix-fra", "carrier-ams", 40e9, 0.55, 0.5),
                link("ix-fra", "carrier-mil", 40e9, 0.60, 0.6),
                link("carrier-ams", "eu-anchor-fra", 10e9, 0.30, 0.3),
            ],
            faults: Vec::new(),
            orgs: Vec::new(),
            as_relations: vec![
                AsRelationDef { kind: "peering".into(), a: EU_OP_AS.0, b: IX_FRA_AS.0 },
                AsRelationDef { kind: "transit".into(), a: IX_FRA_AS.0, b: CARRIER_AS.0 },
                AsRelationDef { kind: "transit".into(), a: CARRIER_AS.0, b: ANCHOR_AS.0 },
            ],
            ue: UeDef {
                gateway: "eu-core-par".into(),
                name_prefix: "eu-ue-".into(),
                bandwidth_bps: 1e9,
                utilisation: 0.10,
                extra: DistSpec::Constant { ms: 0.0 },
            },
            peers: PeerDef::none(),
            measurement: MeasurementDef {
                anchor: "eu-anchor-fra".into(),
                cloud: None,
                reference_cell: "SG501".into(),
                rdns_city: "fra".into(),
            },
            // One pass at a 6 s cadence: dwell jitter spans 72–168 s per
            // cell, so every cell draws 12–28 samples (all above the
            // masking threshold) — ~2×10⁷ samples total, the E25 workload.
            campaign: CampaignDef { seed: 5, passes: 1, sample_interval_s: 6.0 },
            workloads: WorkloadMixDef {
                reference_class: "ArGaming".into(),
                mix: vec![
                    WorkloadShareDef { class: "ArGaming".into(), share: 0.5 },
                    WorkloadShareDef { class: "IotTelemetry".into(), share: 0.5 },
                ],
            },
        }
    }
}

/// The committed continental spec, parsed once.
pub fn continental_spec() -> &'static ScenarioSpec {
    static SPEC: OnceLock<ScenarioSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        ScenarioSpec::from_json(CONTINENTAL_SPEC_JSON)
            .expect("committed specs/continental.json parses")
    })
}

impl Scenario {
    /// Compiles the continental mega-grid from the committed spec file.
    pub fn continental(seed: u64) -> Self {
        let mut spec = continental_spec().clone();
        spec.seed = seed;
        Self::from_spec(&spec).expect("committed continental spec compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, MobileCampaign};
    use crate::scenario::KeyScheme;
    use sixg_geo::CellId;
    use std::sync::OnceLock;

    fn scenario() -> &'static Scenario {
        static S: OnceLock<Scenario> = OnceLock::new();
        S.get_or_init(|| Scenario::continental(22))
    }

    #[test]
    fn committed_spec_file_matches_code_constructor() {
        assert_eq!(*continental_spec(), ScenarioSpec::continental());
    }

    #[test]
    fn spec_validates_and_selects_the_wide_scheme() {
        let spec = ScenarioSpec::continental();
        let errors = spec.validate();
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(spec.grid.cols, 1000);
        assert_eq!(spec.grid.rows, 1000);
        assert_eq!(KeyScheme::for_dims(spec.grid.cols, spec.grid.rows), KeyScheme::Wide);
    }

    #[test]
    fn wide_compile_skips_per_cell_materialisation() {
        let s = scenario();
        assert_eq!(s.key_scheme, KeyScheme::Wide);
        assert_eq!(s.included.len(), 1_000_000, "projected floor traverses every cell");
        assert!(s.ue.is_empty(), "no per-cell UE nodes at mega-grid scale");
        assert!(s.access.is_empty(), "no per-cell calibration at mega-grid scale");
        assert!(s.routes.is_empty(), "no per-cell routes at mega-grid scale");
    }

    #[test]
    fn event_backend_and_faults_are_rejected_on_the_mega_grid() {
        let mut spec = ScenarioSpec::continental();
        spec.backend = "event".into();
        let errors = spec.validate();
        assert!(
            errors.iter().any(|e| e.path == "$.backend" && e.message.contains("analytic")),
            "{errors:?}"
        );
    }

    #[test]
    fn columnar_samples_track_the_projected_field() {
        let s = scenario();
        let campaign = MobileCampaign::new(s, CampaignConfig::default());
        // Spot-check three cells across the gradient without running the
        // full traversal (which is the release-build E25 workload).
        for label in ["A1", "SG501", "ALL1000"] {
            let cell = CellId::parse(label).unwrap();
            let want = s.targets.mean_of(cell);
            let samples = campaign.collect_cell(0, cell, 4000.0);
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            assert!(
                (mean - want).abs() < 2.0,
                "cell {label}: sampled {mean:.2} vs projected {want:.2}"
            );
        }
    }

    #[test]
    fn hotspot_is_the_field_maximum() {
        let s = scenario();
        let hotspot = CellId::parse("SG501").unwrap();
        let (mut max_cell, mut max) = (hotspot, f64::NEG_INFINITY);
        for cell in [hotspot, CellId::new(0, 0), CellId::new(999, 999), CellId::new(500, 0)] {
            let m = s.targets.mean_of(cell);
            if m > max {
                max = m;
                max_cell = cell;
            }
        }
        assert_eq!(max_cell, hotspot);
    }
}
