//! The Klagenfurt measurement scenario — the infrastructure of Section IV.
//!
//! Since the declarative scenario subsystem ([`crate::spec`]) landed, this
//! module is a thin wrapper over the committed spec file
//! `specs/klagenfurt.json`, which describes everything the paper's
//! campaign touched:
//!
//! * the **grid**: 6 × 7 cells of 1 km (Figure 1), of which 33 are
//!   traversed; the 9 skipped cells sit in low-density border regions;
//! * the **operator side**: per-cell mobile UEs behind a CGNAT gateway
//!   (Table I hop 1, `10.12.128.1`);
//! * the **transit chain** that the operator's lack of local peering
//!   forces traffic through: DataPacket/CDN77 in Vienna (hops 2–3), the
//!   zet.net constellation reached over the Prague peering fabric
//!   (hops 4–6, Bucharest), AS39912 back in Vienna (hop 7);
//! * the **local ISP** (`ascus.at`, hops 8–9) that aggregates in Vienna
//!   and finally descends to Klagenfurt;
//! * the **campus AS** hosting the RIPE-Atlas-style anchor (hop 10);
//! * eight **fixed peer nodes** in the sector (the "eight other nodes" of
//!   Section IV-B) and an Exoscale-like **Vienna cloud** used by the wired
//!   baseline;
//! * the per-cell **radio calibration**: a target mean/σ field encoding
//!   Figures 2–3 (anchors: 61 ms @ C1, 110 ms @ C3, 65 ms @ C2 for
//!   Table I, σ 1.8 @ B3, σ 46.4 @ E5, grand mean ≈ 74 ms ⇒ the paper's
//!   ≈270 % requirement exceedance), inverted through the analytic 5G
//!   access model so that the campaign *reproduces* the field rather than
//!   replaying it.
//!
//! [`ScenarioSpec::klagenfurt`] constructs the same spec in code; a test
//! pins the committed JSON to it, and the golden suite pins the compiled
//! scenario's campaign output to the bit.

use crate::spec::{
    AsRelationDef, CalibrationDef, CampaignDef, DensityDef, FaultDef, GridDef, HopDef, LinkDef,
    MeasurementDef, OrgDef, PeerDef, PositionDef, ScenarioSpec, TargetDef, UeDef, WorkloadMixDef,
    WorkloadShareDef,
};
use sixg_netsim::dist::DistSpec;
use sixg_netsim::topology::Asn;
use std::sync::OnceLock;

pub use crate::scenario::{Scenario, TargetField};

/// The Klagenfurt scenario is the generic [`Scenario`], compiled from
/// `specs/klagenfurt.json`.
pub type KlagenfurtScenario = Scenario;

/// Mobile network operator (the measured 5G provider).
pub const OP_AS: Asn = Asn(25255);
/// DataPacket / CDN77 transit (Table I hops 2–3).
pub const DATAPACKET_AS: Asn = Asn(60068);
/// zet.net constellation including the Prague peering presence (hops 4–6).
pub const ZET_AS: Asn = Asn(57344);
/// The Viennese AS39912 of Table I hop 7.
pub const IX_AS: Asn = Asn(39912);
/// Local access ISP `ascus.at` (hops 8–9), upstream of the campus.
pub const ASCUS_AS: Asn = Asn(8445);
/// University campus AS hosting the anchor (hop 10).
pub const CAMPUS_AS: Asn = Asn(5383);
/// Exoscale-like Vienna cloud (the 7–12 ms wired reference of \[3\]).
pub const CLOUD_AS: Asn = Asn(61098);
/// Backup Vienna transit crossing of the flap scenario (documentation
/// range, RFC 5398). Lexicographically above AS57344, so with both
/// crossings up the static tiebreak keeps the measured detour.
pub const BACKUP_AS: Asn = Asn(64496);

/// The committed spec file this module wraps.
pub const KLAGENFURT_SPEC_JSON: &str = include_str!("../../../specs/klagenfurt.json");

/// The committed transit-flap spec (`repro_faults`'s default campaign).
pub const KLAGENFURT_FLAP_SPEC_JSON: &str = include_str!("../../../specs/klagenfurt_flap.json");

impl TargetField {
    /// The published per-cell field encoding the paper's Figures 2 and 3.
    ///
    /// `0.0` marks the nine non-traversed cells (rendered `0.0` in
    /// Figure 2). Values are hand-assembled around the published anchors;
    /// the grand mean over traversed cells is ≈74.1 ms, matching the
    /// "≈270 % above the 20 ms requirement" claim.
    pub fn paper() -> Self {
        #[rustfmt::skip]
        let mean = vec![
            //     A      B      C      D      E      F
            vec![  0.0,  66.0,  61.0,  63.0,  68.0,   0.0], // 1
            vec![ 70.0,  64.0,  65.0,  68.0,  72.0,   0.0], // 2
            vec![ 68.0,  63.0, 110.0,  74.0,  66.0,  70.0], // 3
            vec![ 72.0,  68.0,  82.0,  78.0,  75.0,  77.0], // 4
            vec![ 73.0,  71.0,  80.0,  80.0,  95.0,  82.0], // 5
            vec![  0.0,  73.0,  75.0,  81.0,  82.0,   0.0], // 6
            vec![  0.0,   0.0,  74.0,  80.0,   0.0,   0.0], // 7
        ];
        #[rustfmt::skip]
        let std = vec![
            vec![  0.0,   6.2,   4.1,   5.5,   9.0,   0.0],
            vec![  8.5,   3.9,   5.0,   7.7,  12.3,   0.0],
            vec![  7.4,   1.8,  38.0,  11.2,   5.6,   9.8],
            vec![ 10.5,   6.8,  22.4,  15.0,  12.8,  14.2],
            vec![ 11.0,   8.2,  19.5,  18.3,  46.4,  20.1],
            vec![  0.0,   9.4,  12.6,  17.8,  21.7,   0.0],
            vec![  0.0,   0.0,  10.9,  16.4,   0.0,   0.0],
        ];
        Self::from_rows(mean, std)
    }
}

fn geo(lat: f64, lon: f64) -> PositionDef {
    PositionDef::Geo { lat, lon }
}

fn hop(name: &str, kind: &str, asn: Asn, position: PositionDef, ip: [u8; 4], rdns: &str) -> HopDef {
    HopDef {
        name: name.into(),
        kind: kind.into(),
        asn: asn.0,
        position,
        ip: Some(ip),
        rdns: Some(rdns.into()),
    }
}

fn link(a: &str, b: &str, bandwidth_bps: f64, utilisation: f64, extra_ms: f64) -> LinkDef {
    LinkDef {
        a: a.into(),
        b: b.into(),
        bandwidth_bps,
        utilisation,
        extra: DistSpec::Constant { ms: extra_ms },
    }
}

impl ScenarioSpec {
    /// The Klagenfurt spec, as code. `specs/klagenfurt.json` is this
    /// value serialised; [`Scenario::paper`] compiles the committed file.
    pub fn klagenfurt() -> Self {
        let targets = TargetField::paper();
        Self {
            name: "klagenfurt".into(),
            description: "The measured Klagenfurt infrastructure of Section IV: 6×7 grid, \
                          CGNAT operator without local peering, Vienna–Prague–Bucharest–Vienna \
                          transit chain, campus anchor, eight fixed peers, Vienna cloud"
                .into(),
            seed: 0x6B6C_7531,
            backend: "analytic".into(),
            grid: GridDef {
                origin_lat: 46.639,
                origin_lon: 14.206,
                cols: 6,
                rows: 7,
                cell_km: 1.0,
            },
            density: DensityDef {
                core_col: 2.6,
                core_row: 3.0,
                peak: 4800.0,
                decay_cells: 2.3,
                ..DensityDef::default()
            },
            targets: TargetDef::Explicit { mean: targets.mean_rows(), std: targets.std_rows() },
            skipped_cells: Vec::new(),
            calibration: CalibrationDef { label: "calibration".into(), samples: 3000 },
            hops: vec![
                // Operator (hop 1).
                hop(
                    "op-cgnat-klu",
                    "CoreRouter",
                    OP_AS,
                    geo(46.622, 14.300),
                    [10, 12, 128, 1],
                    "10.12.128.1",
                ),
                // DataPacket / CDN77, Vienna (hops 2-3).
                hop(
                    "dp-edge-vie",
                    "BorderRouter",
                    DATAPACKET_AS,
                    geo(48.210, 16.363),
                    [37, 19, 223, 61],
                    "unn-37-19-223-61.datapacket.com",
                ),
                hop(
                    "cdn77-core-vie",
                    "CoreRouter",
                    DATAPACKET_AS,
                    geo(48.203, 16.378),
                    [185, 156, 45, 138],
                    "vl204.vie-itx1-core-2.cdn77.com",
                ),
                // zet.net constellation (hops 4-6).
                hop(
                    "zetservers-prg",
                    "Ixp",
                    ZET_AS,
                    geo(50.0755, 14.4378),
                    [185, 0, 20, 31],
                    "zetservers.peering.cz",
                ),
                hop(
                    "zet-dr2-buh",
                    "CoreRouter",
                    ZET_AS,
                    geo(44.4268, 26.1025),
                    [103, 246, 249, 33],
                    "vie-dr2-cr1.zet.net",
                ),
                hop(
                    "amanet-buh",
                    "CoreRouter",
                    ZET_AS,
                    geo(44.440, 26.090),
                    [185, 104, 63, 33],
                    "amanet-cust.zet.net",
                ),
                // AS39912, Vienna (hop 7).
                hop(
                    "mx204-vie",
                    "BorderRouter",
                    IX_AS,
                    geo(48.195, 16.370),
                    [185, 211, 219, 155],
                    "ae2-97.mx204-1.ix.vie.at.as39912.net",
                ),
                // ascus.at (hops 8-9).
                hop(
                    "ascus-bras-vie",
                    "BorderRouter",
                    ASCUS_AS,
                    geo(48.220, 16.390),
                    [195, 16, 228, 3],
                    "003-228-016-195.ascus.at",
                ),
                hop(
                    "ascus-agg-klu",
                    "CoreRouter",
                    ASCUS_AS,
                    geo(46.630, 14.310),
                    [195, 16, 246, 180],
                    "180-246-016-195.ascus.at",
                ),
                // Campus anchor (hop 10), at the E3 centroid.
                hop(
                    "uni-anchor",
                    "Anchor",
                    CAMPUS_AS,
                    PositionDef::Cell { cell: "E3".into(), bearing_deg: 0.0, offset_km: 0.0 },
                    [195, 140, 139, 133],
                    "195.140.139.133",
                ),
                // Exoscale-like cloud, Vienna.
                HopDef {
                    name: "cloud-vie".into(),
                    kind: "CloudDc".into(),
                    asn: CLOUD_AS.0,
                    position: geo(48.230, 16.410),
                    ip: None,
                    rdns: None,
                },
            ],
            links: vec![
                // Operator backhaul to its (only) transit, physically
                // Klagenfurt→Vienna.
                link("op-cgnat-klu", "dp-edge-vie", 100e9, 0.50, 0.4),
                // DataPacket internal Vienna fabric.
                link("dp-edge-vie", "cdn77-core-vie", 10e9, 0.30, 0.0),
                // Vienna→Prague private peering wave towards zet.
                link("cdn77-core-vie", "zetservers-prg", 10e9, 0.55, 0.4),
                // zet internal: Prague fabric → Bucharest core.
                link("zetservers-prg", "zet-dr2-buh", 10e9, 0.60, 0.5),
                link("zet-dr2-buh", "amanet-buh", 10e9, 0.30, 0.0),
                // Bucharest → Vienna long-haul into AS39912.
                link("amanet-buh", "mx204-vie", 10e9, 0.60, 0.4),
                // AS39912 → ascus.
                link("mx204-vie", "ascus-bras-vie", 1e9, 0.40, 0.0),
                // ascus internal aggregation, Vienna → Klagenfurt.
                link("ascus-bras-vie", "ascus-agg-klu", 10e9, 0.45, 0.2),
                // ascus → campus access.
                link("ascus-agg-klu", "uni-anchor", 1e9, 0.20, 0.0),
                // ascus ↔ cloud peering in Vienna (cloud ingress pipeline
                // adds fixed processing).
                link("ascus-bras-vie", "cloud-vie", 100e9, 0.30, 2.0),
            ],
            faults: Vec::new(),
            orgs: vec![
                OrgDef {
                    asn: CLOUD_AS.0,
                    domain: "exo-cloud.net".into(),
                    cc: "at".into(),
                    style: "PlainHost".into(),
                    prefix: [194, 182],
                },
                OrgDef {
                    asn: ASCUS_AS.0,
                    domain: "ascus.at".into(),
                    cc: "at".into(),
                    style: "ReverseOctets".into(),
                    prefix: [195, 16],
                },
            ],
            as_relations: vec![
                // Operator buys transit from DataPacket.
                AsRelationDef { kind: "transit".into(), a: DATAPACKET_AS.0, b: OP_AS.0 },
                // Settlement-free at the Prague fabric.
                AsRelationDef { kind: "peering".into(), a: DATAPACKET_AS.0, b: ZET_AS.0 },
                AsRelationDef { kind: "transit".into(), a: ZET_AS.0, b: IX_AS.0 },
                AsRelationDef { kind: "transit".into(), a: IX_AS.0, b: ASCUS_AS.0 },
                AsRelationDef { kind: "transit".into(), a: ASCUS_AS.0, b: CAMPUS_AS.0 },
                // VIX peering.
                AsRelationDef { kind: "peering".into(), a: ASCUS_AS.0, b: CLOUD_AS.0 },
            ],
            ue: UeDef {
                gateway: "op-cgnat-klu".into(),
                name_prefix: "ue-".into(),
                bandwidth_bps: 1e9,
                utilisation: 0.10,
                extra: DistSpec::Constant { ms: 0.0 },
            },
            peers: PeerDef {
                cells: ["B2", "D2", "A3", "F3", "B5", "D5", "E4", "C6"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                attach: "ascus-bras-vie".into(),
                name_prefix: "peer-".into(),
                bearing_deg: 45.0,
                offset_km: 0.25,
                bandwidth_bps: 1e9,
                utilisation: 0.25,
                extra: DistSpec::Constant { ms: 0.8 },
            },
            measurement: MeasurementDef {
                anchor: "uni-anchor".into(),
                cloud: Some("cloud-vie".into()),
                reference_cell: "C2".into(),
                rdns_city: "vie".into(),
            },
            campaign: CampaignDef { seed: 2, passes: 30, sample_interval_s: 2.0 },
            workloads: WorkloadMixDef {
                reference_class: "ArGaming".into(),
                mix: vec![
                    WorkloadShareDef { class: "ArGaming".into(), share: 0.35 },
                    WorkloadShareDef { class: "VideoStreaming".into(), share: 0.25 },
                    WorkloadShareDef { class: "IotTelemetry".into(), share: 0.25 },
                    WorkloadShareDef { class: "SmartCity".into(), share: 0.15 },
                ],
            },
        }
    }

    /// The Klagenfurt transit-flap spec (`specs/klagenfurt_flap.json`):
    /// the measured infrastructure plus a backup Vienna crossing
    /// (AS64496, documentation range), with the Vienna→Prague peering
    /// wave — the detour's first long-haul segment — failing 900 s into
    /// every pass and recovering at 2500 s.
    ///
    /// Statically the backup changes nothing: both candidate AS paths
    /// through Vienna have equal length and the zet constellation
    /// (AS57344) wins the lexicographic tiebreak, so the committed golden
    /// routes are untouched. Dynamically, the fault takes the
    /// AS60068–AS57344 session down mid-campaign and the BGP speakers
    /// reconverge onto the backup crossing — probes launched during the
    /// outage skip the Prague–Bucharest detour and measure the shift; the
    /// `repro_faults` gates pin the recovery back to the unfaulted run.
    pub fn klagenfurt_flap() -> Self {
        let mut spec = Self::klagenfurt();
        spec.name = "klagenfurt_flap".into();
        spec.description = "Klagenfurt with a backup Vienna transit crossing (AS64496) and a \
                            per-pass fail/recover flap of the Vienna-Prague peering wave, \
                            exercising message-level BGP reconvergence mid-campaign"
            .into();
        spec.backend = "event".into();
        spec.campaign.passes = 8;
        spec.hops.push(hop(
            "backup-vie",
            "BorderRouter",
            BACKUP_AS,
            geo(48.201, 16.359),
            [185, 211, 219, 200],
            "ae0.backup-1.ix.vie.at.as64496.net",
        ));
        spec.links.push(link("cdn77-core-vie", "backup-vie", 10e9, 0.40, 0.1));
        spec.links.push(link("backup-vie", "mx204-vie", 10e9, 0.40, 0.1));
        spec.as_relations.push(AsRelationDef {
            kind: "peering".into(),
            a: DATAPACKET_AS.0,
            b: BACKUP_AS.0,
        });
        spec.as_relations.push(AsRelationDef {
            kind: "transit".into(),
            a: BACKUP_AS.0,
            b: IX_AS.0,
        });
        spec.faults = vec![FaultDef {
            link: ["cdn77-core-vie".into(), "zetservers-prg".into()],
            at_s: 900.0,
            recover_at_s: Some(2500.0),
        }];
        spec
    }
}

/// The committed Klagenfurt spec, parsed once.
pub fn klagenfurt_spec() -> &'static ScenarioSpec {
    static SPEC: OnceLock<ScenarioSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        ScenarioSpec::from_json(KLAGENFURT_SPEC_JSON)
            .expect("committed specs/klagenfurt.json parses")
    })
}

/// The committed Klagenfurt transit-flap spec, parsed once.
pub fn klagenfurt_flap_spec() -> &'static ScenarioSpec {
    static SPEC: OnceLock<ScenarioSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        ScenarioSpec::from_json(KLAGENFURT_FLAP_SPEC_JSON)
            .expect("committed specs/klagenfurt_flap.json parses")
    })
}

impl Scenario {
    /// Builds the Klagenfurt scenario from the committed spec file with the
    /// paper's target field.
    pub fn paper(seed: u64) -> Self {
        let mut spec = klagenfurt_spec().clone();
        spec.seed = seed;
        Self::from_spec(&spec).expect("committed Klagenfurt spec compiles")
    }

    /// Builds the Klagenfurt infrastructure against an arbitrary target
    /// field (ablations). The field must match the 6 × 7 grid.
    pub fn build(seed: u64, targets: TargetField) -> Self {
        let mut spec = klagenfurt_spec().clone();
        spec.seed = seed;
        spec.targets = TargetDef::Explicit { mean: targets.mean_rows(), std: targets.std_rows() };
        Self::from_spec(&spec).expect("Klagenfurt spec with custom targets compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::CellId;
    use sixg_netsim::radio::AccessModel;
    use sixg_netsim::routing::PathComputer;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    #[test]
    fn committed_spec_file_matches_code_constructor() {
        // The committed JSON is exactly ScenarioSpec::klagenfurt()
        // serialised; regenerate with the spec_files regenerator test in
        // tests/scenario_spec.rs after intentional model changes.
        assert_eq!(*klagenfurt_spec(), ScenarioSpec::klagenfurt());
        assert_eq!(*klagenfurt_flap_spec(), ScenarioSpec::klagenfurt_flap());
    }

    #[test]
    fn flap_spec_is_valid_and_static_routes_are_untouched() {
        let spec = klagenfurt_flap_spec();
        assert!(spec.validate().is_empty());
        // The backup crossing must not steal any static route: with both
        // Vienna crossings up, the zet constellation wins the tiebreak and
        // every cached path is exactly the measured Klagenfurt one.
        let flap = Scenario::from_spec(spec).expect("compiles");
        let base = scenario();
        assert_eq!(flap.routes.len(), base.routes.len());
        // Node ids shift (the backup hop sits between the spec hops and
        // the generated UE/peer nodes), so compare by node name.
        let names = |s: &Scenario, path: &sixg_netsim::routing::RoutedPath| {
            path.hops.iter().map(|&(n, _)| s.topo.node(n).name.clone()).collect::<Vec<_>>()
        };
        for (key, path) in &base.routes {
            let f = &flap.routes[key];
            assert_eq!(f.as_path.asns, path.as_path.asns, "AS path of {key:?}");
            assert_eq!(names(&flap, f), names(&base, path), "router path of {key:?}");
        }
    }

    #[test]
    fn thirty_three_cells_traversed() {
        let s = scenario();
        assert_eq!(s.included.len(), 33);
        assert_eq!(s.grid.len(), 42);
        assert_eq!(s.ue.len(), 33);
    }

    #[test]
    fn target_field_anchors_match_paper() {
        let t = TargetField::paper();
        assert_eq!(t.mean_of(CellId::parse("C1").unwrap()), 61.0);
        assert_eq!(t.mean_of(CellId::parse("C3").unwrap()), 110.0);
        assert_eq!(t.mean_of(CellId::parse("C2").unwrap()), 65.0);
        assert_eq!(t.std_of(CellId::parse("B3").unwrap()), 1.8);
        assert_eq!(t.std_of(CellId::parse("E5").unwrap()), 46.4);
        // Grand mean ⇒ ≈270% above the 20 ms requirement.
        let gm = t.grand_mean();
        assert!((gm - 74.1).abs() < 0.5, "grand mean {gm}");
    }

    #[test]
    fn skipped_cells_are_sparse_and_on_border() {
        let s = scenario();
        for cell in s.grid.cells() {
            if !s.targets.traversed(cell) {
                assert!(s.density.is_sparse(cell), "skipped cell {cell} should be sparse");
                assert!(s.grid.is_border(cell), "skipped cell {cell} should be on the border");
            } else {
                assert!(!s.density.is_sparse(cell), "traversed cell {cell} should be dense");
            }
        }
    }

    #[test]
    fn table1_path_has_ten_hops_with_pinned_names() {
        let s = scenario();
        let (ue, anchor) = s.table1_endpoints();
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let path = pc.route(ue, anchor).unwrap();
        assert_eq!(path.hop_count(), 10, "Table I counts 10 hops");
        let names: Vec<String> =
            path.hops.iter().map(|(n, _)| s.names.rdns(&s.topo, *n, "vie")).collect();
        assert_eq!(names[0], "10.12.128.1");
        assert_eq!(names[1], "unn-37-19-223-61.datapacket.com");
        assert_eq!(names[2], "vl204.vie-itx1-core-2.cdn77.com");
        assert_eq!(names[3], "zetservers.peering.cz");
        assert_eq!(names[4], "vie-dr2-cr1.zet.net");
        assert_eq!(names[5], "amanet-cust.zet.net");
        assert_eq!(names[6], "ae2-97.mx204-1.ix.vie.at.as39912.net");
        assert_eq!(names[7], "003-228-016-195.ascus.at");
        assert_eq!(names[8], "180-246-016-195.ascus.at");
        assert_eq!(names[9], "195.140.139.133");
    }

    #[test]
    fn anchor_sits_in_e3_less_than_5km_from_c2() {
        let s = scenario();
        assert_eq!(s.anchor_cell().label(), "E3");
        let (ue, anchor) = s.table1_endpoints();
        let d = s.topo.node(ue).pos.distance_km(s.topo.node(anchor).pos);
        assert!(d < 5.0, "paper: endpoints separated by less than 5 km, got {d}");
    }

    #[test]
    fn wire_rtt_near_41ms_for_anchor_path() {
        let s = scenario();
        let c2 = CellId::parse("C2").unwrap();
        let (mean, var) = s.wire_rtt_stats(c2, 2000);
        assert!((38.0..46.0).contains(&mean), "wire RTT mean {mean}");
        assert!(var.sqrt() < 2.0, "wire RTT σ {}", var.sqrt());
    }

    #[test]
    fn calibration_hits_anchor_cells() {
        let s = scenario();
        // For each anchor cell the calibrated access model plus the wire
        // path must reproduce the target mean/σ analytically.
        for (label, want_mean, want_std) in
            [("C1", 61.0, 4.1), ("C3", 110.0, 38.0), ("B3", 63.0, 1.8), ("E5", 95.0, 46.4)]
        {
            let cell = CellId::parse(label).unwrap();
            let (wire_mean, wire_var) = s.wire_rtt_stats(cell, 3000);
            let access = s.access_for(cell);
            let total_mean = wire_mean + access.mean_rtt_ms();
            let total_std = (wire_var + access.var_rtt_ms2()).sqrt();
            assert!(
                (total_mean - want_mean).abs() < 1.5,
                "{label}: mean {total_mean} want {want_mean}"
            );
            assert!((total_std - want_std).abs() < 2.0, "{label}: std {total_std} want {want_std}");
        }
    }

    #[test]
    fn routes_cached_for_all_cell_target_pairs() {
        let s = scenario();
        assert_eq!(s.routes.len(), 33 * 9);
        for ((cell, ti), path) in &s.routes {
            assert!(path.hop_count() >= 2, "route {cell}→{ti} too short");
            // Every mobile route must climb through the transit chain.
            assert!(path.as_path.crossings() >= 4, "route {cell}→{ti} skipped transit");
        }
    }

    #[test]
    fn cloud_reachable_from_peers_not_via_detour() {
        let s = scenario();
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let p = pc.route(s.peers[0], s.cloud.expect("Klagenfurt has a cloud")).unwrap();
        assert!(p.hop_count() <= 3, "peer→cloud hops {}", p.hop_count());
    }

    #[test]
    fn density_override_is_deterministic() {
        let a = scenario();
        let b = scenario();
        for cell in a.grid.cells() {
            assert_eq!(a.density.density(cell), b.density.density(cell));
        }
    }

    #[test]
    fn custom_target_build_respects_field() {
        let mut targets = TargetField::paper();
        let c4 = CellId::parse("C4").unwrap();
        targets.set(c4, 0.0, 0.0); // mask one more cell
        let s = Scenario::build(7, targets);
        assert_eq!(s.included.len(), 32);
        assert!(!s.ue.contains_key(&c4));
    }
}
