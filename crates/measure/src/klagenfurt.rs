//! The Klagenfurt measurement scenario — the infrastructure of Section IV.
//!
//! This module assembles everything the paper's campaign touched:
//!
//! * the **grid**: 6 × 7 cells of 1 km (Figure 1), of which 33 are
//!   traversed; the 9 skipped cells sit in low-density border regions;
//! * the **operator side**: per-cell mobile UEs behind a CGNAT gateway
//!   (Table I hop 1, `10.12.128.1`);
//! * the **transit chain** that the operator's lack of local peering
//!   forces traffic through: DataPacket/CDN77 in Vienna (hops 2–3), the
//!   zet.net constellation reached over the Prague peering fabric
//!   (hops 4–6, Bucharest), AS39912 back in Vienna (hop 7);
//! * the **local ISP** (`ascus.at`, hops 8–9) that aggregates in Vienna
//!   and finally descends to Klagenfurt;
//! * the **campus AS** hosting the RIPE-Atlas-style anchor (hop 10);
//! * eight **fixed peer nodes** in the sector (the "eight other nodes" of
//!   Section IV-B) and an Exoscale-like **Vienna cloud** used by the wired
//!   baseline;
//! * the per-cell **radio calibration**: a target mean/σ field encoding
//!   Figures 2–3 (anchors: 61 ms @ C1, 110 ms @ C3, 65 ms @ C2 for
//!   Table I, σ 1.8 @ B3, σ 46.4 @ E5, grand mean ≈ 74 ms ⇒ the paper's
//!   ≈270 % requirement exceedance), inverted through the analytic 5G
//!   access model so that the campaign *reproduces* the field rather than
//!   replaying it.

use serde::{Deserialize, Serialize};
use sixg_geo::population::SPARSE_THRESHOLD;
use sixg_geo::{CellId, City, DensityRaster, GeoPoint, GridSpec};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::names::{NameRegistry, NameStyle, OrgProfile};
use sixg_netsim::radio::{CellEnv, FiveGAccess};
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::{AsGraph, PathComputer, RoutedPath};
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
use std::collections::BTreeMap;

/// Mobile network operator (the measured 5G provider).
pub const OP_AS: Asn = Asn(25255);
/// DataPacket / CDN77 transit (Table I hops 2–3).
pub const DATAPACKET_AS: Asn = Asn(60068);
/// zet.net constellation including the Prague peering presence (hops 4–6).
pub const ZET_AS: Asn = Asn(57344);
/// The Viennese AS39912 of Table I hop 7.
pub const IX_AS: Asn = Asn(39912);
/// Local access ISP `ascus.at` (hops 8–9), upstream of the campus.
pub const ASCUS_AS: Asn = Asn(8445);
/// University campus AS hosting the anchor (hop 10).
pub const CAMPUS_AS: Asn = Asn(5383);
/// Exoscale-like Vienna cloud (the 7–12 ms wired reference of \[3\]).
pub const CLOUD_AS: Asn = Asn(61098);

/// Per-cell calibration targets encoding the paper's Figures 2 and 3.
///
/// `0.0` marks the nine non-traversed cells (rendered `0.0` in Figure 2).
/// Values are hand-assembled around the published anchors; the grand mean
/// over traversed cells is ≈74.1 ms, matching the "≈270 % above the 20 ms
/// requirement" claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetField {
    /// Mean RTL targets, ms, `[row][col]` with row 0 = row "1".
    pub mean: [[f64; 6]; 7],
    /// Standard-deviation targets, ms.
    pub std: [[f64; 6]; 7],
}

impl TargetField {
    /// The published field.
    pub fn paper() -> Self {
        #[rustfmt::skip]
        let mean = [
            // A      B      C      D      E      F
            [  0.0,  66.0,  61.0,  63.0,  68.0,   0.0], // 1
            [ 70.0,  64.0,  65.0,  68.0,  72.0,   0.0], // 2
            [ 68.0,  63.0, 110.0,  74.0,  66.0,  70.0], // 3
            [ 72.0,  68.0,  82.0,  78.0,  75.0,  77.0], // 4
            [ 73.0,  71.0,  80.0,  80.0,  95.0,  82.0], // 5
            [  0.0,  73.0,  75.0,  81.0,  82.0,   0.0], // 6
            [  0.0,   0.0,  74.0,  80.0,   0.0,   0.0], // 7
        ];
        #[rustfmt::skip]
        let std = [
            [  0.0,   6.2,   4.1,   5.5,   9.0,   0.0],
            [  8.5,   3.9,   5.0,   7.7,  12.3,   0.0],
            [  7.4,   1.8,  38.0,  11.2,   5.6,   9.8],
            [ 10.5,   6.8,  22.4,  15.0,  12.8,  14.2],
            [ 11.0,   8.2,  19.5,  18.3,  46.4,  20.1],
            [  0.0,   9.4,  12.6,  17.8,  21.7,   0.0],
            [  0.0,   0.0,  10.9,  16.4,   0.0,   0.0],
        ];
        Self { mean, std }
    }

    /// Target mean for a cell (0.0 = not traversed).
    pub fn mean_of(&self, cell: CellId) -> f64 {
        self.mean[cell.row as usize][cell.col as usize]
    }

    /// Target σ for a cell.
    pub fn std_of(&self, cell: CellId) -> f64 {
        self.std[cell.row as usize][cell.col as usize]
    }

    /// True when the cell was traversed by the campaign.
    pub fn traversed(&self, cell: CellId) -> bool {
        self.mean_of(cell) > 0.0
    }

    /// All traversed cells, row-major.
    pub fn traversed_cells(&self, grid: &GridSpec) -> Vec<CellId> {
        grid.cells().filter(|c| self.traversed(*c)).collect()
    }

    /// Grand mean over traversed cells.
    pub fn grand_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &self.mean {
            for &v in row {
                if v > 0.0 {
                    sum += v;
                    n += 1;
                }
            }
        }
        sum / n as f64
    }
}

/// The assembled scenario.
pub struct KlagenfurtScenario {
    /// Router-level topology.
    pub topo: Topology,
    /// AS business relationships.
    pub as_graph: AsGraph,
    /// Naming registry with Table-I names pinned.
    pub names: NameRegistry,
    /// The measurement grid.
    pub grid: GridSpec,
    /// Synthetic population-density raster.
    pub density: DensityRaster,
    /// Traversed cells.
    pub included: Vec<CellId>,
    /// Per-cell mobile UE.
    pub ue: BTreeMap<CellId, NodeId>,
    /// The university anchor (Table I hop 10).
    pub anchor: NodeId,
    /// The operator CGNAT gateway (Table I hop 1).
    pub gw: NodeId,
    /// The eight fixed peers of the campaign.
    pub peers: Vec<NodeId>,
    /// Vienna cloud node (wired baseline reference).
    pub cloud: NodeId,
    /// Calibration targets.
    pub targets: TargetField,
    /// Calibrated per-cell access models.
    pub access: BTreeMap<CellId, FiveGAccess>,
    /// Cached routes UE(cell) → target (anchor first, then peers).
    pub routes: BTreeMap<(CellId, usize), RoutedPath>,
    /// Scenario seed.
    pub seed: u64,
}

impl KlagenfurtScenario {
    /// Builds the scenario with the paper's target field.
    pub fn paper(seed: u64) -> Self {
        Self::build(seed, TargetField::paper())
    }

    /// Builds the scenario against an arbitrary target field (ablations).
    pub fn build(seed: u64, targets: TargetField) -> Self {
        // Grid anchored so that cell E3's centroid is the university.
        let grid = GridSpec::new(GeoPoint::new(46.639, 14.206), 6, 7, 1.0);
        let included = targets.traversed_cells(&grid);

        let mut density = DensityRaster::synth_urban(&grid, 2.6, 3.0, 4800.0, 2.3);
        // Calibration override: the synthetic monocentric profile is made
        // consistent with the traversal plan — every traversed cell is
        // dense, every skipped cell sparse (the paper ties its 0.0 cells
        // to the <1000 /km² threshold).
        for cell in grid.cells() {
            let d = density.density(cell);
            let jitter =
                (sixg_geo::mobility::mix64(seed ^ (cell.col as u64) << 8 ^ cell.row as u64) % 200)
                    as f64;
            if targets.traversed(cell) && d < SPARSE_THRESHOLD {
                density.set_density(cell, 1020.0 + jitter);
            } else if !targets.traversed(cell) && d >= SPARSE_THRESHOLD {
                density.set_density(cell, 720.0 + jitter);
            }
        }

        let (topo, names, nodes) = build_topology(&grid, &included);
        let as_graph = build_as_graph();

        let mut scenario = Self {
            grid,
            density,
            included,
            ue: nodes.ue,
            anchor: nodes.anchor,
            gw: nodes.gw,
            peers: nodes.peers,
            cloud: nodes.cloud,
            targets,
            access: BTreeMap::new(),
            routes: BTreeMap::new(),
            topo,
            as_graph,
            names,
            seed,
        };
        scenario.compute_routes();
        scenario.calibrate();
        scenario
    }

    /// Recomputes the cached routes after a topology or policy mutation
    /// (used by the recommendation engines when they add peering links or
    /// UPF breakouts).
    pub fn refresh_routes(&mut self) {
        self.routes.clear();
        self.compute_routes();
    }

    /// Measurement targets in campaign order: anchor first, then peers.
    pub fn measurement_targets(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.peers.len());
        v.push(self.anchor);
        v.extend(self.peers.iter().copied());
        v
    }

    fn compute_routes(&mut self) {
        let pc = PathComputer::new(&self.topo, &self.as_graph);
        let targets = self.measurement_targets();
        for (&cell, &ue) in &self.ue {
            for (ti, &t) in targets.iter().enumerate() {
                let path = pc
                    .route(ue, t)
                    .unwrap_or_else(|| panic!("no route from {cell} to target {ti}"));
                self.routes.insert((cell, ti), path);
            }
        }
    }

    /// Empirical wire-path RTT statistics (mean, variance) for a cell's
    /// target mixture, from `n` deterministic samples.
    pub fn wire_rtt_stats(&self, cell: CellId, n: usize) -> (f64, f64) {
        let sampler = DelaySampler::new(&self.topo);
        let targets = self.measurement_targets();
        let key = StreamKey::root(self.seed).with_label("calibration").with(cell_key(cell));
        let mut rng = SimRng::for_stream(key);
        let mut w = Welford::new();
        for i in 0..n {
            let ti = i % targets.len();
            let path = &self.routes[&(cell, ti)];
            w.push(sampler.rtt_ms(&path.hops, 64, &mut rng));
        }
        (w.mean(), w.variance())
    }

    fn calibrate(&mut self) {
        for cell in self.included.clone() {
            let (wire_mean, wire_var) = self.wire_rtt_stats(cell, 3000);
            let target_mean = self.targets.mean_of(cell);
            let target_std = self.targets.std_of(cell);
            let access_mean = (target_mean - wire_mean).max(1.0);
            let access_var = (target_std * target_std - wire_var).max(0.01);
            self.access.insert(cell, FiveGAccess::fit(access_mean, access_var.sqrt()));
        }
    }

    /// Calibrated access model for a traversed cell.
    pub fn access_for(&self, cell: CellId) -> &FiveGAccess {
        self.access.get(&cell).unwrap_or_else(|| panic!("cell {cell} not traversed / calibrated"))
    }

    /// A neutral 5G access model for nodes outside calibrated cells.
    pub fn default_access(&self) -> FiveGAccess {
        FiveGAccess::new(CellEnv::new(0.4, 0.3))
    }

    /// The Table-I endpoints: mobile UE in C2, anchor in E3.
    pub fn table1_endpoints(&self) -> (NodeId, NodeId) {
        let c2 = CellId::parse("C2").expect("static label");
        (self.ue[&c2], self.anchor)
    }

    /// The grid cell containing the anchor (E3 by construction).
    pub fn anchor_cell(&self) -> CellId {
        self.grid.locate(self.topo.node(self.anchor).pos).expect("anchor inside grid")
    }
}

fn cell_key(cell: CellId) -> u64 {
    ((cell.col as u64) << 8) | cell.row as u64
}

struct ScenarioNodes {
    ue: BTreeMap<CellId, NodeId>,
    anchor: NodeId,
    gw: NodeId,
    peers: Vec<NodeId>,
    cloud: NodeId,
}

fn build_topology(grid: &GridSpec, included: &[CellId]) -> (Topology, NameRegistry, ScenarioNodes) {
    let mut t = Topology::new();
    let mut names = NameRegistry::new();

    let prg = City::Prague.position();
    let buh = City::Bucharest.position();

    // --- Operator (hop 1) -------------------------------------------------
    let gw = t.add_node(NodeKind::CoreRouter, "op-cgnat-klu", GeoPoint::new(46.622, 14.300), OP_AS);
    names.pin_ip(gw, [10, 12, 128, 1]);
    names.pin_name(gw, "10.12.128.1");

    // --- DataPacket / CDN77, Vienna (hops 2-3) ----------------------------
    let dp_vie = t.add_node(
        NodeKind::BorderRouter,
        "dp-edge-vie",
        GeoPoint::new(48.210, 16.363),
        DATAPACKET_AS,
    );
    names.pin_ip(dp_vie, [37, 19, 223, 61]);
    names.pin_name(dp_vie, "unn-37-19-223-61.datapacket.com");
    let cdn_vie = t.add_node(
        NodeKind::CoreRouter,
        "cdn77-core-vie",
        GeoPoint::new(48.203, 16.378),
        DATAPACKET_AS,
    );
    names.pin_ip(cdn_vie, [185, 156, 45, 138]);
    names.pin_name(cdn_vie, "vl204.vie-itx1-core-2.cdn77.com");

    // --- zet.net constellation (hops 4-6) ---------------------------------
    let zet_prg = t.add_node(NodeKind::Ixp, "zetservers-prg", prg, ZET_AS);
    names.pin_ip(zet_prg, [185, 0, 20, 31]);
    names.pin_name(zet_prg, "zetservers.peering.cz");
    let zet_buh = t.add_node(NodeKind::CoreRouter, "zet-dr2-buh", buh, ZET_AS);
    names.pin_ip(zet_buh, [103, 246, 249, 33]);
    names.pin_name(zet_buh, "vie-dr2-cr1.zet.net");
    let amanet_buh =
        t.add_node(NodeKind::CoreRouter, "amanet-buh", GeoPoint::new(44.440, 26.090), ZET_AS);
    names.pin_ip(amanet_buh, [185, 104, 63, 33]);
    names.pin_name(amanet_buh, "amanet-cust.zet.net");

    // --- AS39912, Vienna (hop 7) ------------------------------------------
    let ix_vie =
        t.add_node(NodeKind::BorderRouter, "mx204-vie", GeoPoint::new(48.195, 16.370), IX_AS);
    names.pin_ip(ix_vie, [185, 211, 219, 155]);
    names.pin_name(ix_vie, "ae2-97.mx204-1.ix.vie.at.as39912.net");

    // --- ascus.at (hops 8-9) ----------------------------------------------
    let ascus_vie = t.add_node(
        NodeKind::BorderRouter,
        "ascus-bras-vie",
        GeoPoint::new(48.220, 16.390),
        ASCUS_AS,
    );
    names.pin_ip(ascus_vie, [195, 16, 228, 3]);
    names.pin_name(ascus_vie, "003-228-016-195.ascus.at");
    let ascus_klu =
        t.add_node(NodeKind::CoreRouter, "ascus-agg-klu", GeoPoint::new(46.630, 14.310), ASCUS_AS);
    names.pin_ip(ascus_klu, [195, 16, 246, 180]);
    names.pin_name(ascus_klu, "180-246-016-195.ascus.at");

    // --- Campus anchor (hop 10) -------------------------------------------
    let e3 = CellId::parse("E3").expect("static label");
    let anchor = t.add_node(NodeKind::Anchor, "uni-anchor", grid.centroid(e3), CAMPUS_AS);
    names.pin_ip(anchor, [195, 140, 139, 133]);
    names.pin_name(anchor, "195.140.139.133");

    // --- Exoscale-like cloud, Vienna --------------------------------------
    let cloud = t.add_node(NodeKind::CloudDc, "cloud-vie", GeoPoint::new(48.230, 16.410), CLOUD_AS);
    names.register_org(
        CLOUD_AS,
        OrgProfile {
            domain: "exo-cloud.net".into(),
            cc: "at".into(),
            style: NameStyle::PlainHost,
            prefix: [194, 182],
        },
    );

    // --- Links -------------------------------------------------------------
    // Operator backhaul to its (only) transit, physically Klagenfurt→Vienna.
    t.add_link(gw, dp_vie, LinkParams { bandwidth_bps: 100e9, utilisation: 0.50, extra_ms: 0.4 });
    // DataPacket internal Vienna fabric.
    t.add_link(dp_vie, cdn_vie, LinkParams::backbone());
    // Vienna→Prague private peering wave towards zet.
    t.add_link(
        cdn_vie,
        zet_prg,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.55, extra_ms: 0.4 },
    );
    // zet internal: Prague fabric → Bucharest core.
    t.add_link(
        zet_prg,
        zet_buh,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.60, extra_ms: 0.5 },
    );
    t.add_link(zet_buh, amanet_buh, LinkParams::backbone());
    // Bucharest → Vienna long-haul into AS39912.
    t.add_link(
        amanet_buh,
        ix_vie,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.60, extra_ms: 0.4 },
    );
    // AS39912 → ascus.
    t.add_link(ix_vie, ascus_vie, LinkParams::metro());
    // ascus internal aggregation, Vienna → Klagenfurt.
    t.add_link(
        ascus_vie,
        ascus_klu,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.45, extra_ms: 0.2 },
    );
    // ascus → campus access.
    t.add_link(ascus_klu, anchor, LinkParams::access_wired());
    // ascus ↔ cloud peering in Vienna (cloud ingress pipeline adds fixed
    // processing).
    t.add_link(
        ascus_vie,
        cloud,
        LinkParams { bandwidth_bps: 100e9, utilisation: 0.30, extra_ms: 2.0 },
    );

    // --- Mobile UEs (one per traversed cell) -------------------------------
    let mut ue = BTreeMap::new();
    for &cell in included {
        let id = t.add_node(
            NodeKind::UserEquipment,
            format!("ue-{}", cell.label().to_lowercase()),
            grid.centroid(cell),
            OP_AS,
        );
        t.add_link(id, gw, LinkParams { bandwidth_bps: 1e9, utilisation: 0.10, extra_ms: 0.0 });
        ue.insert(cell, id);
    }

    // --- Fixed peers: residential nodes in the sector, BRAS in Vienna -----
    names.register_org(
        ASCUS_AS,
        OrgProfile {
            domain: "ascus.at".into(),
            cc: "at".into(),
            style: NameStyle::ReverseOctets,
            prefix: [195, 16],
        },
    );
    let peer_cells = ["B2", "D2", "A3", "F3", "B5", "D5", "E4", "C6"];
    let mut peers = Vec::with_capacity(peer_cells.len());
    for (i, label) in peer_cells.iter().enumerate() {
        let cell = CellId::parse(label).expect("static label");
        // Offset peers slightly from centroids so they are not co-located
        // with the mobile UE of the same cell.
        let pos = grid.centroid(cell).destination(45.0, 0.25);
        let id = t.add_node(NodeKind::Server, format!("peer-{}", i + 1), pos, ASCUS_AS);
        // Residential access aggregates at the Vienna BRAS (hub-and-spoke,
        // the classic Austrian access-network layout the paper's wired
        // 1-11 ms band reflects).
        t.add_link(
            id,
            ascus_vie,
            LinkParams { bandwidth_bps: 1e9, utilisation: 0.25, extra_ms: 0.8 },
        );
        peers.push(id);
    }

    (t, names, ScenarioNodes { ue, anchor, gw, peers, cloud })
}

fn build_as_graph() -> AsGraph {
    let mut g = AsGraph::new();
    g.add_transit(DATAPACKET_AS, OP_AS); // operator buys transit from DataPacket
    g.add_peering(DATAPACKET_AS, ZET_AS); // settlement-free at the Prague fabric
    g.add_transit(ZET_AS, IX_AS);
    g.add_transit(IX_AS, ASCUS_AS);
    g.add_transit(ASCUS_AS, CAMPUS_AS);
    g.add_peering(ASCUS_AS, CLOUD_AS); // VIX peering
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_netsim::radio::AccessModel;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    #[test]
    fn thirty_three_cells_traversed() {
        let s = scenario();
        assert_eq!(s.included.len(), 33);
        assert_eq!(s.grid.len(), 42);
        assert_eq!(s.ue.len(), 33);
    }

    #[test]
    fn target_field_anchors_match_paper() {
        let t = TargetField::paper();
        assert_eq!(t.mean_of(CellId::parse("C1").unwrap()), 61.0);
        assert_eq!(t.mean_of(CellId::parse("C3").unwrap()), 110.0);
        assert_eq!(t.mean_of(CellId::parse("C2").unwrap()), 65.0);
        assert_eq!(t.std_of(CellId::parse("B3").unwrap()), 1.8);
        assert_eq!(t.std_of(CellId::parse("E5").unwrap()), 46.4);
        // Grand mean ⇒ ≈270% above the 20 ms requirement.
        let gm = t.grand_mean();
        assert!((gm - 74.1).abs() < 0.5, "grand mean {gm}");
    }

    #[test]
    fn skipped_cells_are_sparse_and_on_border() {
        let s = scenario();
        for cell in s.grid.cells() {
            if !s.targets.traversed(cell) {
                assert!(s.density.is_sparse(cell), "skipped cell {cell} should be sparse");
                assert!(s.grid.is_border(cell), "skipped cell {cell} should be on the border");
            } else {
                assert!(!s.density.is_sparse(cell), "traversed cell {cell} should be dense");
            }
        }
    }

    #[test]
    fn table1_path_has_ten_hops_with_pinned_names() {
        let s = scenario();
        let (ue, anchor) = s.table1_endpoints();
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let path = pc.route(ue, anchor).unwrap();
        assert_eq!(path.hop_count(), 10, "Table I counts 10 hops");
        let names: Vec<String> =
            path.hops.iter().map(|(n, _)| s.names.rdns(&s.topo, *n, "vie")).collect();
        assert_eq!(names[0], "10.12.128.1");
        assert_eq!(names[1], "unn-37-19-223-61.datapacket.com");
        assert_eq!(names[2], "vl204.vie-itx1-core-2.cdn77.com");
        assert_eq!(names[3], "zetservers.peering.cz");
        assert_eq!(names[4], "vie-dr2-cr1.zet.net");
        assert_eq!(names[5], "amanet-cust.zet.net");
        assert_eq!(names[6], "ae2-97.mx204-1.ix.vie.at.as39912.net");
        assert_eq!(names[7], "003-228-016-195.ascus.at");
        assert_eq!(names[8], "180-246-016-195.ascus.at");
        assert_eq!(names[9], "195.140.139.133");
    }

    #[test]
    fn anchor_sits_in_e3_less_than_5km_from_c2() {
        let s = scenario();
        assert_eq!(s.anchor_cell().label(), "E3");
        let (ue, anchor) = s.table1_endpoints();
        let d = s.topo.node(ue).pos.distance_km(s.topo.node(anchor).pos);
        assert!(d < 5.0, "paper: endpoints separated by less than 5 km, got {d}");
    }

    #[test]
    fn wire_rtt_near_41ms_for_anchor_path() {
        let s = scenario();
        let c2 = CellId::parse("C2").unwrap();
        let (mean, var) = s.wire_rtt_stats(c2, 2000);
        assert!((38.0..46.0).contains(&mean), "wire RTT mean {mean}");
        assert!(var.sqrt() < 2.0, "wire RTT σ {}", var.sqrt());
    }

    #[test]
    fn calibration_hits_anchor_cells() {
        let s = scenario();
        // For each anchor cell the calibrated access model plus the wire
        // path must reproduce the target mean/σ analytically.
        for (label, want_mean, want_std) in
            [("C1", 61.0, 4.1), ("C3", 110.0, 38.0), ("B3", 63.0, 1.8), ("E5", 95.0, 46.4)]
        {
            let cell = CellId::parse(label).unwrap();
            let (wire_mean, wire_var) = s.wire_rtt_stats(cell, 3000);
            let access = s.access_for(cell);
            let total_mean = wire_mean + access.mean_rtt_ms();
            let total_std = (wire_var + access.var_rtt_ms2()).sqrt();
            assert!(
                (total_mean - want_mean).abs() < 1.5,
                "{label}: mean {total_mean} want {want_mean}"
            );
            assert!((total_std - want_std).abs() < 2.0, "{label}: std {total_std} want {want_std}");
        }
    }

    #[test]
    fn routes_cached_for_all_cell_target_pairs() {
        let s = scenario();
        assert_eq!(s.routes.len(), 33 * 9);
        for ((cell, ti), path) in &s.routes {
            assert!(path.hop_count() >= 2, "route {cell}→{ti} too short");
            // Every mobile route must climb through the transit chain.
            assert!(path.as_path.crossings() >= 4, "route {cell}→{ti} skipped transit");
        }
    }

    #[test]
    fn cloud_reachable_from_peers_not_via_detour() {
        let s = scenario();
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let p = pc.route(s.peers[0], s.cloud).unwrap();
        assert!(p.hop_count() <= 3, "peer→cloud hops {}", p.hop_count());
    }

    #[test]
    fn density_override_is_deterministic() {
        let a = scenario();
        let b = scenario();
        for cell in a.grid.cells() {
            assert_eq!(a.density.density(cell), b.density.density(cell));
        }
    }
}
