//! Formal agreement metrics between a campaign result and a target field.
//!
//! The golden tests assert individual anchors; this module quantifies
//! *field-level* agreement (RMSE, maximum absolute deviation, rank
//! agreement of the extremes) so reproduction quality is a number, not a
//! collection of spot checks. `repro_all`-style harnesses and the
//! calibration ablation use it.

use crate::aggregate::CellField;
use crate::klagenfurt::TargetField;
use serde::{Deserialize, Serialize};

/// Agreement metrics for one statistic of the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldAgreement {
    /// Root-mean-square error over traversed cells.
    pub rmse: f64,
    /// Maximum absolute deviation and the number of cells compared.
    pub max_abs: f64,
    /// Cells compared.
    pub cells: usize,
    /// Whether the minimum lands on the same cell as the target.
    pub min_cell_matches: bool,
    /// Whether the maximum lands on the same cell as the target.
    pub max_cell_matches: bool,
}

fn agreement(
    pairs: impl Iterator<Item = (f64, f64)>,
    min_match: bool,
    max_match: bool,
) -> FieldAgreement {
    let mut sq = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut n = 0usize;
    for (target, measured) in pairs {
        let d = measured - target;
        sq += d * d;
        max_abs = max_abs.max(d.abs());
        n += 1;
    }
    FieldAgreement {
        rmse: if n > 0 { (sq / n as f64).sqrt() } else { 0.0 },
        max_abs,
        cells: n,
        min_cell_matches: min_match,
        max_cell_matches: max_match,
    }
}

/// Mean-field agreement between a measured campaign and its targets.
pub fn mean_agreement(field: &CellField, targets: &TargetField) -> FieldAgreement {
    let grid = field.grid().clone();
    let (min, max) = field.mean_extrema().expect("non-empty field");
    let (tmin, tmax) = target_extrema(targets, &grid, |t, c| t.mean_of(c));
    agreement(
        grid.cells()
            .filter(|c| targets.traversed(*c))
            .map(|c| (targets.mean_of(c), field.stats(c).mean_ms)),
        min.cell == tmin,
        max.cell == tmax,
    )
}

/// σ-field agreement between a measured campaign and its targets.
pub fn std_agreement(field: &CellField, targets: &TargetField) -> FieldAgreement {
    let grid = field.grid().clone();
    let (min, max) = field.std_extrema().expect("non-empty field");
    let (tmin, tmax) = target_extrema(targets, &grid, |t, c| t.std_of(c));
    agreement(
        grid.cells()
            .filter(|c| targets.traversed(*c))
            .map(|c| (targets.std_of(c), field.stats(c).std_ms)),
        min.cell == tmin,
        max.cell == tmax,
    )
}

fn target_extrema(
    targets: &TargetField,
    grid: &sixg_geo::GridSpec,
    value: impl Fn(&TargetField, sixg_geo::CellId) -> f64,
) -> (sixg_geo::CellId, sixg_geo::CellId) {
    let cells: Vec<_> = grid.cells().filter(|c| targets.traversed(*c)).collect();
    let min = *cells
        .iter()
        .min_by(|a, b| value(targets, **a).total_cmp(&value(targets, **b)))
        .expect("traversed cells");
    let max = *cells
        .iter()
        .max_by(|a, b| value(targets, **a).total_cmp(&value(targets, **b)))
        .expect("traversed cells");
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, MobileCampaign};
    use crate::klagenfurt::KlagenfurtScenario;
    use std::sync::OnceLock;

    fn scenario() -> &'static KlagenfurtScenario {
        static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
        S.get_or_init(|| KlagenfurtScenario::paper(0x6B6C_7531))
    }

    #[test]
    fn dense_campaign_field_agrees_with_paper() {
        let s = scenario();
        let field = MobileCampaign::new(s, CampaignConfig::dense(6)).run();
        let mean = mean_agreement(&field, &s.targets);
        assert_eq!(mean.cells, 33);
        assert!(mean.rmse < 1.2, "mean RMSE {}", mean.rmse);
        assert!(mean.max_abs < 3.0, "mean max dev {}", mean.max_abs);
        assert!(mean.min_cell_matches && mean.max_cell_matches);

        let std = std_agreement(&field, &s.targets);
        assert!(std.rmse < 2.0, "σ RMSE {}", std.rmse);
        assert!(std.min_cell_matches && std.max_cell_matches);
    }

    #[test]
    fn sparse_campaign_agrees_more_loosely() {
        let s = scenario();
        let one_pass = MobileCampaign::new(s, CampaignConfig::default()).run();
        let dense = MobileCampaign::new(s, CampaignConfig::dense(6)).run();
        let loose = mean_agreement(&one_pass, &s.targets);
        let tight = mean_agreement(&dense, &s.targets);
        assert!(tight.rmse < loose.rmse, "dense {} vs sparse {}", tight.rmse, loose.rmse);
    }

    #[test]
    fn perfect_field_has_zero_error() {
        let s = scenario();
        let mut field = CellField::new(s.grid.clone());
        for cell in s.grid.cells() {
            if s.targets.traversed(cell) {
                // Constant samples at exactly the target mean.
                for _ in 0..20 {
                    field.push(cell, s.targets.mean_of(cell));
                }
            }
        }
        let mean = mean_agreement(&field, &s.targets);
        assert!(mean.rmse < 1e-9);
        assert!(mean.max_abs < 1e-9);
    }
}
