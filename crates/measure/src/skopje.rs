//! A second measurement scenario: Skopje (projected).
//!
//! The paper's future work (Section VI): "our future work will expand the
//! geographical scope of the evaluation to include diverse regions,
//! environments, and network conditions." The author team spans the
//! University of Klagenfurt and Mother Teresa University in Skopje, so the
//! natural second site is Skopje — this module builds it with the same
//! machinery as [`crate::klagenfurt`].
//!
//! **This scenario is projected, not measured**: no published per-cell
//! field exists, so the target field is generated from an explicit model
//! (a Balkan-region latency floor, a north-west→south-east urban gradient,
//! and one congested hotspot) and documented as such. What the scenario
//! demonstrates is *framework generality*: a different grid, a different
//! AS constellation (regional transit via Sofia-like and Vienna PoPs, a
//! Frankfurt hairpin instead of the Bucharest one), the same campaign,
//! calibration, and recommendation pipeline.

use serde::{Deserialize, Serialize};
use sixg_geo::{CellId, City, GeoPoint, GridSpec};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::names::NameRegistry;
use sixg_netsim::radio::FiveGAccess;
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::{AsGraph, PathComputer, RoutedPath};
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
use std::collections::BTreeMap;

/// Macedonian mobile operator (projected).
pub const MK_OP_AS: Asn = Asn(43612);
/// Regional transit with a Vienna PoP.
pub const TRANSIT_VIE_AS: Asn = Asn(8447);
/// Pan-European carrier with the Frankfurt hairpin.
pub const CARRIER_FRA_AS: Asn = Asn(3320);
/// Local Skopje access ISP.
pub const MK_ISP_AS: Asn = Asn(34547);
/// Mother Teresa University campus.
pub const UNT_AS: Asn = Asn(200_002);

/// The projected per-cell field model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProjectedField {
    /// Latency floor for the region, ms (longer transit legs than
    /// Klagenfurt's 61 ms floor).
    pub floor_ms: f64,
    /// Gradient amplitude across the grid diagonal, ms.
    pub gradient_ms: f64,
    /// Hotspot peak on top of the floor, ms.
    pub hotspot_ms: f64,
    /// Hotspot cell.
    pub hotspot: CellId,
}

impl Default for ProjectedField {
    fn default() -> Self {
        Self {
            floor_ms: 66.0,
            gradient_ms: 22.0,
            hotspot_ms: 26.0,
            hotspot: CellId::new(2, 2), // C3
        }
    }
}

impl ProjectedField {
    /// Projected mean RTL of a cell, ms.
    pub fn mean_of(&self, grid: &GridSpec, cell: CellId) -> f64 {
        let diag = (cell.col as f64 / (grid.cols - 1).max(1) as f64
            + cell.row as f64 / (grid.rows - 1).max(1) as f64)
            / 2.0;
        let hotspot = if cell == self.hotspot { self.hotspot_ms } else { 0.0 };
        self.floor_ms + self.gradient_ms * diag + hotspot
    }

    /// Projected σ: proportional to the load above the floor (congested
    /// cells are also jittery, and the access model couples a high mean to a
    /// proportionally heavy tail — the coupling the Klagenfurt field shows),
    /// floored at 2 ms.
    pub fn std_of(&self, grid: &GridSpec, cell: CellId) -> f64 {
        (0.75 * (self.mean_of(grid, cell) - self.floor_ms)).max(2.0)
    }
}

/// The projected Skopje scenario.
pub struct SkopjeScenario {
    /// Router-level topology.
    pub topo: Topology,
    /// AS relationships.
    pub as_graph: AsGraph,
    /// Naming registry (generated names; nothing to pin).
    pub names: NameRegistry,
    /// 5 × 6 grid of 1 km cells over central Skopje.
    pub grid: GridSpec,
    /// Traversed cells (border cells skipped, as in Klagenfurt).
    pub included: Vec<CellId>,
    /// Per-cell UEs.
    pub ue: BTreeMap<CellId, NodeId>,
    /// University anchor.
    pub anchor: NodeId,
    /// Operator gateway.
    pub gw: NodeId,
    /// The projection used for calibration.
    pub field: ProjectedField,
    /// Calibrated per-cell access models.
    pub access: BTreeMap<CellId, FiveGAccess>,
    /// Cached routes UE → anchor.
    pub routes: BTreeMap<CellId, RoutedPath>,
    /// Scenario seed.
    pub seed: u64,
}

impl SkopjeScenario {
    /// Builds the projected scenario.
    pub fn projected(seed: u64) -> Self {
        let grid = GridSpec::new(GeoPoint::new(42.02, 21.38), 5, 6, 1.0);
        // Skip the four corners plus two border cells: 24 traversed.
        let skipped: Vec<CellId> = ["A1", "E1", "A6", "E6", "C1", "A4"]
            .iter()
            .map(|l| CellId::parse(l).expect("static label"))
            .collect();
        let included: Vec<CellId> = grid.cells().filter(|c| !skipped.contains(c)).collect();

        let (topo, names, gw, anchor, ue) = build_topology(&grid, &included);
        let as_graph = build_as_graph();

        let mut scenario = Self {
            topo,
            as_graph,
            names,
            grid,
            included,
            ue,
            anchor,
            gw,
            field: ProjectedField::default(),
            access: BTreeMap::new(),
            routes: BTreeMap::new(),
            seed,
        };
        scenario.calibrate();
        scenario
    }

    fn calibrate(&mut self) {
        let pc = PathComputer::new(&self.topo, &self.as_graph);
        for &cell in &self.included.clone() {
            let ue = self.ue[&cell];
            let path = pc.route(ue, self.anchor).expect("anchor routable");
            let sampler = DelaySampler::new(&self.topo);
            let key = StreamKey::root(self.seed)
                .with_label("skopje-cal")
                .with(cell.col as u64)
                .with(cell.row as u64);
            let mut rng = SimRng::for_stream(key);
            let mut w = Welford::new();
            for _ in 0..1500 {
                w.push(sampler.rtt_ms(&path.hops, 64, &mut rng));
            }
            let mean_t = self.field.mean_of(&self.grid, cell);
            let std_t = self.field.std_of(&self.grid, cell);
            let access_mean = (mean_t - w.mean()).max(1.0);
            let access_var = (std_t * std_t - w.variance()).max(0.01);
            self.access.insert(cell, FiveGAccess::fit(access_mean, access_var.sqrt()));
            self.routes.insert(cell, path);
        }
    }

    /// Runs a campaign: `samples_per_cell` pings from every traversed
    /// cell to the anchor, aggregated per cell.
    pub fn run_campaign(&self, samples_per_cell: usize, seed: u64) -> crate::CellField {
        use sixg_netsim::radio::AccessModel;
        let mut field = crate::CellField::new(self.grid.clone());
        let sampler = DelaySampler::new(&self.topo);
        for &cell in &self.included {
            let access = &self.access[&cell];
            let path = &self.routes[&cell];
            let key = StreamKey::root(self.seed)
                .with_label("skopje-campaign")
                .with(seed)
                .with(((cell.col as u64) << 8) | cell.row as u64);
            let mut rng = SimRng::for_stream(key);
            for _ in 0..samples_per_cell {
                let rtt = sampler.rtt_ms(&path.hops, 64, &mut rng) + access.sample_rtt_ms(&mut rng);
                field.push(cell, rtt);
            }
        }
        field
    }
}

fn build_topology(
    grid: &GridSpec,
    included: &[CellId],
) -> (Topology, NameRegistry, NodeId, NodeId, BTreeMap<CellId, NodeId>) {
    let mut t = Topology::new();
    let names = NameRegistry::new();

    let skp = City::Skopje.position();
    let vie = City::Vienna.position();
    let fra = City::Frankfurt.position();

    let gw = t.add_node(NodeKind::CoreRouter, "mk-cgnat-skp", skp, MK_OP_AS);
    let tr_vie = t.add_node(NodeKind::BorderRouter, "transit-vie", vie, TRANSIT_VIE_AS);
    let carrier_fra = t.add_node(NodeKind::CoreRouter, "carrier-fra", fra, CARRIER_FRA_AS);
    let carrier_vie = t.add_node(
        NodeKind::CoreRouter,
        "carrier-vie",
        GeoPoint::new(48.21, 16.39),
        CARRIER_FRA_AS,
    );
    let isp_skp =
        t.add_node(NodeKind::CoreRouter, "mk-isp-skp", GeoPoint::new(42.00, 21.43), MK_ISP_AS);
    let e3 = CellId::parse("C3").expect("static label");
    let anchor = t.add_node(NodeKind::Anchor, "unt-anchor", grid.centroid(e3), UNT_AS);

    // Operator backhaul lands in Vienna (regional transit), the carrier
    // hairpins via Frankfurt before descending to the local ISP.
    t.add_link(gw, tr_vie, LinkParams { bandwidth_bps: 40e9, utilisation: 0.55, extra_ms: 0.6 });
    t.add_link(tr_vie, carrier_vie, LinkParams::transit_loaded());
    t.add_link(
        carrier_vie,
        carrier_fra,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.55, extra_ms: 0.5 },
    );
    t.add_link(
        carrier_fra,
        isp_skp,
        LinkParams { bandwidth_bps: 10e9, utilisation: 0.60, extra_ms: 0.6 },
    );
    t.add_link(isp_skp, anchor, LinkParams::access_wired());

    let mut ue = BTreeMap::new();
    for &cell in included {
        let id = t.add_node(
            NodeKind::UserEquipment,
            format!("mk-ue-{}", cell.label().to_lowercase()),
            grid.centroid(cell),
            MK_OP_AS,
        );
        t.add_link(id, gw, LinkParams { bandwidth_bps: 1e9, utilisation: 0.10, extra_ms: 0.0 });
        ue.insert(cell, id);
    }

    (t, names, gw, anchor, ue)
}

fn build_as_graph() -> AsGraph {
    let mut g = AsGraph::new();
    g.add_transit(TRANSIT_VIE_AS, MK_OP_AS);
    g.add_peering(TRANSIT_VIE_AS, CARRIER_FRA_AS);
    g.add_transit(CARRIER_FRA_AS, MK_ISP_AS);
    g.add_transit(MK_ISP_AS, UNT_AS);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn scenario() -> &'static SkopjeScenario {
        static S: OnceLock<SkopjeScenario> = OnceLock::new();
        S.get_or_init(|| SkopjeScenario::projected(7))
    }

    #[test]
    fn twenty_four_cells_traversed() {
        let s = scenario();
        assert_eq!(s.grid.len(), 30);
        assert_eq!(s.included.len(), 24);
        assert_eq!(s.access.len(), 24);
    }

    #[test]
    fn skopje_flow_also_detours_internationally() {
        let s = scenario();
        let c3 = CellId::parse("C3").unwrap();
        let path = &s.routes[&c3];
        // Skopje → Vienna → Frankfurt → Skopje: thousands of km for a
        // local flow, mirroring the Klagenfurt finding in a new region.
        assert!(path.hop_count() >= 5, "hops {}", path.hop_count());
        let km = path.route_km(&s.topo);
        assert!(km > 2500.0, "route {km} km");
        let direct = s.topo.node(s.ue[&c3]).pos.distance_km(s.topo.node(s.anchor).pos);
        assert!(direct < 10.0);
    }

    #[test]
    fn campaign_reproduces_projected_field() {
        let s = scenario();
        let field = s.run_campaign(400, 1);
        for &cell in &s.included {
            let stats = field.stats(cell);
            let want = s.field.mean_of(&s.grid, cell);
            assert!(
                (stats.mean_ms - want).abs() < 3.0,
                "cell {cell}: {} vs projected {want}",
                stats.mean_ms
            );
        }
        // The hotspot is the max.
        let (_, max) = field.mean_extrema().unwrap();
        assert_eq!(max.cell, s.field.hotspot);
    }

    #[test]
    fn projected_band_is_above_klagenfurt_floor() {
        let s = scenario();
        let field = s.run_campaign(300, 2);
        let (min, max) = field.mean_extrema().unwrap();
        assert!(min.mean_ms > 62.0, "min {}", min.mean_ms);
        assert!(max.mean_ms < 140.0, "max {}", max.mean_ms);
        assert!(field.grand_mean_ms() > 70.0);
    }

    #[test]
    fn local_peering_also_fixes_skopje() {
        let mut s = SkopjeScenario::projected(7);
        let c3 = CellId::parse("C3").unwrap();
        let ue = s.ue[&c3];
        let isp = s.topo.find_by_name("mk-isp-skp").unwrap();
        s.topo.add_link(
            s.gw,
            isp,
            LinkParams { bandwidth_bps: 100e9, utilisation: 0.15, extra_ms: 0.05 },
        );
        s.as_graph.add_peering(MK_OP_AS, MK_ISP_AS);
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let path = pc.route(ue, s.anchor).expect("routable");
        assert!(path.hop_count() <= 3, "hops {}", path.hop_count());
        assert!(path.route_km(&s.topo) < 30.0);
    }

    #[test]
    fn deterministic_build() {
        let a = SkopjeScenario::projected(9);
        let b = SkopjeScenario::projected(9);
        for cell in &a.included {
            assert_eq!(a.access[cell].env.load.to_bits(), b.access[cell].env.load.to_bits());
        }
    }
}
