//! A second measurement scenario: Skopje (projected).
//!
//! The paper's future work (Section VI): "our future work will expand the
//! geographical scope of the evaluation to include diverse regions,
//! environments, and network conditions." The author team spans the
//! University of Klagenfurt and Mother Teresa University in Skopje, so the
//! natural second site is Skopje — a thin wrapper over the committed spec
//! file `specs/skopje.json`, compiled by the same
//! [`crate::scenario::Scenario`] machinery as Klagenfurt.
//!
//! **This scenario is projected, not measured**: no published per-cell
//! field exists, so the target field is generated from an explicit model
//! (a Balkan-region latency floor, a north-west→south-east urban gradient,
//! and one congested hotspot — the spec's `projected` target kind) and
//! documented as such. What the scenario demonstrates is *framework
//! generality*: a different grid, a different AS constellation (regional
//! transit via a Vienna PoP, a Frankfurt hairpin instead of the Bucharest
//! one), the same campaign, calibration, and recommendation pipeline.

use crate::scenario::Scenario;
use crate::spec::{
    AsRelationDef, CalibrationDef, CampaignDef, DensityDef, GridDef, HopDef, LinkDef,
    MeasurementDef, PeerDef, PositionDef, ScenarioSpec, TargetDef, UeDef, WorkloadMixDef,
    WorkloadShareDef,
};
use sixg_netsim::dist::DistSpec;
use sixg_netsim::topology::Asn;
use std::sync::OnceLock;

/// The Skopje scenario is the generic [`Scenario`], compiled from
/// `specs/skopje.json`.
pub type SkopjeScenario = Scenario;

/// Macedonian mobile operator (projected).
pub const MK_OP_AS: Asn = Asn(43612);
/// Regional transit with a Vienna PoP.
pub const TRANSIT_VIE_AS: Asn = Asn(8447);
/// Pan-European carrier with the Frankfurt hairpin.
pub const CARRIER_FRA_AS: Asn = Asn(3320);
/// Local Skopje access ISP.
pub const MK_ISP_AS: Asn = Asn(34547);
/// Mother Teresa University campus.
pub const UNT_AS: Asn = Asn(200_002);

/// The committed spec file this module wraps.
pub const SKOPJE_SPEC_JSON: &str = include_str!("../../../specs/skopje.json");

fn geo(lat: f64, lon: f64) -> PositionDef {
    PositionDef::Geo { lat, lon }
}

fn bare_hop(name: &str, kind: &str, asn: Asn, position: PositionDef) -> HopDef {
    HopDef { name: name.into(), kind: kind.into(), asn: asn.0, position, ip: None, rdns: None }
}

fn link(a: &str, b: &str, bandwidth_bps: f64, utilisation: f64, extra_ms: f64) -> LinkDef {
    LinkDef {
        a: a.into(),
        b: b.into(),
        bandwidth_bps,
        utilisation,
        extra: DistSpec::Constant { ms: extra_ms },
    }
}

impl ScenarioSpec {
    /// The projected Skopje spec, as code. `specs/skopje.json` is this
    /// value serialised; [`Scenario::projected`] compiles the committed
    /// file.
    pub fn skopje() -> Self {
        Self {
            name: "skopje".into(),
            description: "Projected partner-site scenario over central Skopje: 5×6 grid, \
                          regional transit via a Vienna PoP with a Frankfurt hairpin, \
                          Mother Teresa University anchor; target field generated from a \
                          floor+gradient+hotspot model (not measured)"
                .into(),
            seed: 7,
            backend: "analytic".into(),
            grid: GridDef { origin_lat: 42.02, origin_lon: 21.38, cols: 5, rows: 6, cell_km: 1.0 },
            density: DensityDef {
                core_col: 2.0,
                core_row: 2.5,
                peak: 5200.0,
                decay_cells: 2.4,
                ..DensityDef::default()
            },
            // Parameters sit inside the 5G access model's reachable
            // envelope (mean vs σ): the calibration inverts exactly, with
            // ≥5 ms of headroom below the load-saturation ceiling.
            targets: TargetDef::Projected {
                floor_ms: 66.0,
                gradient_ms: 22.0,
                hotspot_ms: 14.0,
                hotspot: "C3".into(),
                std_factor: 1.0,
                std_floor_ms: 2.0,
            },
            // Skip the four corners plus two border cells: 24 traversed.
            skipped_cells: ["A1", "E1", "A6", "E6", "C1", "A4"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            calibration: CalibrationDef { label: "skopje-cal".into(), samples: 1500 },
            hops: vec![
                bare_hop("mk-cgnat-skp", "CoreRouter", MK_OP_AS, geo(41.9981, 21.4254)),
                bare_hop("transit-vie", "BorderRouter", TRANSIT_VIE_AS, geo(48.2082, 16.3738)),
                bare_hop("carrier-fra", "CoreRouter", CARRIER_FRA_AS, geo(50.1109, 8.6821)),
                bare_hop("carrier-vie", "CoreRouter", CARRIER_FRA_AS, geo(48.21, 16.39)),
                bare_hop("mk-isp-skp", "CoreRouter", MK_ISP_AS, geo(42.00, 21.43)),
                bare_hop(
                    "unt-anchor",
                    "Anchor",
                    UNT_AS,
                    PositionDef::Cell { cell: "C3".into(), bearing_deg: 0.0, offset_km: 0.0 },
                ),
            ],
            links: vec![
                // Operator backhaul lands in Vienna (regional transit), the
                // carrier hairpins via Frankfurt before descending to the
                // local ISP.
                link("mk-cgnat-skp", "transit-vie", 40e9, 0.55, 0.6),
                link("transit-vie", "carrier-vie", 10e9, 0.65, 0.5),
                link("carrier-vie", "carrier-fra", 10e9, 0.55, 0.5),
                link("carrier-fra", "mk-isp-skp", 10e9, 0.60, 0.6),
                link("mk-isp-skp", "unt-anchor", 1e9, 0.20, 0.0),
            ],
            faults: Vec::new(),
            orgs: Vec::new(),
            as_relations: vec![
                AsRelationDef { kind: "transit".into(), a: TRANSIT_VIE_AS.0, b: MK_OP_AS.0 },
                AsRelationDef { kind: "peering".into(), a: TRANSIT_VIE_AS.0, b: CARRIER_FRA_AS.0 },
                AsRelationDef { kind: "transit".into(), a: CARRIER_FRA_AS.0, b: MK_ISP_AS.0 },
                AsRelationDef { kind: "transit".into(), a: MK_ISP_AS.0, b: UNT_AS.0 },
            ],
            ue: UeDef {
                gateway: "mk-cgnat-skp".into(),
                name_prefix: "mk-ue-".into(),
                bandwidth_bps: 1e9,
                utilisation: 0.10,
                extra: DistSpec::Constant { ms: 0.0 },
            },
            peers: PeerDef::none(),
            measurement: MeasurementDef {
                anchor: "unt-anchor".into(),
                cloud: None,
                reference_cell: "C3".into(),
                rdns_city: "skp".into(),
            },
            campaign: CampaignDef { seed: 1, passes: 4, sample_interval_s: 2.0 },
            workloads: WorkloadMixDef {
                reference_class: "ArGaming".into(),
                mix: vec![
                    WorkloadShareDef { class: "ArGaming".into(), share: 0.5 },
                    WorkloadShareDef { class: "IotTelemetry".into(), share: 0.5 },
                ],
            },
        }
    }
}

/// The committed Skopje spec, parsed once.
pub fn skopje_spec() -> &'static ScenarioSpec {
    static SPEC: OnceLock<ScenarioSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        ScenarioSpec::from_json(SKOPJE_SPEC_JSON).expect("committed specs/skopje.json parses")
    })
}

impl Scenario {
    /// Builds the projected Skopje scenario from the committed spec file.
    pub fn projected(seed: u64) -> Self {
        let mut spec = skopje_spec().clone();
        spec.seed = seed;
        Self::from_spec(&spec).expect("committed Skopje spec compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::CellId;
    use sixg_netsim::routing::PathComputer;
    use sixg_netsim::topology::LinkParams;
    use std::sync::OnceLock;

    fn scenario() -> &'static SkopjeScenario {
        static S: OnceLock<SkopjeScenario> = OnceLock::new();
        S.get_or_init(|| SkopjeScenario::projected(7))
    }

    #[test]
    fn committed_spec_file_matches_code_constructor() {
        assert_eq!(*skopje_spec(), ScenarioSpec::skopje());
    }

    #[test]
    fn twenty_four_cells_traversed() {
        let s = scenario();
        assert_eq!(s.grid.len(), 30);
        assert_eq!(s.included.len(), 24);
        assert_eq!(s.access.len(), 24);
    }

    #[test]
    fn skopje_flow_also_detours_internationally() {
        let s = scenario();
        let c3 = CellId::parse("C3").unwrap();
        let path = &s.routes[&(c3, 0)];
        // Skopje → Vienna → Frankfurt → Skopje: thousands of km for a
        // local flow, mirroring the Klagenfurt finding in a new region.
        assert!(path.hop_count() >= 5, "hops {}", path.hop_count());
        let km = path.route_km(&s.topo);
        assert!(km > 2500.0, "route {km} km");
        let direct = s.topo.node(s.ue[&c3]).pos.distance_km(s.topo.node(s.anchor).pos);
        assert!(direct < 10.0);
    }

    #[test]
    fn campaign_reproduces_projected_field() {
        let s = scenario();
        let field = s.run_uniform_campaign(400, 1);
        for &cell in &s.included {
            let stats = field.stats(cell);
            let want = s.targets.mean_of(cell);
            assert!(
                (stats.mean_ms - want).abs() < 3.0,
                "cell {cell}: {} vs projected {want}",
                stats.mean_ms
            );
        }
        // The hotspot is the max.
        let (_, max) = field.mean_extrema().unwrap();
        assert_eq!(max.cell, CellId::parse("C3").unwrap());
    }

    #[test]
    fn projected_band_is_above_klagenfurt_floor() {
        let s = scenario();
        let field = s.run_uniform_campaign(300, 2);
        let (min, max) = field.mean_extrema().unwrap();
        assert!(min.mean_ms > 62.0, "min {}", min.mean_ms);
        assert!(max.mean_ms < 140.0, "max {}", max.mean_ms);
        assert!(field.grand_mean_ms() > 70.0);
    }

    #[test]
    fn local_peering_also_fixes_skopje() {
        let mut s = SkopjeScenario::projected(7);
        let c3 = CellId::parse("C3").unwrap();
        let ue = s.ue[&c3];
        let isp = s.topo.find_by_name("mk-isp-skp").unwrap();
        s.topo.add_link(
            s.gw,
            isp,
            LinkParams { bandwidth_bps: 100e9, utilisation: 0.15, extra_ms: 0.05 },
        );
        s.as_graph.add_peering(MK_OP_AS, MK_ISP_AS);
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let path = pc.route(ue, s.anchor).expect("routable");
        assert!(path.hop_count() <= 3, "hops {}", path.hop_count());
        assert!(path.route_km(&s.topo) < 30.0);
    }

    #[test]
    fn deterministic_build() {
        let a = SkopjeScenario::projected(9);
        let b = SkopjeScenario::projected(9);
        for cell in &a.included {
            assert_eq!(a.access[cell].env.load.to_bits(), b.access[cell].env.load.to_bits());
        }
    }
}
