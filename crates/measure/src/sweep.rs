//! Declarative parameter sweeps: one spec file → a campaign matrix.
//!
//! The paper's headline numbers come from *sweeps* — cadence, density and
//! topology variations around the measured baseline — yet a single
//! [`ScenarioSpec`] describes exactly one campaign. A [`SweepSpec`] lifts
//! that to a family: it names a **base** scenario spec plus a list of typed
//! **axes**, and the cross product of the axes' values compiles — through
//! the ordinary [`Scenario::from_spec`] pipeline — into an
//! order-deterministic list of campaign variants:
//!
//! * [`AxisDef::Override`] — a JSON-path parameter override applied to the
//!   base spec's value tree (`$.campaign.sample_interval_s`,
//!   `$.links[3].extra.mean_ms`, `$.ue.bandwidth_bps`, …). The path must
//!   resolve in the base spec; a path that doesn't is a validation error
//!   anchored at the axis.
//! * [`AxisDef::Backend`] — execution-backend selection: `analytic`,
//!   `event`, or `both` (which expands, in order, to analytic then event).
//! * [`AxisDef::Seeds`] — a contiguous campaign-seed range
//!   (`start .. start + count`).
//! * [`AxisDef::DensityScale`] — multiplies the base spec's density peak
//!   (`$.density.peak`), scaling the population raster and with it the
//!   dwell-time profile of the traversal.
//!
//! **Variant ordering contract.** Variants enumerate the axis cross
//! product like an odometer with the *last* axis fastest: axis 0 varies
//! slowest, the final axis increments on every consecutive variant. The
//! order — and therefore every variant index, label and random stream — is
//! a pure function of the sweep spec, which is what makes sweep reports
//! reproducible bit for bit.
//!
//! **Execution.** [`Sweep::run`] flattens the base campaign plus every
//! variant into one global `(run, pass, cell)` work list and drives it
//! through the same streaming skeleton the single-campaign runners use
//! ([`crate::parallel`]), so the thread pool stays saturated across
//! variant boundaries and — because batches fold back in work-list order —
//! the whole matrix is bitwise deterministic at every pool size. Results
//! stream into per-variant [`CellField`] accumulators (Welford state, not
//! sample buffers): memory is bounded by `variants × cells` accumulators
//! plus one `STREAM_CHUNK` (1024-item) window of in-flight sample batches,
//! never by the total sample count.
//!
//! Scenario compilation is deduplicated: variants that differ only in
//! campaign parameters (seed, passes, cadence) or backend share one
//! compiled — and calibrated — [`Scenario`].

use crate::aggregate::CellField;
use crate::campaign::{CampaignConfig, MobileCampaign, Shard};
use crate::event_backend::{crossval_tolerance_ms, EventCampaign, CROSSVAL_GRAND_MEAN_TOL};
use crate::exec::ScenarioCache;
use crate::faults::{FaultCampaign, FaultShard};
use crate::parallel::run_items_streaming;
use crate::report::CellSummary;
use crate::scenario::Scenario;
use crate::spec::{
    parse_backend, CampaignDef, Ctx, ErrorCode, ExecBackend, ScenarioSpec, SpecError,
};
use serde::{Serialize, Value};
use std::sync::Arc;

/// Default latency requirement the sweep's exceedance figures are judged
/// against, ms — the paper's AR-gaming bound (the "270 %" reference).
pub const DEFAULT_REQUIREMENT_MS: f64 = 20.0;

/// Hard cap on the size of one sweep matrix; a cross product beyond this
/// is almost certainly a typo'd axis, and the validation error says so.
pub const MAX_VARIANTS: usize = 4096;

/// Backend selection of a [`AxisDef::Backend`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSelect {
    /// Only the closed-form analytic backend.
    Analytic,
    /// Only the packet-level event backend.
    Event,
    /// Both, in the order analytic then event (the cross-validation pair).
    Both,
}

impl BackendSelect {
    /// The backends this selection expands to, in variant order.
    pub fn backends(self) -> &'static [ExecBackend] {
        match self {
            BackendSelect::Analytic => &[ExecBackend::Analytic],
            BackendSelect::Event => &[ExecBackend::Event],
            BackendSelect::Both => &[ExecBackend::Analytic, ExecBackend::Event],
        }
    }

    /// The spec-level tag.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendSelect::Analytic => "analytic",
            BackendSelect::Event => "event",
            BackendSelect::Both => "both",
        }
    }
}

/// One typed sweep axis (see the module docs for semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum AxisDef {
    /// JSON-path parameter override into the base spec's value tree.
    Override {
        /// The path, rooted at `$` (`$.campaign.sample_interval_s`).
        path: String,
        /// The values the parameter sweeps over, in variant order.
        values: Vec<Value>,
    },
    /// Execution-backend selection.
    Backend {
        /// Which backend(s) to run.
        select: BackendSelect,
    },
    /// Contiguous campaign-seed range `start .. start + count`.
    Seeds {
        /// First campaign seed.
        start: u64,
        /// Number of seeds.
        count: u32,
    },
    /// Multiplies the base spec's `$.density.peak` by each factor.
    DensityScale {
        /// Scale factors, in variant order.
        factors: Vec<f64>,
    },
}

impl AxisDef {
    /// Number of values this axis contributes to the cross product.
    pub fn len(&self) -> usize {
        match self {
            AxisDef::Override { values, .. } => values.len(),
            AxisDef::Backend { select } => select.backends().len(),
            AxisDef::Seeds { count, .. } => *count as usize,
            AxisDef::DensityScale { factors } => factors.len(),
        }
    }

    /// True when the axis has no values (rejected by validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spec element this axis targets — two axes with the same target
    /// would fight over one parameter, so duplicates are rejected.
    pub fn target(&self) -> &str {
        match self {
            AxisDef::Override { path, .. } => path,
            AxisDef::Backend { .. } => "$.backend",
            AxisDef::Seeds { .. } => "$.campaign.seed",
            AxisDef::DensityScale { .. } => "$.density.peak",
        }
    }

    /// Human-readable `target=value` label of one choice on this axis.
    fn choice_label(&self, choice: usize) -> String {
        match self {
            AxisDef::Override { path, values } => {
                format!("{path}={}", value_label(&values[choice]))
            }
            AxisDef::Backend { select } => {
                format!("$.backend={}", select.backends()[choice])
            }
            AxisDef::Seeds { start, .. } => format!("$.campaign.seed={}", start + choice as u64),
            AxisDef::DensityScale { factors } => format!("$.density.peak×{}", factors[choice]),
        }
    }
}

fn value_label(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<value>".into())
}

impl Serialize for AxisDef {
    fn to_value(&self) -> Value {
        match self {
            AxisDef::Override { path, values } => Value::Object(vec![
                ("kind".into(), Value::String("override".into())),
                ("path".into(), Value::String(path.clone())),
                ("values".into(), Value::Array(values.clone())),
            ]),
            AxisDef::Backend { select } => Value::Object(vec![
                ("kind".into(), Value::String("backend".into())),
                ("select".into(), Value::String(select.as_str().into())),
            ]),
            AxisDef::Seeds { start, count } => Value::Object(vec![
                ("kind".into(), Value::String("seeds".into())),
                ("start".into(), Value::U64(*start)),
                ("count".into(), Value::U64(*count as u64)),
            ]),
            AxisDef::DensityScale { factors } => Value::Object(vec![
                ("kind".into(), Value::String("density_scale".into())),
                ("factors".into(), Value::Array(factors.iter().map(|&f| Value::F64(f)).collect())),
            ]),
        }
    }
}

/// The declarative sweep description: a base scenario spec plus the axes
/// whose cross product becomes the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (`"klagenfurt_cadence"`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Base scenario spec file, relative to the sweep file's directory
    /// (resolved by [`Sweep::from_file`]; callers of [`Sweep::new`] supply
    /// the base JSON themselves and may leave this as a label).
    pub base: String,
    /// Latency requirement the exceedance figures are judged against, ms.
    pub requirement_ms: f64,
    /// The sweep axes, slowest-varying first.
    pub axes: Vec<AxisDef>,
}

impl Serialize for SweepSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            ("description".into(), Value::String(self.description.clone())),
            ("base".into(), Value::String(self.base.clone())),
            ("requirement_ms".into(), Value::F64(self.requirement_ms)),
            ("axes".into(), Value::Array(self.axes.iter().map(Serialize::to_value).collect())),
        ])
    }
}

fn decode_axis(c: &Ctx) -> Result<AxisDef, SpecError> {
    match c.field("kind")?.str()? {
        "override" => Ok(AxisDef::Override {
            path: c.field("path")?.string()?,
            values: c.field("values")?.array()?.into_iter().map(|x| x.v.clone()).collect(),
        }),
        "backend" => {
            let sel = c.field("select")?;
            Ok(AxisDef::Backend {
                select: match sel.str()? {
                    "analytic" => BackendSelect::Analytic,
                    "event" => BackendSelect::Event,
                    "both" => BackendSelect::Both,
                    other => {
                        return Err(sel.err(format!(
                            "unknown backend selection {other:?} (expected analytic, event or both)"
                        )))
                    }
                },
            })
        }
        "seeds" => {
            Ok(AxisDef::Seeds { start: c.field("start")?.u64()?, count: c.field("count")?.u32()? })
        }
        "density_scale" => Ok(AxisDef::DensityScale {
            factors: c
                .field("factors")?
                .array()?
                .into_iter()
                .map(|x| x.f64())
                .collect::<Result<_, _>>()?,
        }),
        other => Err(c.field("kind")?.err(format!(
            "unknown axis kind {other:?} (expected override, backend, seeds or density_scale)"
        ))),
    }
}

impl SweepSpec {
    /// Decodes a sweep spec from a parsed JSON value tree.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let c = Ctx::root(v);
        if c.v.as_object().is_none() {
            return Err(c.type_err("object"));
        }
        Ok(Self {
            name: c.field("name")?.string()?,
            description: c.opt("description").map_or(Ok(String::new()), |x| x.string())?,
            base: c.field("base")?.string()?,
            requirement_ms: c
                .opt("requirement_ms")
                .map_or(Ok(DEFAULT_REQUIREMENT_MS), |x| x.f64())?,
            axes: c.field("axes")?.array()?.iter().map(decode_axis).collect::<Result<_, _>>()?,
        })
    }

    /// Parses a sweep spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = serde_json::from_str(text).map_err(|e| {
            SpecError::coded(ErrorCode::InvalidJson, "$", format!("invalid JSON: {e}"))
        })?;
        Self::from_value(&v)
    }

    /// Serialises to pretty JSON (round-trips exactly).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep spec serialises")
    }

    /// Number of variants the cross product compiles to (1 for no axes —
    /// the degenerate sweep is exactly the base campaign).
    pub fn variant_count(&self) -> usize {
        self.axes.iter().map(AxisDef::len).product()
    }

    /// Checks every sweep-level invariant; returns all violations (empty =
    /// valid). Resolution of override paths against the *base* spec happens
    /// in [`Sweep::new`], which has the base value tree in hand.
    ///
    /// Applies the in-memory [`MAX_VARIANTS`] cap; checkpointed execution
    /// lifts it via [`Self::validate_with_cap`] (`None`).
    pub fn validate(&self) -> Vec<SpecError> {
        self.validate_with_cap(Some(MAX_VARIANTS))
    }

    /// [`Self::validate`] with an explicit variant cap. `None` removes the
    /// cap entirely — the regime of checkpointed sweeps, where accumulators
    /// spill to disk instead of living in one address space. Every *other*
    /// invariant (axis shapes, override paths, duplicate targets) is checked
    /// identically, so an over-cap sweep that passes here is a valid sweep
    /// that merely needs `--checkpoint`, not a broken one.
    pub fn validate_with_cap(&self, cap: Option<usize>) -> Vec<SpecError> {
        let mut errors = Vec::new();
        let mut err = |path: &str, message: String| errors.push(SpecError::new(path, message));

        if self.name.is_empty() {
            err("$.name", "sweep name must not be empty".into());
        }
        if self.base.is_empty() {
            err("$.base", "sweep needs a base scenario spec".into());
        }
        if !(self.requirement_ms.is_finite() && self.requirement_ms > 0.0) {
            err(
                "$.requirement_ms",
                format!("requirement must be positive, got {}", self.requirement_ms),
            );
        }

        let mut targets: Vec<(usize, &str)> = Vec::new();
        for (i, axis) in self.axes.iter().enumerate() {
            let path = format!("$.axes[{i}]");
            if axis.is_empty() {
                err(&path, "axis has no values — a sweep axis needs at least one".into());
            }
            match axis {
                AxisDef::Override { path: p, .. } => {
                    if let Err(m) = parse_json_path(p) {
                        err(&format!("{path}.path"), m);
                    }
                }
                AxisDef::DensityScale { factors } => {
                    for (j, &f) in factors.iter().enumerate() {
                        if !(f.is_finite() && f > 0.0) {
                            err(
                                &format!("{path}.factors[{j}]"),
                                format!("scale factor must be positive, got {f}"),
                            );
                        }
                    }
                }
                AxisDef::Backend { .. } | AxisDef::Seeds { .. } => {}
            }
            let target = axis.target();
            if let Some((j, _)) = targets.iter().find(|(_, t)| *t == target) {
                err(
                    &path,
                    format!("duplicate axis target `{target}` (already swept by $.axes[{j}])"),
                );
            }
            targets.push((i, target));
        }

        if let Some(cap) = cap {
            if self.variant_count() > cap {
                err(
                    "$.axes",
                    format!(
                        "cross product of {} variants exceeds the {cap}-variant in-memory cap — \
                         the sweep itself is valid; run it with `sixg-cli sweep --checkpoint DIR` \
                         (which lifts the cap by spilling to disk) or split it",
                        self.variant_count()
                    ),
                );
            }
        }
        errors
    }
}

// ---------------------------------------------------------------------------
// JSON-path override machinery.
// ---------------------------------------------------------------------------

/// One segment of a `$.a.b[3].c` override path.
#[derive(Debug, Clone, PartialEq)]
enum Seg {
    Field(String),
    Index(usize),
}

/// Parses an override path (`$`, then `.member` and `[index]` segments).
fn parse_json_path(path: &str) -> Result<Vec<Seg>, String> {
    let rest = path
        .strip_prefix('$')
        .ok_or_else(|| format!("override path must start with `$`, got {path:?}"))?;
    let mut segs = Vec::new();
    let mut chars = rest.char_indices().peekable();
    while let Some((i, ch)) = chars.next() {
        match ch {
            '.' => {
                let start = i + 1;
                let mut end = rest.len();
                for (j, c) in rest[start..].char_indices() {
                    if c == '.' || c == '[' {
                        end = start + j;
                        break;
                    }
                }
                if start == end {
                    return Err(format!("empty member name in override path {path:?}"));
                }
                segs.push(Seg::Field(rest[start..end].to_string()));
                while chars.peek().is_some_and(|&(j, _)| j < end) {
                    chars.next();
                }
            }
            '[' => {
                let start = i + 1;
                let end = rest[start..]
                    .find(']')
                    .map(|j| start + j)
                    .ok_or_else(|| format!("unclosed `[` in override path {path:?}"))?;
                let idx: usize = rest[start..end]
                    .parse()
                    .map_err(|_| format!("bad array index {:?} in {path:?}", &rest[start..end]))?;
                segs.push(Seg::Index(idx));
                while chars.peek().is_some_and(|&(j, _)| j <= end) {
                    chars.next();
                }
            }
            other => return Err(format!("unexpected {other:?} in override path {path:?}")),
        }
    }
    if segs.is_empty() {
        return Err(format!("override path {path:?} selects the whole spec — name a parameter"));
    }
    Ok(segs)
}

/// Resolves a parsed path to the value it names, mutably. Fails — naming
/// the first unresolvable prefix — when the base spec has no such element;
/// overrides *replace* existing parameters, they never invent new ones.
fn resolve_mut<'v>(root: &'v mut Value, segs: &[Seg]) -> Result<&'v mut Value, String> {
    let mut cur = root;
    let mut at = String::from("$");
    for seg in segs {
        cur = match seg {
            Seg::Field(name) => match cur {
                Value::Object(pairs) => match pairs.iter_mut().find(|(k, _)| k == name) {
                    Some((_, v)) => v,
                    None => return Err(format!("base spec has no member `{name}` at {at}")),
                },
                other => {
                    return Err(format!(
                        "{at} is {} in the base spec, not an object",
                        other.type_name()
                    ))
                }
            },
            Seg::Index(i) => match cur {
                Value::Array(xs) => {
                    let len = xs.len();
                    match xs.get_mut(*i) {
                        Some(v) => v,
                        None => {
                            return Err(format!("index {i} out of bounds at {at} (length {len})"))
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "{at} is {} in the base spec, not an array",
                        other.type_name()
                    ))
                }
            },
        };
        match seg {
            Seg::Field(name) => {
                at.push('.');
                at.push_str(name);
            }
            Seg::Index(i) => at.push_str(&format!("[{i}]")),
        }
    }
    Ok(cur)
}

// ---------------------------------------------------------------------------
// Compiled sweeps.
// ---------------------------------------------------------------------------

/// One compiled variant of the matrix: the spec with its axis choices
/// applied, ready to run.
#[derive(Debug, Clone)]
pub struct SweepVariant {
    /// Human-readable label (`"$.campaign.sample_interval_s=1 · …"`).
    pub label: String,
    /// Per-axis `target=value` labels, in axis order.
    pub settings: Vec<String>,
    /// Per-axis choice indices, in axis order (the odometer digits).
    pub choices: Vec<usize>,
    /// The variant's full scenario spec.
    pub spec: ScenarioSpec,
    /// Execution backend of this variant.
    pub backend: ExecBackend,
    /// Campaign configuration (the variant spec's seed policy).
    pub config: CampaignConfig,
}

/// A validated sweep: the sweep spec plus its parsed base scenario.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The sweep description.
    pub spec: SweepSpec,
    /// The parsed base scenario spec.
    pub base: ScenarioSpec,
    /// The base spec's raw value tree (override axes mutate clones of it).
    base_value: Value,
}

impl Sweep {
    /// Builds a sweep from a sweep spec and the base scenario's JSON text.
    ///
    /// Validates the sweep spec, the base spec, *and* every override path
    /// against the base — an axis whose path does not resolve is reported
    /// here, anchored at `$.axes[i].path`. Applies the in-memory
    /// [`MAX_VARIANTS`] cap; checkpointed callers use
    /// [`Self::new_unbounded`].
    pub fn new(spec: SweepSpec, base_json: &str) -> Result<Self, SpecError> {
        Self::new_with_cap(spec, base_json, Some(MAX_VARIANTS))
    }

    /// [`Self::new`] without the variant cap — for checkpointed execution,
    /// where per-variant accumulators spill to disk (`measure::store`)
    /// instead of all living in memory at once.
    pub fn new_unbounded(spec: SweepSpec, base_json: &str) -> Result<Self, SpecError> {
        Self::new_with_cap(spec, base_json, None)
    }

    fn new_with_cap(
        spec: SweepSpec,
        base_json: &str,
        cap: Option<usize>,
    ) -> Result<Self, SpecError> {
        if let Some(e) = spec.validate_with_cap(cap).into_iter().next() {
            return Err(e);
        }
        let base_value = serde_json::from_str(base_json).map_err(|e| {
            SpecError::coded(ErrorCode::InvalidJson, "$", format!("base spec is invalid JSON: {e}"))
        })?;
        let base = ScenarioSpec::from_value(&base_value)?;
        if let Some(e) = base.validate().into_iter().next() {
            return Err(SpecError::new(
                e.path,
                format!("base spec `{}`: {}", spec.base, e.message),
            ));
        }
        let mut probe = base_value.clone();
        for (i, axis) in spec.axes.iter().enumerate() {
            if let AxisDef::Override { path, .. } = axis {
                let segs = parse_json_path(path).expect("validated above");
                if let Err(m) = resolve_mut(&mut probe, &segs) {
                    return Err(SpecError::new(
                        format!("$.axes[{i}].path"),
                        format!("override path {path} does not resolve: {m}"),
                    ));
                }
            }
        }
        Ok(Self { spec, base, base_value })
    }

    /// The base spec's raw value tree — the exact form override axes
    /// mutate and wire requests carry as `$.base` (sending a
    /// re-canonicalised tree instead could perturb override resolution,
    /// so distributed executions ship this one).
    pub fn base_value(&self) -> &Value {
        &self.base_value
    }

    /// Builds a sweep from sweep-file JSON text, resolving its `base`
    /// reference relative to `dir` — the single-read path for callers
    /// that already have the sweep text in hand (the CLI reads the file
    /// once to classify IO errors, then hands the text here).
    pub fn from_json_in_dir(
        text: &str,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Self, SpecError> {
        Self::from_json_in_dir_with_cap(text, dir, Some(MAX_VARIANTS))
    }

    /// [`Self::from_json_in_dir`] without the variant cap (checkpointed
    /// execution).
    pub fn from_json_in_dir_unbounded(
        text: &str,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Self, SpecError> {
        Self::from_json_in_dir_with_cap(text, dir, None)
    }

    fn from_json_in_dir_with_cap(
        text: &str,
        dir: impl AsRef<std::path::Path>,
        cap: Option<usize>,
    ) -> Result<Self, SpecError> {
        let spec = SweepSpec::from_json(text)?;
        let base_path = dir.as_ref().join(&spec.base);
        let base_json = std::fs::read_to_string(&base_path).map_err(|e| {
            SpecError::coded(
                ErrorCode::Io,
                "$.base",
                format!("cannot read base spec {}: {e}", base_path.display()),
            )
        })?;
        Self::new_with_cap(spec, &base_json, cap)
    }

    /// Loads a sweep file, resolving its `base` relative to the sweep
    /// file's own directory.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            SpecError::coded(
                ErrorCode::Io,
                "$",
                format!("cannot read sweep file {}: {e}", path.display()),
            )
        })?;
        Self::from_json_in_dir(&text, path.parent().unwrap_or(std::path::Path::new(".")))
    }

    /// [`Self::from_file`] without the variant cap (checkpointed execution).
    pub fn from_file_unbounded(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            SpecError::coded(
                ErrorCode::Io,
                "$",
                format!("cannot read sweep file {}: {e}", path.display()),
            )
        })?;
        Self::from_json_in_dir_with_cap(
            &text,
            path.parent().unwrap_or(std::path::Path::new(".")),
            None,
        )
    }

    /// Compiles variant `v` of the cross product (odometer order, last axis
    /// fastest — see the module docs). A pure function of the sweep spec and
    /// the index, so callers can stream the matrix without materialising it.
    pub fn variant_at(&self, v: usize) -> Result<SweepVariant, SpecError> {
        let axes = &self.spec.axes;
        let counts: Vec<usize> = axes.iter().map(AxisDef::len).collect();

        // Odometer decomposition: last axis fastest.
        let mut choices = vec![0usize; axes.len()];
        let mut rem = v;
        for ai in (0..axes.len()).rev() {
            choices[ai] = rem % counts[ai];
            rem /= counts[ai];
        }

        // Generic JSON-path overrides mutate the base value tree …
        let mut tree = self.base_value.clone();
        for (axis, &choice) in axes.iter().zip(&choices) {
            if let AxisDef::Override { path, values } = axis {
                let segs = parse_json_path(path).expect("validated path");
                let slot = resolve_mut(&mut tree, &segs).expect("resolved in Sweep::new");
                *slot = values[choice].clone();
            }
        }
        let mut spec = ScenarioSpec::from_value(&tree)?;

        // … typed axes mutate the decoded spec directly.
        for (axis, &choice) in axes.iter().zip(&choices) {
            match axis {
                AxisDef::Override { .. } => {}
                AxisDef::Backend { select } => {
                    spec.backend = select.backends()[choice].as_str().into();
                }
                AxisDef::Seeds { start, .. } => {
                    spec.campaign.seed = start + choice as u64;
                }
                AxisDef::DensityScale { factors } => {
                    spec.density.peak *= factors[choice];
                }
            }
        }

        let settings: Vec<String> =
            axes.iter().zip(&choices).map(|(axis, &choice)| axis.choice_label(choice)).collect();
        let label = if settings.is_empty() { "base".to_string() } else { settings.join(" · ") };

        if let Some(e) = spec.validate().into_iter().next() {
            return Err(SpecError::new(e.path, format!("variant `{label}`: {}", e.message)));
        }
        let backend = parse_backend(&spec.backend).expect("validated backend");
        let config = CampaignConfig {
            seed: spec.campaign.seed,
            sample_interval_s: spec.campaign.sample_interval_s,
            passes: spec.campaign.passes,
        };
        Ok(SweepVariant { label, settings, choices, spec, backend, config })
    }

    /// Compiles the axis cross product into the ordered variant list (see
    /// the module docs for the ordering contract).
    pub fn variants(&self) -> Result<Vec<SweepVariant>, SpecError> {
        (0..self.spec.variant_count()).map(|v| self.variant_at(v)).collect()
    }

    /// Builds the execution plan: deduplicated compiled scenarios plus one
    /// [`RunMeta`] per run — run 0 is the base spec exactly as `sixg-cli
    /// run` would execute it, runs `1..=N` the variants in odometer order.
    /// This is the shared front half of in-memory, checkpointed and merge
    /// execution; variants stream through the interner one at a time, so
    /// peak memory is O(unique scenarios + labels), not O(variants × spec).
    pub(crate) fn plan(&self) -> Result<RunPlan, SpecError> {
        self.plan_with_cache(None)
    }

    /// [`Self::plan`] with an optional shared [`ScenarioCache`]: compiled
    /// scenarios whose canonical key is already cached are reused instead
    /// of recompiled — the `sixg-serve` hot path. Compilation is a pure
    /// function of the canonical spec, so a cached plan's scenarios — and
    /// every downstream bit — are identical to a cold plan's.
    pub(crate) fn plan_with_cache(
        &self,
        mut cache: Option<&mut ScenarioCache>,
    ) -> Result<RunPlan, SpecError> {
        // Scenario compilation, deduplicated on everything except campaign
        // parameters and backend (which `compile` does not consume): a
        // cadence × backend × seed sweep calibrates its site exactly once.
        let mut canon: Vec<ScenarioSpec> = Vec::new();
        let mut scenarios: Vec<Arc<Scenario>> = Vec::new();
        fn intern(
            spec: &ScenarioSpec,
            canon: &mut Vec<ScenarioSpec>,
            scenarios: &mut Vec<Arc<Scenario>>,
            cache: &mut Option<&mut ScenarioCache>,
        ) -> Result<usize, SpecError> {
            let mut key = spec.clone();
            key.campaign = CampaignDef::default();
            key.backend = "analytic".into();
            if let Some(i) = canon.iter().position(|k| *k == key) {
                return Ok(i);
            }
            canon.push(key);
            scenarios.push(match cache.as_deref_mut() {
                Some(c) => c.get_or_compile(spec)?,
                None => Arc::new(Scenario::from_spec(spec)?),
            });
            Ok(scenarios.len() - 1)
        }

        let base_backend = parse_backend(&self.base.backend).expect("validated base");
        let base_config = CampaignConfig {
            seed: self.base.campaign.seed,
            sample_interval_s: self.base.campaign.sample_interval_s,
            passes: self.base.campaign.passes,
        };
        let total = self.spec.variant_count();
        let mut runs = Vec::with_capacity(total + 1);
        runs.push(RunMeta {
            scen: intern(&self.base, &mut canon, &mut scenarios, &mut cache)?,
            backend: base_backend,
            config: base_config,
            label: "base".into(),
            settings: Vec::new(),
            choices: Vec::new(),
        });
        for v in 0..total {
            let var = self.variant_at(v)?;
            runs.push(RunMeta {
                scen: intern(&var.spec, &mut canon, &mut scenarios, &mut cache)?,
                backend: var.backend,
                config: var.config,
                label: var.label,
                settings: var.settings,
                choices: var.choices,
            });
        }
        let backend_axis = self.spec.axes.iter().position(|a| matches!(a, AxisDef::Backend { .. }));
        Ok(RunPlan { scenarios, runs, backend_axis })
    }

    /// Runs the whole matrix — base campaign plus every variant — on the
    /// thread pool and folds the results into a streaming [`SweepReport`].
    pub fn run(&self) -> Result<SweepRun, SpecError> {
        let plan = self.plan()?;
        let runners = plan.runners();
        let items = plan.items(&runners);
        let mut fields: Vec<CellField> =
            (0..plan.runs.len()).map(|r| CellField::new(plan.grid_of(r).clone())).collect();
        run_items_streaming(
            &items,
            |(ri, shard), buf| runners[ri as usize].collect_shard_into(shard, buf),
            |(ri, shard), buf| {
                let field = &mut fields[ri as usize];
                for &v in buf {
                    field.push(shard.cell, v);
                }
            },
        );
        Ok(plan.build_sweep_run(self, fields))
    }
}

/// One run of the compiled matrix (run 0 is the base campaign).
#[derive(Debug, Clone)]
pub(crate) struct RunMeta {
    /// Index into [`RunPlan::scenarios`].
    pub(crate) scen: usize,
    /// Execution backend.
    pub(crate) backend: ExecBackend,
    /// Campaign configuration.
    pub(crate) config: CampaignConfig,
    /// Variant label (`"base"` for run 0).
    pub(crate) label: String,
    /// Per-axis `target=value` settings (empty for run 0).
    pub(crate) settings: Vec<String>,
    /// Per-axis odometer digits (empty for run 0).
    pub(crate) choices: Vec<usize>,
}

/// The compiled execution plan of a sweep: scenarios, runs and the backend
/// axis, from which every execution mode (in-memory, checkpointed, merge)
/// derives the *same* work list and the *same* report construction.
pub(crate) struct RunPlan {
    /// Deduplicated compiled scenarios (shared with the [`ScenarioCache`]
    /// when the plan was built through one).
    pub(crate) scenarios: Vec<Arc<Scenario>>,
    /// All runs, run 0 first.
    pub(crate) runs: Vec<RunMeta>,
    /// Index of the backend axis in the sweep spec, if any.
    pub(crate) backend_axis: Option<usize>,
}

/// A campaign runner of either backend, borrowed from a [`RunPlan`].
pub(crate) enum Runner<'a> {
    /// Closed-form analytic sampler.
    Analytic(MobileCampaign<'a>),
    /// Packet-level discrete-event campaign.
    Event(EventCampaign<'a>),
    /// Event campaign over a spec with a fault schedule: routes come from
    /// the live BGP control plane (same dispatch as
    /// [`crate::exec::run_field`]).
    Faulted(Box<FaultedRunner<'a>>),
}

/// A fault-bearing event runner. [`FaultCampaign`]'s work items carry the
/// shard's absolute start time `t0_s` (derived from the traversal), which
/// the sweep's `(run, Shard)` items do not — so it is recovered here from
/// the `(pass, cell)` key, which the stream-keying discipline already
/// requires to be unique per campaign.
pub(crate) struct FaultedRunner<'a> {
    campaign: FaultCampaign<'a>,
    t0_by_shard: std::collections::BTreeMap<(u32, sixg_geo::CellId), f64>,
}

impl<'a> FaultedRunner<'a> {
    fn new(scenario: &'a Scenario, config: CampaignConfig) -> Self {
        let campaign = FaultCampaign::new(scenario, config);
        let t0_by_shard = campaign
            .shards()
            .into_iter()
            .map(|fs| ((fs.shard.pass, fs.shard.cell), fs.t0_s))
            .collect();
        Self { campaign, t0_by_shard }
    }
}

impl Runner<'_> {
    /// The runner's `(pass, cell)` shards, in accumulation order.
    pub(crate) fn shards(&self) -> Vec<Shard> {
        match self {
            Runner::Analytic(c) => c.shards(),
            Runner::Event(c) => c.shards(),
            Runner::Faulted(f) => f.campaign.shards().into_iter().map(|fs| fs.shard).collect(),
        }
    }

    /// Collects one shard's samples into `buf`.
    pub(crate) fn collect_shard_into(&self, shard: Shard, buf: &mut Vec<f64>) {
        match self {
            Runner::Analytic(c) => c.collect_shard_into(shard, buf),
            Runner::Event(c) => c.collect_shard_into(shard, buf),
            Runner::Faulted(f) => {
                let t0_s = f.t0_by_shard[&(shard.pass, shard.cell)];
                f.campaign.collect_shard_into(FaultShard { shard, t0_s }, buf);
            }
        }
    }
}

impl RunPlan {
    /// Instantiates every run's campaign runner. The dispatch mirrors
    /// [`crate::exec::run_field`]: an event run over a spec with a
    /// fault schedule gets the live control plane, so fault axes (e.g.
    /// sweeping `$.faults[0].recover_at_s`) measure real convergence
    /// transients instead of silently ignoring the schedule.
    pub(crate) fn runners(&self) -> Vec<Runner<'_>> {
        self.runs
            .iter()
            .map(|r| {
                let scenario: &Scenario = &self.scenarios[r.scen];
                match r.backend {
                    ExecBackend::Analytic => {
                        Runner::Analytic(MobileCampaign::new(scenario, r.config))
                    }
                    ExecBackend::Event if scenario.spec.faults.is_empty() => {
                        Runner::Event(EventCampaign::new(scenario, r.config))
                    }
                    ExecBackend::Event => {
                        Runner::Faulted(Box::new(FaultedRunner::new(scenario, r.config)))
                    }
                }
            })
            .collect()
    }

    /// The global work list: every run's `(pass, cell)` shards, run-major —
    /// one list, one pool pass, no drain between variants. This ordering
    /// *is* the accumulation-order contract: any execution mode that folds
    /// these items in list order reproduces identical bits.
    pub(crate) fn items(&self, runners: &[Runner]) -> Vec<(u32, Shard)> {
        let mut items: Vec<(u32, Shard)> = Vec::new();
        for (ri, runner) in runners.iter().enumerate() {
            items.extend(runner.shards().into_iter().map(|s| (ri as u32, s)));
        }
        items
    }

    /// The grid run `run` accumulates over.
    pub(crate) fn grid_of(&self, run: usize) -> &sixg_geo::GridSpec {
        &self.scenarios[self.runs[run].scen].grid
    }

    /// Folds completed per-run fields into the executed-sweep record — the
    /// single report-construction path shared by [`Sweep::run`],
    /// checkpointed completion and store merging: identical fields in,
    /// identical report bits out.
    pub(crate) fn build_sweep_run(&self, sweep: &Sweep, fields: Vec<CellField>) -> SweepRun {
        assert_eq!(fields.len(), self.runs.len(), "one field per run");
        let req = sweep.spec.requirement_ms;
        let mut field_iter = fields.into_iter();
        let base_field = field_iter.next().expect("base run present");
        let base_meta = &self.runs[0];
        let base_report = VariantReport::from_field(
            "base".into(),
            Vec::new(),
            base_meta.backend,
            base_meta.config,
            &base_field,
            req,
            None,
        );
        let base_ref = (base_report.grand_mean_ms, base_report.exceedance_pct);
        let variant_fields: Vec<CellField> = field_iter.collect();
        let variant_reports: Vec<VariantReport> = self.runs[1..]
            .iter()
            .zip(&variant_fields)
            .map(|(m, field)| {
                VariantReport::from_field(
                    m.label.clone(),
                    m.settings.clone(),
                    m.backend,
                    m.config,
                    field,
                    req,
                    Some(base_ref),
                )
            })
            .collect();
        SweepRun {
            report: SweepReport {
                sweep: sweep.spec.name.clone(),
                base_spec: sweep.base.name.clone(),
                requirement_ms: req,
                variant_count: self.runs.len() - 1,
                base: base_report,
                variants: variant_reports,
            },
            base_field,
            variant_fields,
            variant_backends: self.runs[1..].iter().map(|m| m.backend).collect(),
            variant_choices: self.runs[1..].iter().map(|m| m.choices.clone()).collect(),
            variant_labels: self.runs[1..].iter().map(|m| m.label.clone()).collect(),
            backend_axis: self.backend_axis,
        }
    }
}

/// Aggregates of one executed campaign of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct VariantReport {
    /// Variant label (`"base"` for the base run).
    pub label: String,
    /// Per-axis `target=value` settings.
    pub settings: Vec<String>,
    /// Execution backend tag.
    pub backend: String,
    /// Campaign seed.
    pub seed: u64,
    /// Grid traversals.
    pub passes: u32,
    /// Sampling cadence, seconds.
    pub sample_interval_s: f64,
    /// Total samples collected.
    pub total_samples: u64,
    /// Grand mean over reported cells, ms.
    pub grand_mean_ms: f64,
    /// Reported mean extrema, ms.
    pub mean_min_ms: f64,
    /// Reported mean maximum, ms.
    pub mean_max_ms: f64,
    /// Reported σ extrema, ms.
    pub std_min_ms: f64,
    /// Reported σ maximum, ms.
    pub std_max_ms: f64,
    /// Grand-mean exceedance over the sweep's requirement, percent.
    pub exceedance_pct: f64,
    /// Grand-mean delta against the base run, ms (0 for the base itself).
    pub delta_grand_mean_ms: f64,
    /// Exceedance delta against the base run, percentage points.
    pub delta_exceedance_pct: f64,
    /// Per-cell statistics of reported cells.
    pub cells: Vec<CellSummary>,
}

impl VariantReport {
    pub(crate) fn from_field(
        label: String,
        settings: Vec<String>,
        backend: ExecBackend,
        config: CampaignConfig,
        field: &CellField,
        requirement_ms: f64,
        base: Option<(f64, f64)>,
    ) -> Self {
        let grand_mean_ms = field.grand_mean_ms();
        let exceedance_pct = (grand_mean_ms - requirement_ms) / requirement_ms * 100.0;
        let (mean_min_ms, mean_max_ms) =
            field.mean_extrema().map_or((0.0, 0.0), |(a, b)| (a.mean_ms, b.mean_ms));
        let (std_min_ms, std_max_ms) =
            field.std_extrema().map_or((0.0, 0.0), |(a, b)| (a.std_ms, b.std_ms));
        let (base_gm, base_ex) = base.unwrap_or((grand_mean_ms, exceedance_pct));
        Self {
            label,
            settings,
            backend: backend.to_string(),
            seed: config.seed,
            passes: config.passes,
            sample_interval_s: config.sample_interval_s,
            total_samples: field.total_samples(),
            grand_mean_ms,
            mean_min_ms,
            mean_max_ms,
            std_min_ms,
            std_max_ms,
            exceedance_pct,
            delta_grand_mean_ms: grand_mean_ms - base_gm,
            delta_exceedance_pct: exceedance_pct - base_ex,
            cells: field
                .reported()
                .into_iter()
                .map(|s| CellSummary {
                    cell: s.cell.label(),
                    count: s.count,
                    mean_ms: s.mean_ms,
                    std_ms: s.std_ms,
                })
                .collect(),
        }
    }
}

/// The streaming sweep record: per-variant aggregates plus cross-variant
/// deltas against the base spec. Contains no wall times, so the serialised
/// form is bitwise identical across pool sizes.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Sweep name.
    pub sweep: String,
    /// Base scenario name.
    pub base_spec: String,
    /// Requirement the exceedance figures use, ms.
    pub requirement_ms: f64,
    /// Number of variants in the matrix (excluding the base run).
    pub variant_count: usize,
    /// The base run (the unmodified base spec).
    pub base: VariantReport,
    /// The variants, in odometer order.
    pub variants: Vec<VariantReport>,
}

impl SweepReport {
    /// Serialises to pretty JSON (deterministic: no timestamps, no wall
    /// times — bitwise identical across runs and pool sizes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep report serialises")
    }
}

/// An executed sweep: the report plus the per-run fields (Welford
/// accumulators, not samples) for downstream analysis.
#[derive(Debug)]
pub struct SweepRun {
    /// The streaming report.
    pub report: SweepReport,
    /// The base run's field.
    pub base_field: CellField,
    /// Per-variant fields, in odometer order.
    pub variant_fields: Vec<CellField>,
    variant_backends: Vec<ExecBackend>,
    variant_choices: Vec<Vec<usize>>,
    variant_labels: Vec<String>,
    backend_axis: Option<usize>,
}

impl SweepRun {
    /// Cross-validates every analytic/event variant pair that differs
    /// *only* in the backend axis, with the workspace tolerance
    /// ([`crossval_tolerance_ms`] per cell, [`CROSSVAL_GRAND_MEAN_TOL`]
    /// on grand means). Returns one human-readable line per violation;
    /// empty means every swept parameter point cross-validates. Sweeps
    /// without a backend axis have no pairs and trivially pass.
    pub fn crossval_violations(&self) -> Vec<String> {
        let Some(bi) = self.backend_axis else { return Vec::new() };
        let paired = |a: &[usize], b: &[usize]| {
            a.iter().zip(b).enumerate().all(|(i, (x, y))| i == bi || x == y)
        };
        let mut out = Vec::new();
        for (i, &ba) in self.variant_backends.iter().enumerate() {
            if ba != ExecBackend::Analytic {
                continue;
            }
            for (j, &bb) in self.variant_backends.iter().enumerate() {
                if bb != ExecBackend::Event
                    || !paired(&self.variant_choices[i], &self.variant_choices[j])
                {
                    continue;
                }
                let (fa, fe) = (&self.variant_fields[i], &self.variant_fields[j]);
                let pair = format!("`{}` vs `{}`", self.variant_labels[i], self.variant_labels[j]);
                for cell in fa.grid().cells() {
                    let (a, e) = (fa.stats(cell), fe.stats(cell));
                    if a.is_masked() && e.is_masked() {
                        continue;
                    }
                    if a.count != e.count {
                        out.push(format!(
                            "{pair}: cell {cell} sample counts differ ({} vs {})",
                            a.count, e.count
                        ));
                        continue;
                    }
                    let tol = crossval_tolerance_ms(&a, &e);
                    let delta = (a.mean_ms - e.mean_ms).abs();
                    if delta > tol {
                        out.push(format!(
                            "{pair}: cell {cell} |Δmean| {delta:.4} ms exceeds tolerance \
                             {tol:.4} ms (analytic {:.4}, event {:.4})",
                            a.mean_ms, e.mean_ms
                        ));
                    }
                }
                let (ga, ge) = (fa.grand_mean_ms(), fe.grand_mean_ms());
                if ga > 0.0 && (ga - ge).abs() / ga > CROSSVAL_GRAND_MEAN_TOL {
                    out.push(format!(
                        "{pair}: grand means {ga:.4} vs {ge:.4} ms differ by more than {:.1} %",
                        CROSSVAL_GRAND_MEAN_TOL * 100.0
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_field;
    use crate::parallel::with_thread_count;

    /// A Klagenfurt base trimmed to `passes` traversals, as JSON.
    fn base_json(passes: u32) -> String {
        let mut spec = ScenarioSpec::klagenfurt();
        spec.campaign.passes = passes;
        spec.to_json()
    }

    fn sweep_spec(axes: Vec<AxisDef>) -> SweepSpec {
        SweepSpec {
            name: "test-sweep".into(),
            description: String::new(),
            base: "inline".into(),
            requirement_ms: DEFAULT_REQUIREMENT_MS,
            axes,
        }
    }

    #[test]
    fn sweep_spec_json_round_trips() {
        let spec = sweep_spec(vec![
            AxisDef::Override {
                path: "$.campaign.sample_interval_s".into(),
                values: vec![Value::F64(1.0), Value::F64(4.0)],
            },
            AxisDef::Backend { select: BackendSelect::Both },
            AxisDef::Seeds { start: 1, count: 3 },
            AxisDef::DensityScale { factors: vec![1.0, 1.5] },
        ]);
        let json = spec.to_json();
        let back = SweepSpec::from_json(&json).expect("round trip parses");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
        assert_eq!(back.variant_count(), 2 * 2 * 3 * 2);
    }

    #[test]
    fn duplicate_axis_targets_are_rejected() {
        // A seeds axis and an override of $.campaign.seed fight over the
        // same parameter.
        let spec = sweep_spec(vec![
            AxisDef::Seeds { start: 1, count: 2 },
            AxisDef::Override { path: "$.campaign.seed".into(), values: vec![Value::U64(9)] },
        ]);
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.axes[1]").expect("duplicate reported");
        assert!(e.message.contains("duplicate axis target"), "{e}");
        assert!(e.message.contains("$.campaign.seed"), "{e}");
        // Two backend axes collide the same way.
        let spec = sweep_spec(vec![
            AxisDef::Backend { select: BackendSelect::Both },
            AxisDef::Backend { select: BackendSelect::Analytic },
        ]);
        assert!(spec.validate().iter().any(|e| e.message.contains("duplicate axis target")));
    }

    #[test]
    fn unresolvable_override_path_is_a_validation_error() {
        let spec = sweep_spec(vec![AxisDef::Override {
            path: "$.campaign.cadence_s".into(),
            values: vec![Value::F64(1.0)],
        }]);
        let err = Sweep::new(spec, &base_json(1)).unwrap_err();
        assert_eq!(err.path, "$.axes[0].path");
        assert!(err.message.contains("$.campaign.cadence_s"), "{err}");
        assert!(err.message.contains("no member `cadence_s`"), "{err}");
        // Out-of-bounds array index, same contract.
        let spec = sweep_spec(vec![AxisDef::Override {
            path: "$.links[99].utilisation".into(),
            values: vec![Value::F64(0.5)],
        }]);
        let err = Sweep::new(spec, &base_json(1)).unwrap_err();
        assert_eq!(err.path, "$.axes[0].path");
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn malformed_override_paths_are_rejected() {
        for bad in ["campaign.seed", "$", "$.", "$.links[x]", "$.links[0"] {
            let spec = sweep_spec(vec![AxisDef::Override {
                path: bad.into(),
                values: vec![Value::U64(1)],
            }]);
            let errors = spec.validate();
            assert!(
                errors.iter().any(|e| e.path == "$.axes[0].path"),
                "path {bad:?} must be rejected: {errors:?}"
            );
        }
    }

    #[test]
    fn empty_axis_and_oversized_product_are_rejected() {
        let spec = sweep_spec(vec![AxisDef::Override {
            path: "$.campaign.seed".into(),
            values: Vec::new(),
        }]);
        assert!(spec.validate().iter().any(|e| e.message.contains("no values")));
        let spec = sweep_spec(vec![
            AxisDef::Seeds { start: 0, count: 100 },
            AxisDef::Override {
                path: "$.campaign.passes".into(),
                values: (0..100u64).map(Value::U64).collect(),
            },
        ]);
        assert!(spec.validate().iter().any(|e| e.message.contains("cap")));
    }

    /// The degenerate sweep — no axes — is exactly one variant, and both
    /// the base run and that variant are bitwise identical to a plain
    /// single-campaign run of the base spec.
    #[test]
    fn empty_axes_degenerate_sweep_equals_plain_run_bitwise() {
        let sweep = Sweep::new(sweep_spec(Vec::new()), &base_json(1)).expect("valid sweep");
        let run = sweep.run().expect("runs");
        assert_eq!(run.report.variant_count, 1);
        assert_eq!(run.report.variants[0].label, "base");

        let scenario = Scenario::from_spec(&sweep.base).expect("compiles");
        let config = CampaignConfig {
            seed: sweep.base.campaign.seed,
            sample_interval_s: sweep.base.campaign.sample_interval_s,
            passes: sweep.base.campaign.passes,
        };
        let plain = run_field(&scenario, config, ExecBackend::Analytic);
        for cell in scenario.grid.cells() {
            let want = plain.stats(cell);
            for field in [&run.base_field, &run.variant_fields[0]] {
                let got = field.stats(cell);
                assert_eq!(want.count, got.count, "cell {cell} count");
                assert_eq!(want.mean_ms.to_bits(), got.mean_ms.to_bits(), "cell {cell} mean");
                assert_eq!(want.std_ms.to_bits(), got.std_ms.to_bits(), "cell {cell} std");
            }
        }
        assert_eq!(run.report.variants[0].delta_grand_mean_ms, 0.0);
    }

    /// The ordering contract: axes enumerate like an odometer with the
    /// last axis fastest.
    #[test]
    fn variant_order_is_last_axis_fastest() {
        let sweep = Sweep::new(
            sweep_spec(vec![
                AxisDef::Override {
                    path: "$.campaign.sample_interval_s".into(),
                    values: vec![Value::F64(1.0), Value::F64(2.0)],
                },
                AxisDef::Seeds { start: 7, count: 2 },
            ]),
            &base_json(1),
        )
        .expect("valid sweep");
        let variants = sweep.variants().expect("compiles");
        let labels: Vec<&str> = variants.iter().map(|v| v.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "$.campaign.sample_interval_s=1.0 · $.campaign.seed=7",
                "$.campaign.sample_interval_s=1.0 · $.campaign.seed=8",
                "$.campaign.sample_interval_s=2.0 · $.campaign.seed=7",
                "$.campaign.sample_interval_s=2.0 · $.campaign.seed=8",
            ]
        );
        assert_eq!(variants[0].choices, vec![0, 0]);
        assert_eq!(variants[1].choices, vec![0, 1]);
        assert_eq!(variants[3].config.seed, 8);
        assert_eq!(variants[3].config.sample_interval_s, 2.0);
    }

    /// The whole matrix is bitwise deterministic across pool sizes: the
    /// serialised report (which contains no wall times) must be textually
    /// identical at 1 and 4 threads.
    #[test]
    fn sweep_report_is_bitwise_identical_across_pool_sizes() {
        let make = || {
            Sweep::new(
                sweep_spec(vec![
                    AxisDef::Override {
                        path: "$.campaign.sample_interval_s".into(),
                        values: vec![Value::F64(2.0), Value::F64(4.0)],
                    },
                    AxisDef::Seeds { start: 1, count: 2 },
                ]),
                &base_json(1),
            )
            .expect("valid sweep")
        };
        let a = with_thread_count(1, || make().run().expect("runs").report.to_json());
        let b = with_thread_count(4, || make().run().expect("runs").report.to_json());
        assert_eq!(a, b, "sweep report must not depend on the pool size");
    }

    /// A cadence × backend sweep cross-validates at every swept cadence,
    /// and the typed axes actually land in the variant specs.
    #[test]
    fn backend_axis_pairs_crossvalidate_and_axes_apply() {
        let sweep = Sweep::new(
            sweep_spec(vec![
                AxisDef::Backend { select: BackendSelect::Both },
                AxisDef::DensityScale { factors: vec![1.0, 1.25] },
            ]),
            &base_json(2),
        )
        .expect("valid sweep");
        let variants = sweep.variants().expect("compiles");
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].backend, ExecBackend::Analytic);
        assert_eq!(variants[2].backend, ExecBackend::Event);
        let base_peak = sweep.base.density.peak;
        assert_eq!(variants[1].spec.density.peak, base_peak * 1.25);

        let run = sweep.run().expect("runs");
        let violations = run.crossval_violations();
        assert!(violations.is_empty(), "{violations:?}");
        // Scenario dedup: a backend axis shares the compiled scenario, so
        // paired variants have identical sample counts.
        assert_eq!(run.report.variants[0].total_samples, run.report.variants[2].total_samples);
    }
}
