//! The fault-tolerant distributed sweep coordinator.
//!
//! [`dispatch_sweep`] farms one sweep out to a fleet of `sixg-serve`
//! workers and folds the results into a [`SweepRun`] **bitwise identical**
//! to a single-machine `sixg-cli sweep` — the distributed counterpart of
//! the shard/merge machinery in [`crate::store`].
//!
//! ## How a sweep distributes
//!
//! The run range splits into *more* shards than workers
//! ([`DispatchConfig::shards_per_worker`], the work-stealing granularity):
//! a slow worker simply takes fewer shards off the queue, and a dead
//! worker strands less work. Each shard is one checkpointed
//! [`ExecRequest`] (`stream_store: true`) driven over the length-framed
//! wire protocol of [`crate::wire`]: the worker runs the shard through
//! [`crate::store::run_checkpointed_observed`] against its own scratch
//! store and streams every store mutation back as a `STORE` frame —
//! manifest at open, each spilled `run_NNNNN.blob`, each committed
//! `cursor.blob`. The coordinator never touches a shared filesystem; its
//! in-memory copy of each shard's store *is* the blobs the worker wrote,
//! byte for byte.
//!
//! ## Why reassignment preserves determinism
//!
//! Spills stream strictly before the cursor commit that covers them (see
//! [`crate::store::StoreEvent`]), and TCP delivers in order — so whatever
//! prefix of frames the coordinator holds when a worker dies, its cursor
//! is never *newer* than its run-blob set. Reassignment seeds a live
//! worker with exactly that state (`seed_store: true` + one `STORE`
//! frame); the worker plants it in a fresh store directory and
//! [`crate::store::run_checkpointed`]'s resume path takes over. Resume is
//! bitwise (the run-major fold replays the exact accumulation sequence),
//! so a shard that died and moved twice produces the same blob bytes as
//! one that never moved — which is why the final fold, and therefore the
//! merged report, cannot tell the difference.
//!
//! ## Failure policy
//!
//! Connection-shaped failures ([`crate::wire::is_transient_io`]) requeue
//! the shard and retry the worker after capped exponential backoff
//! ([`DispatchConfig::backoff_initial`] doubling up to
//! [`DispatchConfig::backoff_max`]); [`DispatchConfig::max_attempts`]
//! consecutive failures declare the worker dead and its slots exit.
//! Protocol garbage (`InvalidData`) declares the worker dead immediately —
//! a peer that frames wrongly will frame wrongly again. A worker answering
//! with an `ERROR` frame aborts the whole dispatch: request-level errors
//! are deterministic, so every reassignment would fail identically. When
//! the last worker dies with shards outstanding, the dispatch fails with
//! [`DispatchError::AllWorkersDead`].

use crate::aggregate::CellField;
use crate::exec::{build_sweep, checkpoint_spec_error, ExecReport, ExecRequest, ShardSel};
use crate::spec::SpecError;
use crate::store::{
    decode_run_blob, run_blob_name, run_checkpointed_observed, shard_run_range, sweep_content_hash,
    CheckpointConfig, CheckpointOutcome, StoreEvent, CURSOR_FILE, MANIFEST_FILE,
};
use crate::sweep::{Sweep, SweepRun};
use crate::wire::{is_transient_io, read_frame, write_frame, FrameKind, StoreBundle};
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Configuration, stats, errors.
// ---------------------------------------------------------------------------

/// How to distribute a sweep over a worker fleet.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Worker addresses (`host:port`), each a running `sixg-serve`.
    pub workers: Vec<String>,
    /// Shards per worker — the work-stealing granularity. The shard count
    /// is `workers × shards_per_worker`, clamped to the run count.
    pub shards_per_worker: u32,
    /// Concurrent shards per worker (its in-flight cap): a slow worker
    /// backpressures the queue instead of accumulating assignments.
    pub inflight_per_worker: usize,
    /// Work items folded between cursor commits on the worker — the
    /// streaming cadence, and the upper bound on re-folded work after a
    /// mid-shard death.
    pub interval: usize,
    /// Per-request deadline: socket read/write timeout on every frame.
    pub timeout: Duration,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_initial: Duration,
    /// Backoff cap.
    pub backoff_max: Duration,
    /// Consecutive failures before a worker is declared dead.
    pub max_attempts: u32,
}

impl DispatchConfig {
    /// Defaults tuned for a small LAN fleet.
    pub fn new(workers: Vec<String>) -> Self {
        Self {
            workers,
            shards_per_worker: 3,
            inflight_per_worker: 1,
            interval: 256,
            timeout: Duration::from_secs(600),
            connect_timeout: Duration::from_secs(5),
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            max_attempts: 5,
        }
    }
}

/// What the coordinator did to get the report.
#[derive(Debug, Clone, Default)]
pub struct DispatchStats {
    /// Shards the run range was split into.
    pub shard_count: u32,
    /// Workers the dispatch started with.
    pub workers: usize,
    /// Shard assignments in total (first assignments + reassignments).
    pub assignments: u64,
    /// Assignments of a shard that had already been assigned before.
    pub reassignments: u64,
    /// Reassignments seeded with a streamed cursor — the shard resumed
    /// mid-flight instead of restarting.
    pub resumed_shards: u64,
    /// Reconnects after a transient connection failure.
    pub reconnects: u64,
    /// Workers declared dead, by address.
    pub dead_workers: Vec<String>,
}

/// A distributed sweep's result: the merged run plus the fault log.
#[derive(Debug)]
pub struct DispatchRun {
    /// The merged sweep run, bitwise identical to a single-machine sweep.
    pub run: Box<SweepRun>,
    /// What it took.
    pub stats: DispatchStats,
}

/// Why a dispatch failed.
#[derive(Debug)]
pub enum DispatchError {
    /// The sweep (or a request built from it) is invalid.
    Spec(SpecError),
    /// A worker answered with a protocol `ERROR` frame, streamed state
    /// failed to decode, or the folded state was inconsistent —
    /// deterministic failures no reassignment can fix.
    Fatal(String),
    /// Every worker died with shards outstanding.
    AllWorkersDead(String),
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Spec(e) => write!(f, "{e}"),
            DispatchError::Fatal(m) => write!(f, "dispatch failed: {m}"),
            DispatchError::AllWorkersDead(m) => write!(f, "all workers dead: {m}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<SpecError> for DispatchError {
    fn from(e: SpecError) -> Self {
        DispatchError::Spec(e)
    }
}

// ---------------------------------------------------------------------------
// Coordinator state.
// ---------------------------------------------------------------------------

/// The coordinator's view of one shard: the latest streamed store state,
/// exactly the bytes a fresh worker needs to resume it.
#[derive(Debug, Default)]
struct ShardJob {
    manifest: Option<Vec<u8>>,
    cursor: Option<Vec<u8>>,
    runs: BTreeMap<u32, Vec<u8>>,
    assigned: u64,
    done: bool,
}

#[derive(Debug)]
struct Coord {
    queue: VecDeque<u32>,
    jobs: Vec<ShardJob>,
    pending: usize,
    live_workers: usize,
    /// `(all_workers_dead, message)` — the first fatal failure wins.
    fatal: Option<(bool, String)>,
    stats: DispatchStats,
}

struct Shared {
    coord: Mutex<Coord>,
    cv: Condvar,
}

impl Shared {
    fn set_fatal(&self, all_dead: bool, msg: String) {
        let mut g = self.coord.lock().expect("coord lock");
        if g.fatal.is_none() {
            g.fatal = Some((all_dead, msg));
        }
        self.cv.notify_all();
    }
}

/// Per-worker health, shared by its slots: consecutive transient failures
/// and the dead flag (only the first marker decrements the live count).
struct WorkerHealth {
    addr: String,
    failures: AtomicU64,
    dead: AtomicBool,
}

impl WorkerHealth {
    fn mark_dead(&self, shared: &Shared, why: &str) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut g = shared.coord.lock().expect("coord lock");
        g.live_workers -= 1;
        g.stats.dead_workers.push(self.addr.clone());
        if g.live_workers == 0 && g.pending > 0 && g.fatal.is_none() {
            g.fatal = Some((
                true,
                format!(
                    "last worker {} died ({why}) with {} shards outstanding",
                    self.addr, g.pending
                ),
            ));
        }
        shared.cv.notify_all();
    }
}

/// How one shard attempt ended, seen from a slot thread.
enum ShardFailure {
    /// Connection-shaped: requeue, back off, retry this worker.
    Transient(String),
    /// The worker speaks garbage: requeue and declare it dead now.
    WorkerBroken(String),
    /// Deterministic request-level failure: abort the whole dispatch.
    Fatal(String),
}

// ---------------------------------------------------------------------------
// The coordinator.
// ---------------------------------------------------------------------------

/// Process-unique store-name counter, so two dispatches from one process
/// (or two shards of one dispatch) never collide on a worker's scratch.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Distributes `sweep` over the fleet in `cfg` and folds the streamed
/// shard stores into the single-machine report. See the module docs for
/// the protocol and the failure policy.
pub fn dispatch_sweep(sweep: &Sweep, cfg: &DispatchConfig) -> Result<DispatchRun, DispatchError> {
    if cfg.workers.is_empty() {
        return Err(SpecError::new("$.workers", "dispatch needs at least one worker").into());
    }
    if cfg.shards_per_worker < 1 || cfg.inflight_per_worker < 1 || cfg.max_attempts < 1 {
        return Err(SpecError::new(
            "$.workers",
            "shards_per_worker, inflight_per_worker and max_attempts must all be at least 1",
        )
        .into());
    }

    let plan = sweep.plan()?;
    let total_runs = plan.runs.len();
    let spec_hash = sweep_content_hash(sweep);
    let shard_count = ((cfg.workers.len() as u64) * u64::from(cfg.shards_per_worker))
        .clamp(1, total_runs as u64) as u32;

    // Per-shard request JSON, both flavors, precomputed so slot threads
    // never touch the sweep. The store name is unique per (process,
    // dispatch, shard): reassignment reuses it — the new worker clears
    // the directory anyway, and a stable name keeps worker logs legible.
    let base_value = sweep.base_value().clone();
    let dispatch_id = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut requests = Vec::with_capacity(shard_count as usize);
    for index in 0..shard_count {
        let store_name =
            format!("dsp-{spec_hash:016x}-{}-{dispatch_id}-s{index:03}", std::process::id());
        let mut req = ExecRequest::sweep(sweep.spec.clone(), base_value.clone());
        req.checkpoint = Some(store_name);
        req.shard = Some(ShardSel { index, count: shard_count });
        req.interval = Some(cfg.interval);
        req.stream_store = true;
        let fresh = req.to_json();
        req.seed_store = true;
        let seeded = req.to_json();
        requests.push((fresh, seeded));
    }
    // Fail fast on an invalid request (e.g. an unsafe store name) before
    // any connection is made: every shard's request validates alike.
    {
        let mut probe = ExecRequest::sweep(sweep.spec.clone(), base_value.clone());
        probe.checkpoint =
            Some(format!("dsp-{spec_hash:016x}-{}-{dispatch_id}-s000", std::process::id()));
        probe.shard = Some(ShardSel { index: 0, count: shard_count });
        probe.interval = Some(cfg.interval);
        probe.stream_store = true;
        probe.validate()?;
    }

    let shared = Shared {
        coord: Mutex::new(Coord {
            queue: (0..shard_count).collect(),
            jobs: (0..shard_count).map(|_| ShardJob::default()).collect(),
            pending: shard_count as usize,
            live_workers: cfg.workers.len(),
            fatal: None,
            stats: DispatchStats {
                shard_count,
                workers: cfg.workers.len(),
                ..DispatchStats::default()
            },
        }),
        cv: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for addr in &cfg.workers {
            let health = Arc::new(WorkerHealth {
                addr: addr.clone(),
                failures: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            });
            for _ in 0..cfg.inflight_per_worker {
                let health = Arc::clone(&health);
                let shared = &shared;
                let requests = &requests;
                scope.spawn(move || worker_slot(shared, requests, cfg, &health));
            }
        }
    });

    let coord = shared.coord.into_inner().expect("coord lock");
    if let Some((all_dead, msg)) = coord.fatal {
        return Err(if all_dead {
            DispatchError::AllWorkersDead(msg)
        } else {
            DispatchError::Fatal(msg)
        });
    }
    debug_assert_eq!(coord.pending, 0);

    // The final fold: decode every shard's streamed run blobs and hand the
    // fields to the one report-construction path every execution mode
    // shares — byte identity with the offline sweep follows.
    let mut fields: Vec<CellField> = Vec::with_capacity(total_runs);
    for index in 0..shard_count {
        let job = &coord.jobs[index as usize];
        let (from, to) = shard_run_range(total_runs, index, shard_count);
        for run in from..to {
            let blob = job.runs.get(&(run as u32)).ok_or_else(|| {
                DispatchError::Fatal(format!(
                    "shard {index} completed without streaming run {run}'s blob"
                ))
            })?;
            let label = PathBuf::from(format!("wire:shard{index}/{}", run_blob_name(run as u32)));
            let field = decode_run_blob(&label, blob, run as u32, spec_hash, plan.grid_of(run))
                .map_err(|e| DispatchError::Fatal(e.to_string()))?;
            fields.push(field);
        }
    }
    Ok(DispatchRun { run: Box::new(plan.build_sweep_run(sweep, fields)), stats: coord.stats })
}

/// One worker slot: claim shards off the queue, drive each over the
/// connection, survive transient failures, die after too many.
fn worker_slot(
    shared: &Shared,
    requests: &[(String, String)],
    cfg: &DispatchConfig,
    health: &WorkerHealth,
) {
    let mut conn: Option<TcpStream> = None;
    loop {
        // Claim a shard (or learn there is nothing left to do).
        let (index, request_json, seed) = {
            let mut g = shared.coord.lock().expect("coord lock");
            loop {
                if g.fatal.is_some() || g.pending == 0 || health.dead.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(index) = g.queue.pop_front() {
                    let (reassigned, resumed, seed) = {
                        let job = &mut g.jobs[index as usize];
                        job.assigned += 1;
                        let reassigned = job.assigned > 1;
                        let mut seed = StoreBundle::new();
                        if reassigned {
                            if let Some(m) = &job.manifest {
                                seed.push(MANIFEST_FILE, m.clone());
                            }
                            for (run, blob) in &job.runs {
                                seed.push(&run_blob_name(*run), blob.clone());
                            }
                            if let Some(c) = &job.cursor {
                                seed.push(CURSOR_FILE, c.clone());
                            }
                        }
                        (reassigned, job.cursor.is_some(), seed)
                    };
                    g.stats.assignments += 1;
                    if reassigned {
                        g.stats.reassignments += 1;
                        if resumed {
                            g.stats.resumed_shards += 1;
                        }
                    }
                    let json = if seed.is_empty() {
                        requests[index as usize].0.clone()
                    } else {
                        requests[index as usize].1.clone()
                    };
                    break (index, json, seed);
                }
                g = shared.cv.wait(g).expect("coord lock");
            }
        };

        match drive_shard(shared, cfg, health, &mut conn, index, &request_json, &seed) {
            Ok(()) => {
                health.failures.store(0, Ordering::SeqCst);
                let mut g = shared.coord.lock().expect("coord lock");
                let job = &mut g.jobs[index as usize];
                if !job.done {
                    job.done = true;
                    g.pending -= 1;
                }
                shared.cv.notify_all();
            }
            Err(failure) => {
                conn = None;
                {
                    let mut g = shared.coord.lock().expect("coord lock");
                    g.queue.push_front(index);
                    shared.cv.notify_all();
                }
                match failure {
                    ShardFailure::Fatal(msg) => {
                        shared.set_fatal(false, msg);
                        return;
                    }
                    ShardFailure::WorkerBroken(msg) => {
                        health.mark_dead(shared, &msg);
                        return;
                    }
                    ShardFailure::Transient(msg) => {
                        let failures = health.failures.fetch_add(1, Ordering::SeqCst) + 1;
                        if failures >= u64::from(cfg.max_attempts) {
                            health.mark_dead(shared, &msg);
                            return;
                        }
                        std::thread::sleep(backoff(cfg, failures));
                    }
                }
            }
        }
    }
}

/// Capped exponential backoff: `initial · 2^(failures-1)`, at most `max`.
fn backoff(cfg: &DispatchConfig, failures: u64) -> Duration {
    let factor = 1u32 << (failures - 1).min(16) as u32;
    cfg.backoff_initial.saturating_mul(factor).min(cfg.backoff_max)
}

/// Connects to `addr` within the configured deadlines.
fn connect(addr: &str, cfg: &DispatchConfig) -> io::Result<TcpStream> {
    let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no address"))
    })?;
    let stream = TcpStream::connect_timeout(&sock, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.timeout))?;
    stream.set_write_timeout(Some(cfg.timeout))?;
    Ok(stream)
}

/// Drives one shard assignment over the slot's connection: request out,
/// store state in, terminal report. Store state is committed to the
/// shard's job under the coordinator lock per frame, so whatever prefix
/// arrives before a death is available for reassignment.
fn drive_shard(
    shared: &Shared,
    cfg: &DispatchConfig,
    health: &WorkerHealth,
    conn: &mut Option<TcpStream>,
    index: u32,
    request_json: &str,
    seed: &StoreBundle,
) -> Result<(), ShardFailure> {
    let transient = |what: &str, e: &io::Error| {
        ShardFailure::Transient(format!("worker {}: {what}: {e}", health.addr))
    };
    let stream = match conn {
        Some(s) => s,
        None => {
            let fresh = connect(&health.addr, cfg).map_err(|e| transient("connect", &e))?;
            if health.failures.load(Ordering::SeqCst) > 0 {
                let mut g = shared.coord.lock().expect("coord lock");
                g.stats.reconnects += 1;
            }
            conn.insert(fresh)
        }
    };

    let io_failure = |what: &str, e: io::Error| -> ShardFailure {
        if is_transient_io(&e) {
            ShardFailure::Transient(format!("worker {}: {what}: {e}", health.addr))
        } else {
            ShardFailure::WorkerBroken(format!("worker {}: {what}: {e}", health.addr))
        }
    };

    write_frame(stream, FrameKind::Request, request_json.as_bytes())
        .map_err(|e| io_failure("send request", e))?;
    if !seed.is_empty() {
        write_frame(stream, FrameKind::Store, &seed.encode())
            .map_err(|e| io_failure("send seed store", e))?;
    }

    loop {
        let frame = read_frame(stream).map_err(|e| io_failure("read frame", e))?;
        let Some((kind, payload)) = frame else {
            return Err(ShardFailure::Transient(format!(
                "worker {}: connection closed mid-shard",
                health.addr
            )));
        };
        match kind {
            FrameKind::Store => {
                let bundle = StoreBundle::decode(&payload).map_err(|e| {
                    ShardFailure::WorkerBroken(format!(
                        "worker {}: bad store frame: {e}",
                        health.addr
                    ))
                })?;
                let mut g = shared.coord.lock().expect("coord lock");
                let job = &mut g.jobs[index as usize];
                for (name, bytes) in bundle.entries() {
                    if name == MANIFEST_FILE {
                        job.manifest = Some(bytes.clone());
                    } else if name == CURSOR_FILE {
                        job.cursor = Some(bytes.clone());
                    } else if let Some(run) = parse_run_blob_name(name) {
                        job.runs.insert(run, bytes.clone());
                    } else {
                        return Err(ShardFailure::WorkerBroken(format!(
                            "worker {}: store frame names unknown entry {name:?}",
                            health.addr
                        )));
                    }
                }
            }
            FrameKind::Variant => {
                // Checkpointed execution streams store state, not variant
                // reports; tolerate the frame for forward compatibility.
            }
            FrameKind::Report => {
                let text = std::str::from_utf8(&payload).unwrap_or("");
                let v: Value = serde_json::from_str(text).map_err(|e| {
                    ShardFailure::WorkerBroken(format!(
                        "worker {}: unparseable report: {e}",
                        health.addr
                    ))
                })?;
                if v.get("interrupted").and_then(Value::as_bool) == Some(true) {
                    return Err(ShardFailure::Fatal(format!(
                        "worker {} reported shard {index} interrupted — dispatched requests \
                         never set stop_after_items, so the worker is misconfigured",
                        health.addr
                    )));
                }
                return Ok(());
            }
            FrameKind::Error => {
                let text = String::from_utf8_lossy(&payload).into_owned();
                return Err(ShardFailure::Fatal(format!(
                    "worker {} rejected shard {index}: {text}",
                    health.addr
                )));
            }
            FrameKind::Request => {
                return Err(ShardFailure::WorkerBroken(format!(
                    "worker {} sent a REQUEST frame to the coordinator",
                    health.addr
                )));
            }
        }
    }
}

/// Parses `run_NNNNN.blob` back to the run index.
fn parse_run_blob_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("run_")?.strip_suffix(".blob")?;
    if digits.len() < 5 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------------

/// Runs one dispatched shard on the worker: plants the seed state (if
/// any) in a fresh store at `store_dir`, executes the checkpointed shard
/// with `observe` watching every store mutation, and maps the outcome to
/// the facade's [`ExecReport`]. The directory is cleared first — the
/// coordinator's streamed state is authoritative, never the worker's
/// leftovers from an earlier assignment.
pub fn run_streamed_shard(
    req: &ExecRequest,
    store_dir: &Path,
    seed: Option<&StoreBundle>,
    observe: &mut dyn FnMut(StoreEvent<'_>) -> bool,
) -> Result<ExecReport, SpecError> {
    req.validate()?;
    if !req.stream_store {
        return Err(SpecError::new(
            "$.stream_store",
            "run_streamed_shard drives stream_store requests only",
        ));
    }
    let sweep = build_sweep(req)?;

    let io_err = |what: &str, e: io::Error| {
        SpecError::coded(
            crate::spec::ErrorCode::Io,
            "$.checkpoint",
            format!("{what} {}: {e}", store_dir.display()),
        )
    };
    match std::fs::remove_dir_all(store_dir) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err("cannot clear store directory", e)),
    }
    std::fs::create_dir_all(store_dir).map_err(|e| io_err("cannot create store directory", e))?;
    if let Some(seed) = seed {
        for (name, bytes) in seed.entries() {
            // Bundle names are validated safe at decode; each resolves to
            // a plain file inside the fresh directory.
            std::fs::write(store_dir.join(name), bytes)
                .map_err(|e| io_err("cannot plant seed state in", e))?;
        }
    }

    let mut cfg = CheckpointConfig::new(store_dir);
    if let Some(s) = req.shard {
        cfg.shard_index = s.index;
        cfg.shard_count = s.count;
    }
    if let Some(k) = req.interval {
        cfg.interval = k;
    }
    cfg.stop_after_items = req.stop_after_items;

    match run_checkpointed_observed(&sweep, &cfg, observe).map_err(checkpoint_spec_error)? {
        CheckpointOutcome::Complete(run) => Ok(ExecReport::Sweep(run)),
        CheckpointOutcome::ShardComplete { shard_index, shard_count, done_items } => {
            Ok(ExecReport::ShardComplete { shard_index, shard_count, done_items })
        }
        CheckpointOutcome::Interrupted { done_items, total_items } => {
            Ok(ExecReport::Interrupted { done_items, total_items })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_blob_names_parse_back() {
        assert_eq!(parse_run_blob_name("run_00000.blob"), Some(0));
        assert_eq!(parse_run_blob_name("run_00042.blob"), Some(42));
        assert_eq!(parse_run_blob_name(&run_blob_name(123456)), Some(123456));
        assert_eq!(parse_run_blob_name("run_42.blob"), None);
        assert_eq!(parse_run_blob_name("manifest.json"), None);
        assert_eq!(parse_run_blob_name("run_abcde.blob"), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = DispatchConfig::new(vec!["127.0.0.1:1".into()]);
        assert_eq!(backoff(&cfg, 1), Duration::from_millis(50));
        assert_eq!(backoff(&cfg, 2), Duration::from_millis(100));
        assert_eq!(backoff(&cfg, 3), Duration::from_millis(200));
        assert_eq!(backoff(&cfg, 10), Duration::from_secs(2));
        assert_eq!(backoff(&cfg, 63), Duration::from_secs(2));
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let sweep = Sweep::from_file(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/sweeps/klagenfurt_cadence.json"
        ))
        .expect("committed sweep loads");
        let err = dispatch_sweep(&sweep, &DispatchConfig::new(Vec::new()))
            .expect_err("no workers must fail");
        assert!(matches!(err, DispatchError::Spec(_)), "{err}");
    }
}
